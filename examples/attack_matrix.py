#!/usr/bin/env python
"""The full attack-vs-defense matrix of the paper's threat model.

Three attacks (Spectre v1, Speculative Store Bypass, a Meltdown-style
exception attack) against the five processor configurations of Table V.
The scoping matches the paper's Table II: the Spectre-model defenses block
only branch-shadow attacks; the Futuristic defenses block everything.

Run:  python examples/attack_matrix.py
"""

from repro import ProcessorConfig, Scheme
from repro.security import (
    run_cross_core_attack,
    run_meltdown_style_attack,
    run_spectre_v1,
    run_ssb_attack,
)

ATTACKS = [
    ("Spectre v1", lambda cfg: run_spectre_v1(cfg, secret=84, trials=1)[1], 84),
    ("Store Bypass", lambda cfg: run_ssb_attack(cfg, secret=113)[1], 113),
    ("Meltdown-style", lambda cfg: run_meltdown_style_attack(cfg, secret=199)[1], 199),
    ("CrossCore LLC", lambda cfg: run_cross_core_attack(cfg, secret=37)[1], 37),
]


def main():
    schemes = list(Scheme)
    print(f"{'attack':16}" + "".join(f"{s.value:>10}" for s in schemes))
    for name, attack, secret in ATTACKS:
        cells = []
        for scheme in schemes:
            recovered = attack(ProcessorConfig(scheme=scheme))
            cells.append("LEAKED" if recovered == secret else "safe")
        print(f"{name:16}" + "".join(f"{c:>10}" for c in cells))
    print("\nExpected: Base leaks everything; Fe-Sp/IS-Sp block only the")
    print("branch-speculation attack; Fe-Fu/IS-Fu block all three.")


if __name__ == "__main__":
    main()
