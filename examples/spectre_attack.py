#!/usr/bin/env python
"""The Spectre variant-1 proof of concept (Figures 1 and 5 of the paper).

Trains the victim's bounds check, flushes the transmission array, calls the
victim out of bounds, and scans — first on the insecure baseline (the
secret's cache line is the unique fast one), then under InvisiSpec-Spectre
(flat, all-miss profile: the transient loads never touched the caches).

Run:  python examples/spectre_attack.py [secret-byte]
"""

import sys

from repro import ProcessorConfig, Scheme
from repro.security import run_spectre_v1


def ascii_plot(latencies, secret, width=64):
    """Compact latency-vs-index strip: '.' = miss, '#' = cache hit."""
    cells = []
    for v in range(0, 256, 4):
        window = latencies[v:v + 4]
        cells.append("#" if min(window) <= 40 else ".")
    strip = "".join(cells)
    marker = [" "] * len(cells)
    marker[secret // 4] = "^"
    return strip + "\n" + "".join(marker) + f" index {secret}"


def main():
    secret = int(sys.argv[1]) if len(sys.argv) > 1 else 84
    print(f"planting secret byte V = {secret}\n")

    for scheme in (Scheme.BASE, Scheme.IS_SPECTRE):
        latencies, recovered = run_spectre_v1(
            ProcessorConfig(scheme=scheme), secret=secret, trials=3
        )
        print(f"--- {scheme.value} ---")
        print(ascii_plot(latencies, secret))
        if recovered is not None:
            print(f"attacker recovers V = {recovered} "
                  f"({'CORRECT' if recovered == secret else 'wrong'}) — leak!")
        else:
            print("attacker recovers nothing — attack thwarted")
        print()


if __name__ == "__main__":
    main()
