#!/usr/bin/env python
"""How InvisiSpec's overhead responds to the machine's parameters.

Runs the DRAM-latency sensitivity sweep (see repro.experiments.sweep for
the ROB/LQ/L1 dimensions): the cost of the doubled memory access grows
with memory latency, and the LLC-SB is what keeps it bounded.

Run:  python examples/parameter_sweep.py [workload]
"""

import sys

from repro.experiments import sweep


def main():
    app = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    print(f"sweeping DRAM latency for {app} (Base vs IS-Future)...\n")
    result = sweep.run(app=app, dimensions=("dram",), instructions=2000)
    print(result.text)


if __name__ == "__main__":
    main()
