#!/usr/bin/env python
"""Memory consistency in action on two cores.

Core 0 speculatively loads a shared variable twice (out of order with
respect to an intervening long-latency miss); core 1 stores to it in
between.  Under TSO the baseline squashes the performed-but-unretired load
when the invalidation arrives; under InvisiSpec the load sits invisibly in
the speculative buffer and is caught by its *validation* (or squashed
early), preserving TSO without ever exposing the speculative access.

Run:  python examples/consistency_squash.py
"""

from repro import ProcessorConfig, Scheme, SystemParams
from repro.cpu.isa import MicroOp, OpKind
from repro.security.channel import AttackContext

SHARED = 0x7100_0000  # the contended variable
PRIVATE = 0x1200_0000  # core 0 private data (long-latency miss)


def reader_ops(n_rounds):
    """Core 0: a pointer-chase of private DRAM misses; each round also reads
    the shared variable.  The shared load performs early (it is young and
    fast) but cannot retire until the older private miss does — a long
    window in which a remote store can invalidate its line."""
    ops = []
    for i in range(n_rounds):
        deps = (3,) if i else ()  # chase: this round waits for the previous
        ops.append(
            MicroOp(OpKind.LOAD, pc=0x100, addr=PRIVATE + 64 * i, size=8,
                    deps=deps)
        )
        ops.append(MicroOp(OpKind.LOAD, pc=0x104, addr=SHARED, size=8, dst="x"))
        ops.append(MicroOp(OpKind.ALU, pc=0x108, deps=(1,), latency=4))
    return ops


def writer_ops(n_rounds):
    """Core 1: a store to the shared line roughly every 150 cycles."""
    ops = []
    for i in range(n_rounds):
        deps = (2,) if i else ()
        ops.append(MicroOp(OpKind.ALU, pc=0x200, latency=150, deps=deps))
        ops.append(
            MicroOp(OpKind.STORE, pc=0x204, addr=SHARED, size=8, store_value=i)
        )
    return ops


def run(scheme):
    params = SystemParams(num_cores=2)
    context = AttackContext(ProcessorConfig(scheme=scheme), params=params)
    context.traces[0].feed(reader_ops(60))
    context.traces[1].feed(writer_ops(60))
    for core in context.system.cores:
        core.reopen()
    context.kernel.run(max_cycles=2_000_000)
    counters = context.system.counters
    return {
        "consistency squashes": counters["core.squashes.consistency"],
        "validation failures": counters["core.squashes.validation_fail"],
        "early-squash on inv": counters["invisispec.early_squash_invalidation"],
        "validations": counters["invisispec.validations"],
        "invalidations received": counters["core.invalidations_received"],
    }


def main():
    for scheme in (Scheme.BASE, Scheme.IS_SPECTRE, Scheme.IS_FUTURE):
        stats = run(scheme)
        print(f"--- {scheme.value} ---")
        for name, value in stats.items():
            print(f"  {name:24} {value}")
    print("\nBase enforces TSO by squashing on incoming invalidations;")
    print("InvisiSpec enforces it with validations and early squashes,")
    print("without ever making the speculative load visible.")


if __name__ == "__main__":
    main()
