#!/usr/bin/env python
"""Watch unsafe speculative loads live their life.

Runs a tiny program under InvisiSpec-Future with the pipeline trace log
enabled and prints the event stream: dispatch, squashes, validations,
exposures, retire — the USL lifecycle of the paper's Figure 2.

Run:  python examples/usl_lifecycle.py
"""

from repro import ProcessorConfig, Scheme, System, SystemParams
from repro.cpu import isa
from repro.cpu.trace import ProgramTrace
from repro.sim import TraceLog


def program():
    """A few loads in the shadow of a slow branch; one surprise mispredict."""
    ops = [isa.branch(pc=0x500, taken=True) for _ in range(25)]
    ops.append(isa.fence(pc=0xC))
    ops.append(isa.load(pc=0x8, addr=0x1800, size=8))  # warm the page
    for round_idx in range(3):
        taken = round_idx != 2  # last round mispredicts
        ops.append(isa.load(pc=0x10, addr=0xF000 + 64 * round_idx, size=8,
                            dst="d"))
        ops.append(isa.branch(pc=0x500, taken=taken, deps=(1,)))
        ops.append(isa.load(pc=0x20, addr=0x1000 + 8 * round_idx, size=8))
        ops.append(isa.alu(pc=0x30, deps=(1,)))
    return ops


def main():
    log = TraceLog()
    system = System(
        params=SystemParams.for_spec(),
        config=ProcessorConfig(scheme=Scheme.IS_FUTURE),
        traces=[ProgramTrace(program())],
        tracelog=log,
    )
    result = system.run(max_cycles=100_000)

    print("event histogram:")
    for kind, count in sorted(log.counts().items()):
        print(f"  {kind:10} {count}")
    print("\nInvisiSpec + squash events:")
    for line in log.format(kinds={"validate", "expose", "squash"}):
        print(" ", line)
    print(f"\n{result.instructions} instructions retired in "
          f"{result.cycles} cycles; "
          f"{result.count('invisispec.validations')} validations, "
          f"{result.count('invisispec.exposures')} exposures.")


if __name__ == "__main__":
    main()
