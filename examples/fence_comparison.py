#!/usr/bin/env python
"""Mini Figure 4: one workload across all five Table V configurations.

Run:  python examples/fence_comparison.py [workload] [instructions]
"""

import sys

from repro.configs import ALL_SCHEMES
from repro.runner import (
    normalized_execution_time,
    normalized_traffic,
    run_matrix,
)


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "libquantum"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 5000
    print(f"running {workload} under the five configurations "
          f"({instructions} measured instructions each)...\n")
    results = run_matrix(workload, instructions=instructions)
    exec_norm = normalized_execution_time(results)
    traffic_norm = normalized_traffic(results)

    print(f"{'config':8}{'exec time':>12}{'traffic':>12}   bar")
    for scheme in ALL_SCHEMES:
        bar = "#" * int(exec_norm[scheme] * 12)
        print(
            f"{scheme.value:8}{exec_norm[scheme]:>12.2f}"
            f"{traffic_norm[scheme]:>12.2f}   {bar}"
        )
    print("\nFences are the expensive way to be safe; InvisiSpec keeps")
    print("speculation and pays mostly in network traffic.")


if __name__ == "__main__":
    main()
