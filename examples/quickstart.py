#!/usr/bin/env python
"""Quickstart: simulate one workload on an insecure baseline and under
InvisiSpec-Future, and compare cycles, traffic, and InvisiSpec activity.

Run:  python examples/quickstart.py
"""

from repro import ProcessorConfig, Scheme, System, SystemParams
from repro.workloads import SPEC_PROFILES, SyntheticTrace


def simulate(scheme, instructions=4000):
    """Run `mcf` under the given defense scheme; returns the RunResult."""
    profile = SPEC_PROFILES["mcf"]
    system = System(
        params=SystemParams.for_spec(),
        config=ProcessorConfig(scheme=scheme),
        traces=[SyntheticTrace(profile, seed=7)],
        max_instructions=instructions,
        warmup_instructions=instructions // 2,
        icache_miss_rate=profile.icache_miss_rate,
    )
    return system.run()


def main():
    base = simulate(Scheme.BASE)
    invisi = simulate(Scheme.IS_FUTURE)

    print("workload: mcf (pointer-chasing SPECint profile), TSO")
    print(f"{'metric':34}{'Base':>12}{'IS-Fu':>12}")
    rows = [
        ("cycles", base.cycles, invisi.cycles),
        ("instructions", base.instructions, invisi.instructions),
        ("IPC", round(base.ipc, 3), round(invisi.ipc, 3)),
        ("NoC bytes", base.traffic_bytes, invisi.traffic_bytes),
        ("DRAM accesses", base.count("dram.accesses"),
         invisi.count("dram.accesses")),
        ("unsafe speculative loads", 0, invisi.count("invisispec.usls")),
        ("validations", 0, invisi.count("invisispec.validations")),
        ("exposures", 0, invisi.count("invisispec.exposures")),
        ("LLC-SB hits", 0, invisi.count("invisispec.llc_sb_hits")),
    ]
    for name, b, i in rows:
        print(f"{name:34}{b:>12}{i:>12}")
    slowdown = invisi.cycles / base.cycles
    print(f"\nInvisiSpec-Future slowdown over the insecure baseline: "
          f"{(slowdown - 1) * 100:.1f}%")
    print("(the paper reports 18.2% on average across 23 SPEC workloads)")


if __name__ == "__main__":
    main()
