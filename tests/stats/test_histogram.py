"""Latency-histogram tests, including the validation-latency integration."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from conftest import run_ops, simple_load_alu_ops

from repro import Scheme
from repro.stats import LatencyHistogram


class TestLatencyHistogram:
    def test_bucket_placement(self):
        hist = LatencyHistogram(edges=(0, 4, 16))
        for latency in (0, 3, 4, 15, 16, 99):
            hist.record(latency)
        assert dict(hist.buckets()) == {"[0,4)": 2, "[4,16)": 2, ">=16": 2}

    def test_mean_and_max(self):
        hist = LatencyHistogram()
        for latency in (2, 4, 6):
            hist.record(latency)
        assert hist.mean == 4.0
        assert hist.max == 6
        assert hist.total == 3

    def test_fraction_below(self):
        hist = LatencyHistogram(edges=(0, 4, 16))
        for latency in (1, 2, 10):
            hist.record(latency)
        assert abs(hist.fraction_below(4) - 2 / 3) < 1e-9
        assert hist.fraction_below(16) == 1.0

    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.mean == 0.0
        assert hist.fraction_below(100) == 0.0

    def test_format_renders(self):
        hist = LatencyHistogram()
        hist.record(3)
        text = hist.format()
        assert "mean" in text
        assert "#" in text


class TestValidationLatencyIntegration:
    def test_validations_dominated_by_fast_service(self):
        """The paper's negligible-stall claim: most validations are served
        at L1-ish latency once the working set is warm."""
        ops = simple_load_alu_ops(30, base=0x1000, stride=8)  # one hot line
        result, system = run_ops(ops, scheme=Scheme.IS_FUTURE)
        hist = system.cores[0].visibility.validation_latency
        if hist.total:
            assert hist.fraction_below(32) > 0.5

    def test_histogram_counts_match_counter(self):
        result, system = run_ops(
            simple_load_alu_ops(25), scheme=Scheme.IS_FUTURE
        )
        hist = system.cores[0].visibility.validation_latency
        assert hist.total == result.counters["invisispec.validations"] - (
            result.counters["invisispec.validation_failures"]
        ) or hist.total <= result.counters["invisispec.validations"]
