"""Counter and report tests."""

from repro.stats import Counters, format_table
from repro.stats.report import format_grouped_bars


class TestCounters:
    def test_bump_and_get(self):
        counters = Counters()
        counters.bump("a.b")
        counters.bump("a.b", 4)
        assert counters["a.b"] == 5
        assert counters.get("missing") == 0

    def test_set_overrides(self):
        counters = Counters()
        counters.bump("x", 10)
        counters.set("x", 3)
        assert counters["x"] == 3

    def test_ratio(self):
        counters = Counters()
        counters.bump("hits", 3)
        counters.bump("total", 4)
        assert counters.ratio("hits", "total") == 0.75
        assert counters.ratio("hits", "zero", default=-1.0) == -1.0

    def test_with_prefix(self):
        counters = Counters()
        counters.bump("core.loads", 2)
        counters.bump("core.stores", 1)
        counters.bump("noc.bytes", 9)
        assert counters.with_prefix("core") == {"loads": 2, "stores": 1}

    def test_merge(self):
        a = Counters()
        b = Counters()
        a.bump("x", 1)
        b.bump("x", 2)
        b.bump("y", 3)
        a.merge(b)
        assert a["x"] == 3
        assert a["y"] == 3

    def test_contains(self):
        counters = Counters()
        counters.bump("x")
        assert "x" in counters
        assert "y" not in counters


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[-1]

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_float_rendering(self):
        text = format_table(["v"], [[1.23456]])
        assert "1.23" in text

    def test_grouped_bars(self):
        text = format_grouped_bars(
            ["app1"], {"Base": [1.0], "IS-Fu": [1.5]}, title="bars"
        )
        assert "app1" in text
        assert "IS-Fu" in text
        assert "#" in text
