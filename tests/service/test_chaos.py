"""Chaos suite: every injected failure degrades explicitly.

The contract under test (docs/SERVICE.md): a request always ends in a
correct response, a journaled resumable entry, or an explicit shed —
never a hang, never a stale or corrupt cached verdict.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro.runner
from repro.reliability import LeasePool, RetryPolicy
from repro.service.envelope import JobRequest, canonical_json
from repro.service.server import AnalysisService
from repro.service.store import ResultStore

REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC = os.path.join(REPO, "src")


def run(coro, timeout=120):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(asyncio.wait_for(coro, timeout))
    finally:
        loop.close()


class _FakeCounters:
    def __init__(self, values):
        self._values = values

    def as_dict(self):
        return dict(self._values)


class _FakeResult:
    def __init__(self, seed):
        self.cycles = 1000 + seed
        self.instructions = 500
        self.traffic_bytes = 64
        self.traffic_breakdown = {"data": 64}
        self.counters = _FakeCounters({"fake.counter": 1})
        self.sanitizer_report = None

    def count(self, name):
        return 1 if name == "fake.counter" else 0


def _fake_ok(app, config, seed=0, heartbeat=None, **kwargs):
    # Pump the heartbeat hook like the real kernel does -- it is where
    # the worker.kill fault site lives.
    if heartbeat is not None:
        heartbeat(0)
    return _FakeResult(seed)


def _kill_on_seed0(app, config, seed=0, **kwargs):
    if seed == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return _FakeResult(seed)


def _slow_ok(app, config, seed=0, **kwargs):
    time.sleep(0.4)
    return _FakeResult(seed)


def _service(tmp_path, workers=2, **kwargs):
    kwargs.setdefault("backoff_base_s", 0.01)
    return AnalysisService(
        store=ResultStore(tmp_path / "cache"),
        pool=LeasePool(
            workers=workers, heartbeat_timeout=30.0, poll_interval=0.01
        ),
        **kwargs,
    )


class TestWorkerCrashes:
    def test_sigkill_mid_request_recovers_via_seed_bump(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _kill_on_seed0)

        async def main():
            service = await _service(
                tmp_path, policy=RetryPolicy(max_attempts=3)
            ).start()
            try:
                first = await service.submit(JobRequest("sim", {"app": "mcf"}))
                # The crashed-then-recovered answer is cached like any other.
                second = await service.submit(
                    JobRequest("sim", {"app": "mcf"})
                )
                return first, second, service.healthz()
            finally:
                await service.drain(timeout=5)

        first, second, health = run(main())
        assert first["status"] == "ok"
        assert first["attempts"] == 2  # crash consumed an attempt
        assert second["cached"] is True
        assert health["counters"]["crashes"] == 1
        assert health["pool"]["stats"]["workers_crashed"] == 1

    def test_deterministic_killer_fails_explicitly_not_forever(
        self, tmp_path, monkeypatch
    ):
        # The worker.kill fault fires on every attempt (the injector is
        # rebuilt per attempt), so the request can never succeed: the
        # crash cap must turn it into an explicit failure while other
        # requests keep being served.
        monkeypatch.setattr(repro.runner, "run_spec", _fake_ok)

        async def main():
            service = await _service(
                tmp_path, policy=RetryPolicy(max_attempts=6)
            ).start()
            try:
                doomed, fine = await asyncio.gather(
                    service.submit(
                        JobRequest(
                            "sim",
                            {"app": "mcf", "fault": "worker.kill:nth=1"},
                        )
                    ),
                    service.submit(JobRequest("sim", {"app": "hmmer"})),
                )
                return doomed, fine, service.store.entry_count()
            finally:
                await service.drain(timeout=5)

        doomed, fine, entries = run(main())
        assert doomed["status"] == "failed"
        assert doomed["error_class"] == "WorkerCrashError"
        assert "quarantined" in doomed["error_message"]
        assert fine["status"] == "ok"
        assert entries == 1  # only the good answer was cached


class TestCorruptCache:
    def test_corrupt_shard_is_recomputed_never_served(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _fake_ok)

        async def main():
            service = await _service(tmp_path).start()
            try:
                request = JobRequest("sim", {"app": "mcf"})
                fresh = await service.submit(request)
                path = service.store.path_for(request.cache_key)
                original = path.read_bytes()
                path.write_bytes(original[:-20] + b"corrupted-tail-bits!")
                after = await service.submit(JobRequest("sim", {"app": "mcf"}))
                repaired = path.read_bytes()
                hit = await service.submit(JobRequest("sim", {"app": "mcf"}))
                return (
                    fresh, after, hit, original, repaired,
                    service.store.stats,
                    sorted(
                        p.name
                        for p in (tmp_path / "cache" / "quarantine").iterdir()
                    ),
                )
            finally:
                await service.drain(timeout=5)

        fresh, after, hit, original, repaired, stats, quarantined = run(main())
        # The corrupt entry was detected, quarantined, and recomputed --
        # the answer never changed and was never served from garbage.
        assert after["status"] == "ok" and after["cached"] is False
        assert canonical_json(after["metrics"]) == canonical_json(
            fresh["metrics"]
        )
        assert stats["corrupt_quarantined"] == 1
        assert len(quarantined) == 1
        assert repaired == original  # rewrite is bit-identical
        assert hit["cached"] is True


class TestFlood:
    def test_flood_past_admission_limit_sheds_and_completes(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _slow_ok)

        async def main():
            service = await _service(
                tmp_path, workers=1, max_depth=3
            ).start()
            try:
                responses = await asyncio.gather(
                    *(
                        service.submit(
                            JobRequest(
                                "sim", {"app": "mcf", "seed": i},
                                client_id=f"c{i % 3}",
                            )
                        )
                        for i in range(16)
                    )
                )
                return responses, service.healthz()
            finally:
                await service.drain(timeout=10)

        responses, health = run(main(), timeout=120)
        statuses = [r["status"] for r in responses]
        # Nothing hangs, nothing fails: each request either completed
        # or was explicitly shed with a retry hint.
        assert all(s in ("ok", "shed") for s in statuses)
        assert statuses.count("shed") >= 1
        assert statuses.count("ok") >= 1
        assert health["counters"]["shed"] == statuses.count("shed")
        assert health["queue"]["total"] == 0


class TestDrainAndResume:
    def test_drain_journals_queued_work_and_resume_fills_the_cache(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _slow_ok)
        journal_path = tmp_path / "journal.json"
        requests = [
            JobRequest("sim", {"app": app}) for app in ("mcf", "hmmer", "lbm")
        ]

        async def phase1():
            service = await _service(
                tmp_path, workers=1, journal_path=journal_path
            ).start()
            submits = [
                asyncio.ensure_future(service.submit(r)) for r in requests
            ]
            await asyncio.sleep(0.15)  # first dispatched, rest queued
            await service.drain(timeout=5)
            return await asyncio.gather(*submits)

        responses = run(phase1())
        done = [r for r in responses if r["status"] == "ok"]
        shed = [r for r in responses if r["status"] == "shed"]
        assert len(done) >= 1 and len(shed) >= 1
        for response in shed:
            assert response["reason"] == "draining"
            assert response["journaled"] is True
        journal = json.loads(journal_path.read_text())
        assert len(journal["pending"]) == len(shed)

        monkeypatch.setattr(repro.runner, "run_spec", _fake_ok)

        async def phase2():
            service = await _service(
                tmp_path, workers=1, journal_path=journal_path
            ).start(resume=True)
            try:
                deadline = time.monotonic() + 30
                while len(service.journal) and time.monotonic() < deadline:
                    await asyncio.sleep(0.02)
                # A returning client now hits the cache for every request.
                responses = [await service.submit(r) for r in requests]
                return responses, service.counters["resumed"]
            finally:
                await service.drain(timeout=5)

        responses, resumed = run(phase2())
        assert resumed == len(shed)
        assert all(r["status"] == "ok" for r in responses)
        assert all(r.get("cached") for r in responses)
        assert json.loads(journal_path.read_text())["pending"] == {}


@pytest.mark.slow
class TestSubprocessSigterm:
    """Real server process: SIGTERM drains; the cache survives restarts."""

    def _serve(self, tmp_path, tag):
        ready = tmp_path / f"ready-{tag}"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.service", "serve",
                "--port", "0", "--workers", "1",
                "--store", str(tmp_path / "cache"),
                "--journal", str(tmp_path / "journal.json"),
                "--ready-file", str(ready),
                "--heartbeat-timeout", "30",
            ],
            env=dict(os.environ, PYTHONPATH=SRC),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            cwd=REPO,
        )
        deadline = time.monotonic() + 60
        while not ready.exists() and time.monotonic() < deadline:
            assert proc.poll() is None, proc.stderr.read()
            time.sleep(0.05)
        host, port = ready.read_text().split()
        return proc, host, int(port)

    def _request(self, host, port, payload):
        out = subprocess.run(
            [
                sys.executable, "-m", "repro.service", "request",
                "--host", host, "--port", str(port),
                "--kind", "specflow", "--payload", json.dumps(payload),
            ],
            env=dict(os.environ, PYTHONPATH=SRC),
            capture_output=True, text=True, timeout=120, cwd=REPO,
        )
        assert out.returncode == 0, out.stderr
        return json.loads(out.stdout)

    def test_sigterm_drains_and_cache_survives_restart(self, tmp_path):
        proc, host, port = self._serve(tmp_path, "a")
        try:
            payload = {"program": "spectre_v1", "model": "spectre"}
            fresh = self._request(host, port, payload)
            assert fresh["status"] == "ok" and fresh["cached"] is False
        finally:
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        assert "drained (SIGTERM)" in out

        proc, host, port = self._serve(tmp_path, "b")
        try:
            repeat = self._request(
                host, port, {"program": "spectre_v1", "model": "spectre"}
            )
            assert repeat["status"] == "ok"
            assert repeat["cached"] is True
            assert canonical_json(repeat["metrics"]) == canonical_json(
                fresh["metrics"]
            )
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.communicate(timeout=60)
        assert proc.returncode == 0
