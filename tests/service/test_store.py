"""Result store: checksum verification, quarantine, bit-identity."""

import json
import os

from repro.service.store import ResultStore, payload_checksum


METRICS = {"cycles": 1234, "counters": {"x": 1}, "traffic_bytes": 64}
KEY = "ab" + "0" * 62
OTHER = "cd" + "0" * 62


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, "sim", METRICS)
        assert store.get(KEY) == METRICS
        assert store.stats == {
            "hits": 1, "misses": 0, "writes": 1, "corrupt_quarantined": 0,
        }

    def test_miss_on_absent_key(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(KEY) is None
        assert store.stats["misses"] == 1

    def test_sharded_layout(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY, "sim", METRICS)
        store.put(OTHER, "sim", METRICS)
        assert (tmp_path / "ab" / f"{KEY}.json").exists()
        assert (tmp_path / "cd" / f"{OTHER}.json").exists()
        assert store.entry_count() == 2

    def test_entries_are_bit_identical_across_rewrites(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        a.put(KEY, "sim", METRICS)
        # Same logical payload built in a different insertion order.
        b.put(KEY, "sim", json.loads(json.dumps(METRICS)))
        assert (
            a.path_for(KEY).read_bytes() == b.path_for(KEY).read_bytes()
        )


class TestCorruption:
    def _entry_path(self, store):
        store.put(KEY, "sim", METRICS)
        return store.path_for(KEY)

    def test_truncated_shard_is_quarantined_not_served(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._entry_path(store)
        path.write_text(path.read_text()[:40])  # torn write simulation
        assert store.get(KEY) is None
        assert store.stats["corrupt_quarantined"] == 1
        assert not path.exists()
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert [p.name for p in quarantined] == [f"corrupt-{KEY}.json"]

    def test_bitflip_in_metrics_is_detected(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._entry_path(store)
        entry = json.loads(path.read_text())
        entry["metrics"]["cycles"] += 1  # silent bit rot
        path.write_text(json.dumps(entry))
        assert store.get(KEY) is None
        assert store.stats["corrupt_quarantined"] == 1

    def test_misfiled_entry_never_leaks_across_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._entry_path(store)
        # A valid entry copied to the wrong address (checksum still
        # self-consistent) must not answer for the other key.
        target = store.path_for(OTHER)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(path.read_text())
        assert store.get(OTHER) is None
        assert store.stats["corrupt_quarantined"] == 1
        assert store.get(KEY) == METRICS  # original untouched

    def test_version_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._entry_path(store)
        entry = json.loads(path.read_text())
        entry["version"] = 999
        path.write_text(json.dumps(entry))
        assert store.get(KEY) is None

    def test_recompute_after_quarantine_restores_the_entry(self, tmp_path):
        store = ResultStore(tmp_path)
        path = self._entry_path(store)
        path.write_text("garbage")
        assert store.get(KEY) is None
        store.put(KEY, "sim", METRICS)
        assert store.get(KEY) == METRICS
        # The quarantined evidence is preserved, not overwritten.
        assert (tmp_path / "quarantine" / f"corrupt-{KEY}.json").exists()


class TestChecksum:
    def test_checksum_binds_key_and_payload(self):
        base = payload_checksum(KEY, METRICS)
        assert payload_checksum(OTHER, METRICS) != base
        assert payload_checksum(KEY, dict(METRICS, cycles=0)) != base

    def test_hit_rate(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.hit_rate() is None
        store.put(KEY, "sim", METRICS)
        store.get(KEY)
        store.get(OTHER)
        assert store.hit_rate() == 0.5
