"""Cache keys and request normalization: the content-address contract."""

import json

import pytest

from repro.errors import ConfigError, WorkloadError
from repro.service.envelope import (
    CACHE_SCHEMA_VERSION,
    JobRequest,
    SpecflowCellSpec,
    cache_key,
    canonical_json,
)


class TestCacheKey:
    def test_semantically_equal_requests_share_a_key(self):
        a = JobRequest("sim", {"app": "mcf", "scheme": "base", "seed": 0})
        b = JobRequest("sim", {"seed": 0, "app": "mcf"})  # defaults + order
        assert a.cache_key == b.cache_key

    def test_any_semantic_input_changes_the_key(self):
        base = {"app": "mcf", "seed": 0}
        key = JobRequest("sim", base).cache_key
        for delta in (
            {"app": "hmmer"},
            {"scheme": "is_spectre"},
            {"consistency": "rc"},
            {"seed": 1},
            {"instructions": 100},
            {"sanitize": "strict"},
            {"fault": "inv.drop:nth=1"},
            {"max_cycles": 5},
        ):
            assert JobRequest("sim", dict(base, **delta)).cache_key != key

    def test_kind_participates_in_the_key(self):
        payload = {"program": "spectre_v1"}
        assert (
            JobRequest("specflow", payload).cache_key
            != cache_key("sim", payload)
        )

    def test_schema_version_participates_in_the_key(self):
        body = json.loads(
            canonical_json(
                {"schema": CACHE_SCHEMA_VERSION, "kind": "sim", "payload": {}}
            )
        )
        bumped = dict(body, schema=CACHE_SCHEMA_VERSION + 1)
        assert canonical_json(body) != canonical_json(bumped)

    def test_routing_fields_do_not_change_the_key(self):
        payload = {"program": "spectre_v1"}
        a = JobRequest("specflow", payload, client_id="x", lane="batch",
                       deadline_s=5.0, nocache=True)
        b = JobRequest("specflow", payload)
        assert a.cache_key == b.cache_key


class TestNormalization:
    def test_unknown_kind_lane_scheme_rejected(self):
        with pytest.raises(ConfigError):
            JobRequest("nope", {})
        with pytest.raises(ConfigError):
            JobRequest("sim", {"app": "mcf"}, lane="express")
        with pytest.raises(ConfigError):
            JobRequest("sim", {"app": "mcf", "scheme": "turbo"})
        with pytest.raises(ConfigError):
            JobRequest("sim", {})  # app is required
        with pytest.raises(ConfigError):
            JobRequest("specflow", {"program": "x", "model": "meltdown9"})
        with pytest.raises(ConfigError):
            JobRequest("fuzz", {"programs": []})
        with pytest.raises(ConfigError):
            JobRequest("sim", {"app": "mcf"}, deadline_s=-1)

    def test_specflow_program_dict_is_canonicalized(self):
        prog = {"b": 1, "a": 2}
        a = JobRequest("specflow", {"program": prog})
        b = JobRequest("specflow", {"program": {"a": 2, "b": 1}})
        assert a.cache_key == b.cache_key
        assert a.payload["program"] == canonical_json(prog)

    def test_from_wire_round_trips_options(self):
        request = JobRequest.from_wire({
            "kind": "specflow",
            "payload": {"program": "ssb"},
            "client": "alice",
            "lane": "batch",
            "deadline_s": 2.5,
            "nocache": True,
        })
        assert request.client_id == "alice"
        assert request.lane == "batch"
        assert request.deadline_s == 2.5
        assert request.nocache

    def test_journal_round_trip_preserves_the_key(self):
        request = JobRequest(
            "sim", {"app": "mcf", "fault": "inv.drop:nth=1"},
            client_id="bob", deadline_s=9.0,
        )
        resumed = JobRequest.from_journal(request.to_journal())
        assert resumed.cache_key == request.cache_key
        # Deadlines die with their client; resumed work fills the cache.
        assert resumed.deadline_s is None


class TestBuildSpec:
    def test_sim_lowered_to_cell_spec_with_fault_schedule(self):
        spec, schedule = JobRequest(
            "sim",
            {"app": "mcf", "scheme": "is_spectre", "fault": "inv.drop:nth=1"},
        ).build_spec()
        assert spec.app == "mcf"
        assert schedule is not None
        spec2, schedule2 = JobRequest("sim", {"app": "mcf"}).build_spec()
        assert schedule2 is None

    def test_specflow_cell_runs_a_corpus_program(self):
        spec, schedule = JobRequest(
            "specflow", {"program": "spectre_v1", "model": "spectre"}
        ).build_spec()
        assert schedule is None
        result = spec.run(
            seed=0, max_cycles=None, watchdog=None, faults=None
        )
        metrics = result.to_metrics()
        assert metrics["kind"] == "specflow"
        assert metrics["report"]["program"] == "spectre_v1"

    def test_specflow_unknown_program_is_a_workload_error(self):
        spec, _ = JobRequest(
            "specflow", {"program": "no_such_program"}
        ).build_spec()
        with pytest.raises(WorkloadError):
            spec.run(seed=0, max_cycles=None, watchdog=None, faults=None)

    def test_cell_ids_are_key_derived(self):
        request = JobRequest("specflow", {"program": "ssb"})
        spec, _ = request.build_spec()
        assert spec.cell_id == f"specflow:{request.cache_key[:12]}"


class TestSpecflowCellSpec:
    def test_is_pickle_safe(self):
        import pickle

        spec = SpecflowCellSpec(
            cell_id="specflow:abc", program="spectre_v1", model="spectre"
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
