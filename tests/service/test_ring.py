"""Property tests for the cluster's consistent-hash ring.

The three properties the cluster leans on (see ``ring.py``): balance
within 15% at the default 64 vnodes, minimal key movement on a single
join/leave, and bit-identical placement across ``PYTHONHASHSEED``.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.ring import DEFAULT_VNODES, HashRing

_SRC = str(Path(__file__).resolve().parents[2] / "src")

KEYS = [
    hashlib.sha256(f"key-{i}".encode()).hexdigest() for i in range(20000)
]


def _shares(ring, keys=KEYS):
    counts = {node: 0 for node in ring.nodes}
    for key in keys:
        counts[ring.primary(key)] += 1
    return counts


class TestBalance:
    @pytest.mark.parametrize("n_nodes", [2, 3, 4, 5])
    def test_busiest_node_within_15_percent_of_mean(self, n_nodes):
        ring = HashRing(
            [f"node-{i}" for i in range(n_nodes)], vnodes=DEFAULT_VNODES
        )
        counts = _shares(ring)
        mean = len(KEYS) / n_nodes
        worst = max(abs(count - mean) / mean for count in counts.values())
        assert worst <= 0.15, counts

    def test_default_vnodes_is_64(self):
        assert DEFAULT_VNODES == 64
        assert HashRing(["a"]).vnodes == 64


class TestMinimalMovement:
    def test_join_moves_at_most_one_nth_and_only_to_the_new_node(self):
        before = HashRing([f"node-{i}" for i in range(3)])
        owners_before = {key: before.primary(key) for key in KEYS}
        after = HashRing([f"node-{i}" for i in range(4)])
        moved = [
            key for key in KEYS if owners_before[key] != after.primary(key)
        ]
        # Ideal movement is 1/(N+1) = 25%; anything <= 1/N proves keys
        # are not being reshuffled wholesale (naive modulo moves ~75%).
        assert len(moved) / len(KEYS) <= 1 / 3, len(moved)
        assert all(after.primary(key) == "node-3" for key in moved)

    def test_leave_moves_only_the_departed_nodes_keys(self):
        before = HashRing([f"node-{i}" for i in range(4)])
        owners_before = {key: before.primary(key) for key in KEYS}
        after = HashRing([f"node-{i}" for i in range(4)])
        after.remove("node-1")
        moved = [
            key for key in KEYS if owners_before[key] != after.primary(key)
        ]
        departed = [key for key in KEYS if owners_before[key] == "node-1"]
        assert sorted(moved) == sorted(departed)
        # The departed node's share respects the balance bound, so the
        # movement stays within (1 + 0.15)/N of the keyspace.
        assert len(moved) / len(KEYS) <= 1.15 / 4

    def test_leave_never_perturbs_replica_sets_that_excluded_it(self):
        before = HashRing([f"node-{i}" for i in range(4)])
        after = HashRing([f"node-{i}" for i in range(4)])
        after.remove("node-1")
        for key in KEYS[:4000]:
            pair_before = tuple(before.nodes_for(key, count=2))
            if "node-1" in pair_before:
                continue
            assert tuple(after.nodes_for(key, count=2)) == pair_before


class TestLookupContract:
    @given(
        st.text(min_size=1, max_size=40),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_nodes_for_returns_distinct_live_nodes(self, key, count):
        ring = HashRing([f"node-{i}" for i in range(5)], vnodes=8)
        owners = ring.nodes_for(key, count=count)
        assert len(owners) == min(count, 5)
        assert len(set(owners)) == len(owners)

    @given(st.text(min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_exclude_preserves_ordering_of_the_rest(self, key):
        ring = HashRing([f"node-{i}" for i in range(5)], vnodes=8)
        full = ring.nodes_for(key, count=5)
        skipped = ring.nodes_for(key, count=4, exclude=(full[1],))
        assert skipped == [node for node in full if node != full[1]]

    def test_empty_ring_and_membership_idempotence(self):
        ring = HashRing()
        assert ring.nodes_for("k") == []
        assert ring.primary("k") is None
        ring.add("a")
        ring.add("a")
        assert ring.nodes == ("a",)
        ring.remove("missing")
        ring.remove("a")
        assert len(ring) == 0


_PLACEMENT_SCRIPT = """
import hashlib, json, sys
from repro.service.ring import HashRing

ring = HashRing(["node-%d" % i for i in range(4)])
keys = [hashlib.sha256(("key-%d" % i).encode()).hexdigest()
        for i in range(500)]
placement = {key: ring.nodes_for(key, count=2) for key in keys}
json.dump(placement, sys.stdout, sort_keys=True)
"""


def _placement(hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = _SRC
    proc = subprocess.run(
        [sys.executable, "-c", _PLACEMENT_SCRIPT],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


class TestDeterminism:
    def test_placement_bit_identical_across_hash_seeds(self):
        # Fresh interpreters with different PYTHONHASHSEED values must
        # place every key identically — a router restart (or a second
        # router) has to agree on every key's owners.
        assert _placement(1) == _placement(424242)
