"""Cluster chaos suite: the router degrades explicitly, never wrongly.

Every scenario drives a real :class:`ClusterRouter` over real in-process
:class:`AnalysisService` backends (forked worker pools and all), with a
switchable TCP chaos proxy standing in for the network between them.
The contract (docs/SERVICE.md): under backend SIGKILL, socket-blackhole
partitions, slow nodes, or corrupt replicas, every request ends in a
correct response or an explicit shed with a retry hint — bounded
unavailability, deterministic results, zero wrong answers.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro.runner
from repro.reliability import LeasePool
from repro.reliability.faults import FaultSchedule
from repro.service.client import ServiceClient, request_sync, status_sync
from repro.service.cluster import ClusterRouter, parse_backends
from repro.service.cluster import _handle_router_connection
from repro.service.envelope import JobRequest, canonical_json
from repro.service.server import AnalysisService, _handle_connection
from repro.service.store import ResultStore
from repro.errors import ServiceProtocolError

REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC = os.path.join(REPO, "src")


def run(coro, timeout=120):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(asyncio.wait_for(coro, timeout))
    finally:
        loop.close()


class _FakeCounters:
    def __init__(self, values):
        self._values = values

    def as_dict(self):
        return dict(self._values)


class _FakeResult:
    def __init__(self, seed):
        self.cycles = 1000 + seed
        self.instructions = 500
        self.traffic_bytes = 64
        self.traffic_breakdown = {"data": 64}
        self.counters = _FakeCounters({"fake.counter": 1})
        self.sanitizer_report = None

    def count(self, name):
        return 1 if name == "fake.counter" else 0


def _fake_ok(app, config, seed=0, heartbeat=None, **kwargs):
    if heartbeat is not None:
        heartbeat(0)
    return _FakeResult(seed)


class ChaosProxy:
    """Switchable TCP proxy: ``pass`` / ``blackhole`` / ``down``.

    * ``pass`` — byte-for-byte forwarding (healthy network);
    * ``blackhole`` — connections stay open but every byte is silently
      swallowed in both directions (a partition: the router's calls time
      out instead of erroring);
    * ``down`` — existing connections are torn down and new ones closed
      on accept (the backend process is gone).
    """

    def __init__(self, upstream_port):
        self.upstream_port = upstream_port
        self.mode = "pass"
        self.port = None
        self._server = None
        self._writers = set()

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def set_mode(self, mode):
        assert mode in ("pass", "blackhole", "down")
        self.mode = mode
        if mode == "down":
            for writer in list(self._writers):
                try:
                    writer.close()
                except OSError:
                    pass

    async def _handle(self, reader, writer):
        if self.mode == "down":
            writer.close()
            return
        try:
            up_reader, up_writer = await asyncio.open_connection(
                "127.0.0.1", self.upstream_port
            )
        except OSError:
            writer.close()
            return
        self._writers.update((writer, up_writer))

        async def pump(src, dst):
            try:
                while True:
                    chunk = await src.read(4096)
                    if not chunk:
                        break
                    if self.mode == "pass":
                        dst.write(chunk)
                        await dst.drain()
            except (ConnectionError, OSError):
                pass
            finally:
                try:
                    dst.close()
                except OSError:
                    pass

        try:
            await asyncio.gather(
                pump(reader, up_writer),
                pump(up_reader, writer),
                return_exceptions=True,
            )
        finally:
            self._writers.discard(writer)
            self._writers.discard(up_writer)

    async def stop(self):
        self.set_mode("down")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()


class Cluster:
    """N in-process backends behind chaos proxies, one router in front."""

    def __init__(self, tmp_path, nodes=3, **router_kwargs):
        self.tmp_path = tmp_path
        self.n = nodes
        self.router_kwargs = router_kwargs
        self.services = {}
        self.servers = {}
        self.proxies = {}
        self.router = None

    async def __aenter__(self):
        backends = []
        for i in range(self.n):
            node = f"n{i}"
            service = AnalysisService(
                store=ResultStore(self.tmp_path / f"store-{node}"),
                pool=LeasePool(
                    workers=1, heartbeat_timeout=30.0, poll_interval=0.01
                ),
                backoff_base_s=0.01,
            )
            await service.start()
            server = await asyncio.start_server(
                lambda r, w, s=service: _handle_connection(s, r, w),
                "127.0.0.1", 0,
            )
            port = server.sockets[0].getsockname()[1]
            proxy = await ChaosProxy(port).start()
            self.services[node] = service
            self.servers[node] = server
            self.proxies[node] = proxy
            backends.append((node, "127.0.0.1", proxy.port))
        kwargs = dict(
            call_timeout_s=1.5, ping_timeout_s=0.5, ping_interval_s=0.05
        )
        kwargs.update(self.router_kwargs)
        self.router = ClusterRouter(backends, **kwargs)
        return self

    async def __aexit__(self, *exc_info):
        await self.router.drain(timeout=5)
        for proxy in self.proxies.values():
            await proxy.stop()
        for server in self.servers.values():
            server.close()
            await server.wait_closed()
        for service in self.services.values():
            await service.drain(timeout=5)

    async def wait_replicated(self, key, copies=2, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self.router.journal.nodes_for(key)) >= copies:
                return self.router.journal.nodes_for(key)
            await asyncio.sleep(0.01)
        raise AssertionError(
            f"key never reached {copies} replicas: "
            f"{self.router.journal.nodes_for(key)}"
        )

    def payload_owned_by(self, node, tag="app"):
        """A sim payload whose cache key has ``node`` as ring primary."""
        for i in range(10000):
            payload = {"app": f"{tag}-{i}"}
            key = JobRequest("sim", payload).cache_key
            if self.router.ring.primary(key) == node:
                return payload, key
        raise AssertionError(f"no payload found for {node}")

    async def mark_down(self, node):
        """Deterministically drive the active detector to 'down'."""
        self.proxies[node].set_mode("down")
        for _ in range(self.router.health[node].down_after):
            await self.router._ping_node(node)
        assert not self.router.health[node].up

    async def settle(self, timeout=10.0):
        """Wait for the router's spawned background tasks to finish."""
        deadline = time.monotonic() + timeout
        while self.router._tasks and time.monotonic() < deadline:
            await asyncio.gather(*self.router._tasks, return_exceptions=True)
        assert not self.router._tasks


@pytest.fixture(autouse=True)
def _fake_kernel(monkeypatch):
    monkeypatch.setattr(repro.runner, "run_spec", _fake_ok)


class TestRoutingAndReplication:
    def test_results_replicate_to_r2_and_repeat_hits_cache(self, tmp_path):
        async def main():
            async with Cluster(tmp_path) as cluster:
                payloads = [{"app": f"mix-{i}"} for i in range(6)]
                first = []
                for payload in payloads:
                    response = await cluster.router.submit(
                        {"op": "submit", "kind": "sim", "payload": payload}
                    )
                    assert response["status"] == "ok", response
                    assert response["node"] in cluster.router.ring.nodes
                    first.append(response)
                    key = JobRequest("sim", payload).cache_key
                    holders = await cluster.wait_replicated(key)
                    assert len(holders) == 2
                    # Every recorded holder really has the shard on disk.
                    for node in holders:
                        assert key in cluster.services[node].store
                repeats = []
                for payload in payloads:
                    repeats.append(
                        await cluster.router.submit(
                            {"op": "submit", "kind": "sim",
                             "payload": payload}
                        )
                    )
                status = await cluster.router.status()
                return first, repeats, status

        first, repeats, status = run(main())
        for before, after in zip(first, repeats):
            assert after["status"] == "ok"
            assert after["cached"] is True
            assert canonical_json(after["metrics"]) == canonical_json(
                before["metrics"]
            )
        assert status["replicas"]["tracked_keys"] == 6
        assert status["replicas"]["under_replicated"] == 0
        assert status["replicas"]["by_count"] == {"2": 6}
        assert status["counters"]["replications"] == 6

    def test_routing_is_deterministic_across_routers(self, tmp_path):
        # Two routers built over the same membership must agree on every
        # key's owners — placement is pure ring math, no shared state.
        backends = [("a", "127.0.0.1", 1), ("b", "127.0.0.1", 2),
                    ("c", "127.0.0.1", 3)]
        one = ClusterRouter(backends)
        two = ClusterRouter(list(reversed(backends)))
        for i in range(200):
            key = JobRequest("sim", {"app": f"k-{i}"}).cache_key
            assert one.ring.nodes_for(key, 2) == two.ring.nodes_for(key, 2)


class TestNodeLoss:
    def test_failover_answers_correctly_when_primary_dies(self, tmp_path):
        async def main():
            async with Cluster(tmp_path) as cluster:
                payload, key = cluster.payload_owned_by("n1")
                oracle = await cluster.router.submit(
                    {"op": "submit", "kind": "sim", "payload": payload}
                )
                assert oracle["status"] == "ok"
                await cluster.wait_replicated(key)
                await cluster.settle()
                cluster.proxies["n1"].set_mode("down")
                survived = await cluster.router.submit(
                    {"op": "submit", "kind": "sim", "payload": payload}
                )
                return oracle, survived, dict(cluster.router.counters)

        oracle, survived, counters = run(main())
        assert survived["status"] == "ok"
        assert survived["node"] != "n1"
        assert canonical_json(survived["metrics"]) == canonical_json(
            oracle["metrics"]
        )
        assert counters["backend_failures"] >= 1

    def test_rereplication_restores_r2_after_loss(self, tmp_path):
        async def main():
            async with Cluster(tmp_path) as cluster:
                payload, key = cluster.payload_owned_by("n0")
                response = await cluster.router.submit(
                    {"op": "submit", "kind": "sim", "payload": payload}
                )
                assert response["status"] == "ok"
                holders = set(await cluster.wait_replicated(key))
                await cluster.settle()
                assert "n0" in holders
                await cluster.mark_down("n0")
                await cluster.settle()
                restored = set(cluster.router.journal.nodes_for(key))
                status = await cluster.router.status()
                return holders, restored, status, key, cluster.services

        holders, restored, status, key, services = run(main())
        assert "n0" not in restored
        assert len(restored) == 2
        survivor = next(iter(holders - {"n0"}))
        assert survivor in restored
        new_holder = next(iter(restored - holders))
        assert status["counters"]["rereplications"] == 1
        assert status["counters"]["nodes_lost"] == 1
        assert status["replicas"]["under_replicated"] == 0
        # The new holder's store really serves the shard, bit-identical.
        assert canonical_json(services[new_holder].store.get(key)) == (
            canonical_json(services[survivor].store.get(key))
        )

    def test_all_backends_down_sheds_with_retry_hint(self, tmp_path):
        async def main():
            async with Cluster(tmp_path) as cluster:
                for node in list(cluster.proxies):
                    await cluster.mark_down(node)
                await cluster.settle()
                response = await cluster.router.submit(
                    {"op": "submit", "kind": "sim", "payload": {"app": "x"}}
                )
                return response, dict(cluster.router.counters)

        response, counters = run(main())
        assert response["status"] == "shed"
        assert response["reason"] == "no-backend"
        assert response["retry_after_s"] > 0
        assert counters["shed_no_backend"] == 1


class TestPartition:
    def test_blackhole_partition_is_bounded_and_correct(self, tmp_path):
        # A partitioned primary swallows bytes without erroring; the
        # per-call timeout converts the silence into failover.  The
        # request must still answer correctly, in bounded time.
        async def main():
            async with Cluster(
                tmp_path, call_timeout_s=0.6
            ) as cluster:
                payload, key = cluster.payload_owned_by("n2")
                oracle = await cluster.router.submit(
                    {"op": "submit", "kind": "sim", "payload": payload}
                )
                await cluster.wait_replicated(key)
                await cluster.settle()
                cluster.proxies["n2"].set_mode("blackhole")
                started = time.monotonic()
                response = await cluster.router.submit(
                    {"op": "submit", "kind": "sim", "payload": payload}
                )
                elapsed = time.monotonic() - started
                return oracle, response, elapsed, dict(
                    cluster.router.counters
                )

        oracle, response, elapsed, counters = run(main())
        assert response["status"] == "ok"
        assert response["node"] != "n2"
        assert canonical_json(response["metrics"]) == canonical_json(
            oracle["metrics"]
        )
        # Bounded unavailability: at most hedge-or-timeout on the dead
        # primary plus a healthy call, with comfortable slack for CI.
        assert elapsed < 5.0, elapsed
        # Either the hedge raced past the silent primary (and the stuck
        # call was cancelled) or the call timeout fired and failed over.
        assert counters["hedges"] >= 1 or counters["backend_failures"] >= 1


class TestSlowNode:
    def test_hedged_read_sidesteps_a_slow_primary(self, tmp_path):
        async def main():
            async with Cluster(tmp_path, nodes=2) as cluster:
                payload, key = cluster.payload_owned_by("n0")
                first = await cluster.router.submit(
                    {"op": "submit", "kind": "sim", "payload": payload}
                )
                assert first["status"] == "ok"
                await cluster.wait_replicated(key)
                await cluster.settle()
                # Make only the primary holder slow: a dedicated
                # net.delay injector on its link, firing every call.
                schedule = FaultSchedule.parse(
                    ["net.delay:prob=1.0,extra=400,count=100"], seed=0
                )
                cluster.router.links["n0"].injector = schedule.injector()
                started = time.monotonic()
                hedged = await cluster.router.submit(
                    {"op": "submit", "kind": "sim", "payload": payload}
                )
                elapsed = time.monotonic() - started
                return first, hedged, elapsed, dict(cluster.router.counters)

        first, hedged, elapsed, counters = run(main())
        assert hedged["status"] == "ok"
        assert hedged["node"] == "n1"  # the backup holder won the race
        assert canonical_json(hedged["metrics"]) == canonical_json(
            first["metrics"]
        )
        assert counters["hedges"] >= 1
        assert counters["hedge_wins"] >= 1
        # The answer arrived without waiting out the 400ms slow node.
        assert elapsed < 0.4, elapsed


class TestCorruptReplica:
    def test_corrupt_shard_is_quarantined_and_recomputed(self, tmp_path):
        async def main():
            async with Cluster(tmp_path) as cluster:
                payload, key = cluster.payload_owned_by("n0")
                oracle = await cluster.router.submit(
                    {"op": "submit", "kind": "sim", "payload": payload}
                )
                holders = await cluster.wait_replicated(key)
                await cluster.settle()
                victim = holders[0]
                shard = cluster.services[victim].store.path_for(key)
                shard.write_text('{"metrics": {"cycles": 99999}}')
                # Force the read onto the corrupt holder only.
                for node in cluster.router.ring.nodes:
                    if node != victim:
                        cluster.router.health[node].up = False
                response = await cluster.router.submit(
                    {"op": "submit", "kind": "sim", "payload": payload}
                )
                stats = dict(cluster.services[victim].store.stats)
                return oracle, response, victim, stats

        oracle, response, victim, stats = run(main())
        # Zero wrong answers: the tampered shard is never served — it is
        # quarantined and the result recomputed, bit-identical.
        assert response["status"] == "ok"
        assert response["node"] == victim
        assert response["cached"] is False
        assert canonical_json(response["metrics"]) == canonical_json(
            oracle["metrics"]
        )
        assert stats["corrupt_quarantined"] == 1


class TestJournalResume:
    def test_replica_index_survives_router_restart(self, tmp_path):
        journal = tmp_path / "cluster.json"

        async def main():
            async with Cluster(
                tmp_path, journal_path=str(journal)
            ) as cluster:
                payload, key = cluster.payload_owned_by("n0")
                await cluster.router.submit(
                    {"op": "submit", "kind": "sim", "payload": payload}
                )
                holders = await cluster.wait_replicated(key)
                await cluster.settle()
                backends = [
                    (node, link.host, link.port)
                    for node, link in sorted(cluster.router.links.items())
                ]
                return key, holders, backends

        key, holders, backends = run(main())  # drain flushes the journal
        assert journal.exists()
        reborn = ClusterRouter(
            backends, journal_path=str(journal), resume=True
        )
        assert reborn.journal.resumed_keys >= 1
        assert reborn.journal.nodes_for(key) == tuple(sorted(holders))

    def test_resume_drops_nodes_outside_membership(self, tmp_path):
        journal = tmp_path / "cluster.json"
        journal.write_text(json.dumps({
            "version": 1,
            "membership": {},
            "replicas": {
                "deadbeef": {
                    "kind": "sim",
                    "payload": {"app": "x"},
                    "nodes": ["n0", "ghost"],
                },
            },
        }))
        router = ClusterRouter(
            [("n0", "127.0.0.1", 1), ("n1", "127.0.0.1", 2)],
            journal_path=str(journal), resume=True,
        )
        assert router.journal.nodes_for("deadbeef") == ("n0",)


class TestRouterProtocol:
    def test_front_tier_speaks_the_single_node_envelope(self, tmp_path):
        async def main():
            async with Cluster(tmp_path) as cluster:
                server = await asyncio.start_server(
                    lambda r, w: _handle_router_connection(
                        cluster.router, r, w
                    ),
                    "127.0.0.1", 0,
                )
                port = server.sockets[0].getsockname()[1]
                try:
                    async with ServiceClient("127.0.0.1", port) as client:
                        pong = await client.ping()
                        submit = await client.submit(
                            "sim", {"app": "proto"}
                        )
                        unknown = await client.call({"op": "gibberish"})
                        status = await client.status()
                finally:
                    server.close()
                    await server.wait_closed()
                return pong, submit, unknown, status

        pong, submit, unknown, status = run(main())
        assert pong["status"] == "ok" and pong["cluster"] is True
        assert submit["status"] == "ok"
        assert submit["node"] in ("n0", "n1", "n2")
        assert unknown["status"] == "error"
        assert "unknown router op" in unknown["error_message"]
        healthz = status["healthz"]
        assert healthz["cluster"] is True
        assert set(healthz["nodes"]) == {"n0", "n1", "n2"}
        for snap in healthz["nodes"].values():
            assert snap["up"] is True
            assert snap["breaker"]["state"] == "closed"
            assert snap["store_entries"] is not None

    def test_parse_backends_validation(self):
        from repro.errors import ConfigError
        parsed = parse_backends("a=127.0.0.1:1, 127.0.0.1:2")
        assert parsed == [("a", "127.0.0.1", 1), ("127.0.0.1:2",
                                                  "127.0.0.1", 2)]
        with pytest.raises(ConfigError):
            parse_backends("nonsense")
        with pytest.raises(ConfigError):
            parse_backends("a=h:1,a=h:2")
        with pytest.raises(ConfigError):
            parse_backends("")


# --------------------------------------------------------------------------
# Satellite: typed transport errors + idempotent client retry.


def _read_line(conn):
    data = b""
    while not data.endswith(b"\n"):
        chunk = conn.recv(4096)
        if not chunk:
            break
        data += chunk
    return data


class _ScriptedServer(threading.Thread):
    """Blocking-socket server running one scripted handler per accept."""

    def __init__(self, *handlers):
        super().__init__(daemon=True)
        self._handlers = list(handlers)
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self.start()

    def run(self):
        for handler in self._handlers:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            try:
                handler(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass
        self.join(timeout=5)


def _truncate_mid_line(conn):
    _read_line(conn)
    conn.sendall(b'{"id": 1, "status": "o')  # half-close mid-response


def _garbage_line(conn):
    _read_line(conn)
    conn.sendall(b"%% not json %%\n")


def _answer_ok(conn):
    message = json.loads(_read_line(conn))
    conn.sendall((json.dumps({
        "id": message["id"], "status": "ok", "cached": True,
        "metrics": {"cycles": 1000},
    }) + "\n").encode())


def _shed_then_close(conn):
    message = json.loads(_read_line(conn))
    conn.sendall((json.dumps({
        "id": message["id"], "status": "shed", "reason": "overload",
        "retry_after_s": 0.5,
    }) + "\n").encode())


class TestClientTransportErrors:
    def test_half_closed_socket_raises_typed_error_not_json_decode(self):
        server = _ScriptedServer(_truncate_mid_line)
        try:
            async def go():
                async with ServiceClient("127.0.0.1", server.port) as c:
                    await c.submit("sim", {"app": "x"})

            with pytest.raises(ServiceProtocolError) as info:
                run(go(), timeout=30)
        finally:
            server.close()
        assert "truncated by half-closed socket" in str(info.value)
        assert not isinstance(info.value, json.JSONDecodeError)

    def test_garbage_response_line_raises_typed_error(self):
        server = _ScriptedServer(_garbage_line)
        try:
            async def go():
                async with ServiceClient("127.0.0.1", server.port) as c:
                    await c.submit("sim", {"app": "x"})

            with pytest.raises(ServiceProtocolError) as info:
                run(go(), timeout=30)
        finally:
            server.close()
        assert "malformed response line" in str(info.value)

    def test_typed_error_is_pickle_safe_and_transient(self):
        import pickle
        from repro.errors import TransientError
        error = ServiceProtocolError("boom", host="h", port=1)
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, ServiceProtocolError)
        assert isinstance(clone, TransientError)
        assert str(clone) == str(error)

    def test_request_sync_retries_transport_failure_once(self):
        server = _ScriptedServer(_truncate_mid_line, _answer_ok)
        sleeps = []
        try:
            response = request_sync(
                "127.0.0.1", server.port, "sim", {"app": "x"},
                transport_retries=1, sleep=sleeps.append,
            )
        finally:
            server.close()
        assert response["status"] == "ok"
        assert len(sleeps) == 1

    def test_request_sync_without_retry_surfaces_typed_error(self):
        server = _ScriptedServer(_truncate_mid_line)
        try:
            with pytest.raises(ServiceProtocolError):
                request_sync(
                    "127.0.0.1", server.port, "sim", {"app": "x"},
                    transport_retries=0,
                )
        finally:
            server.close()

    def test_request_sync_honors_retry_after_hint_with_jitter(self):
        server = _ScriptedServer(_shed_then_close, _answer_ok)
        sleeps = []
        try:
            response = request_sync(
                "127.0.0.1", server.port, "sim", {"app": "x"},
                retries=1, sleep=sleeps.append,
            )
        finally:
            server.close()
        assert response["status"] == "ok"
        # Never sooner than the server asked (hint 0.5s beats jitter).
        assert sleeps and sleeps[0] >= 0.5


# --------------------------------------------------------------------------
# Real processes: CLI serve x3 + route, SIGKILL one backend mid-flood.


@pytest.mark.slow
class TestSubprocessCluster:
    """End-to-end over real processes and the real kernel."""

    def _spawn(self, tmp_path, tag, argv):
        ready = tmp_path / f"ready-{tag}"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", *argv,
             "--ready-file", str(ready)],
            env=dict(os.environ, PYTHONPATH=SRC),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            cwd=REPO,
        )
        deadline = time.monotonic() + 60
        while not ready.exists() and time.monotonic() < deadline:
            assert proc.poll() is None, proc.stderr.read()
            time.sleep(0.05)
        host, port = ready.read_text().split()
        return proc, host, int(port)

    def test_sigkill_mid_flood_keeps_answers_correct(self, tmp_path):
        procs = []
        try:
            backends = []
            for i in range(3):
                proc, host, port = self._spawn(
                    tmp_path, f"b{i}",
                    ["serve", "--port", "0", "--workers", "1",
                     "--store", str(tmp_path / f"store-{i}"),
                     "--heartbeat-timeout", "30"],
                )
                procs.append(proc)
                backends.append(f"n{i}={host}:{port}")
            router_proc, rhost, rport = self._spawn(
                tmp_path, "router",
                ["route", "--port", "0",
                 "--backends", ",".join(backends),
                 "--journal", str(tmp_path / "cluster.json"),
                 "--ping-interval", "0.1", "--down-after", "2",
                 "--call-timeout", "30"],
            )
            procs.append(router_proc)

            payloads = [
                {"program": "spectre_v1", "model": "spectre",
                 "window": 16 + i}
                for i in range(6)
            ]
            first = {}
            for i, payload in enumerate(payloads):
                response = request_sync(
                    rhost, rport, "specflow", payload,
                    retries=3, transport_retries=2,
                )
                assert response["status"] in ("ok", "shed"), response
                if response["status"] == "ok":
                    first[i] = canonical_json(response["metrics"])
                if i == 2:
                    # Mid-flood: SIGKILL one backend, no goodbye.
                    procs[0].kill()
            assert first, "every request was shed"

            # Give the router's detector time to mark the node down and
            # re-replicate, then re-ask everything: answers must match.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                healthz = status_sync(rhost, rport).get("healthz", {})
                if not healthz.get("nodes", {}).get("n0", {}).get("up"):
                    break
                time.sleep(0.2)
            assert not healthz["nodes"]["n0"]["up"]
            for i, payload in enumerate(payloads):
                response = request_sync(
                    rhost, rport, "specflow", payload,
                    retries=3, transport_retries=2,
                )
                assert response["status"] == "ok", response
                if i in first:
                    assert canonical_json(response["metrics"]) == first[i]
            healthz = status_sync(rhost, rport).get("healthz", {})
            assert healthz["replicas"]["under_replicated"] == 0
            assert healthz["counters"]["requests"] >= 12
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.send_signal(signal.SIGTERM)
            for proc in procs:
                # communicate() would hang: a SIGKILLed backend's forked
                # pool worker inherits the pipes and keeps them open.
                try:
                    proc.wait(timeout=60)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    try:
                        proc.wait(timeout=10)
                    except subprocess.TimeoutExpired:
                        pass
                for stream in (proc.stdout, proc.stderr):
                    if stream is not None:
                        stream.close()
