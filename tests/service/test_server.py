"""AnalysisService: cache, coalescing, retry policy, shedding, protocol.

No pytest-asyncio dependency: each test drives a fresh event loop.  Fake
runners reach fork-started pool workers the same way the supervisor
tests do (monkeypatched ``repro.runner.run_spec`` inherited at fork).
"""

import asyncio
import json
import time

import pytest

import repro.runner
from repro.errors import SimTimeoutError
from repro.reliability import LeasePool, RetryPolicy
from repro.service.client import ServiceClient
from repro.service.envelope import JobRequest, canonical_json
from repro.service.server import AnalysisService, serve
from repro.service.store import ResultStore


def run(coro, timeout=120):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(asyncio.wait_for(coro, timeout))
    finally:
        loop.close()


class _FakeCounters:
    def __init__(self, values):
        self._values = values

    def as_dict(self):
        return dict(self._values)


class _FakeResult:
    def __init__(self, seed):
        self.cycles = 1000 + seed
        self.instructions = 500
        self.traffic_bytes = 64
        self.traffic_breakdown = {"data": 64}
        self.counters = _FakeCounters({"fake.counter": 1})
        self.sanitizer_report = None

    def count(self, name):
        return 1 if name == "fake.counter" else 0


def _fake_ok(app, config, seed=0, **kwargs):
    return _FakeResult(seed)


def _slow_ok(app, config, seed=0, **kwargs):
    time.sleep(0.4)
    return _FakeResult(seed)


def _timeout_on_seed0(app, config, seed=0, **kwargs):
    if seed == 0:
        raise SimTimeoutError(0, "synthetic stall")
    return _FakeResult(seed)


def _boom(app, config, seed=0, **kwargs):
    raise ValueError("deterministic model bug")


def _service(tmp_path, workers=2, **kwargs):
    kwargs.setdefault("max_depth", 16)
    return AnalysisService(
        store=ResultStore(tmp_path / "cache"),
        pool=LeasePool(
            workers=workers, heartbeat_timeout=30.0, poll_interval=0.01
        ),
        **kwargs,
    )


def _sim(app="mcf", **payload):
    return JobRequest("sim", dict({"app": app}, **payload))


class TestCaching:
    def test_second_request_is_a_bit_identical_cache_hit(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _fake_ok)

        async def main():
            service = await _service(tmp_path).start()
            try:
                fresh = await service.submit(_sim())
                cached = await service.submit(_sim())
                return fresh, cached, service.healthz()
            finally:
                await service.drain(timeout=5)

        fresh, cached, health = run(main())
        assert (fresh["status"], fresh["cached"]) == ("ok", False)
        assert (cached["status"], cached["cached"]) == ("ok", True)
        # Bit-identity of the payload, not just equality.
        assert canonical_json(fresh["metrics"]) == canonical_json(
            cached["metrics"]
        )
        assert health["cache"]["hits"] == 1

    def test_concurrent_identical_requests_coalesce(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _slow_ok)

        async def main():
            service = await _service(tmp_path).start()
            try:
                responses = await asyncio.gather(
                    *(service.submit(_sim()) for _ in range(4))
                )
                return responses, service.healthz()
            finally:
                await service.drain(timeout=5)

        responses, health = run(main())
        assert all(r["status"] == "ok" for r in responses)
        metrics = {canonical_json(r["metrics"]) for r in responses}
        assert len(metrics) == 1
        # One compute, three waiters -- the pool saw a single lease.
        assert health["counters"]["coalesced"] == 3
        assert health["pool"]["stats"]["leases_completed"] == 1

    def test_nocache_bypasses_store_in_both_directions(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _fake_ok)

        async def main():
            service = await _service(tmp_path).start()
            try:
                first = await service.submit(
                    JobRequest("sim", {"app": "mcf"}, nocache=True)
                )
                second = await service.submit(
                    JobRequest("sim", {"app": "mcf"}, nocache=True)
                )
                return first, second, service.store.entry_count()
            finally:
                await service.drain(timeout=5)

        first, second, entries = run(main())
        assert first["cached"] is False and second["cached"] is False
        assert entries == 0


class TestFailurePolicy:
    def test_failed_requests_are_never_cached(self, tmp_path, monkeypatch):
        monkeypatch.setattr(repro.runner, "run_spec", _boom)

        async def main():
            service = await _service(tmp_path).start()
            try:
                first = await service.submit(_sim())
                second = await service.submit(_sim())
                return first, second, service.store.entry_count()
            finally:
                await service.drain(timeout=5)

        first, second, entries = run(main())
        assert first["status"] == "failed"
        assert first["error_class"] == "ValueError"
        assert second["status"] == "failed"  # recomputed, not served stale
        assert entries == 0

    def test_retryable_error_bumps_seed_and_succeeds(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _timeout_on_seed0)

        async def main():
            service = await _service(
                tmp_path, policy=RetryPolicy(max_attempts=3),
                backoff_base_s=0.01,
            ).start()
            try:
                return await service.submit(_sim()), service.healthz()
            finally:
                await service.drain(timeout=5)

        response, health = run(main())
        assert response["status"] == "ok"
        assert response["attempts"] == 2
        assert health["counters"]["retries"] == 1


class TestBackpressure:
    def test_overload_sheds_with_retry_hint(self, tmp_path, monkeypatch):
        monkeypatch.setattr(repro.runner, "run_spec", _slow_ok)

        async def main():
            service = await _service(
                tmp_path, workers=1, max_depth=2
            ).start()
            try:
                return await asyncio.gather(
                    *(
                        service.submit(_sim(seed=i))
                        for i in range(8)
                    )
                )
            finally:
                await service.drain(timeout=10)

        responses = run(main())
        statuses = [r["status"] for r in responses]
        shed = [r for r in responses if r["status"] == "shed"]
        assert shed, f"overload must shed: {statuses}"
        assert all(s in ("ok", "shed") for s in statuses)
        for response in shed:
            assert response["reason"] == "queue-full"
            assert response["retry_after_s"] > 0

    def test_per_client_cap_protects_other_clients(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _slow_ok)

        async def main():
            service = await _service(
                tmp_path, workers=1, max_depth=16, per_client_cap=2
            ).start()
            try:
                flood = [
                    service.submit(
                        JobRequest(
                            "sim", {"app": "mcf", "seed": i},
                            client_id="flood",
                        )
                    )
                    for i in range(6)
                ]
                await asyncio.sleep(0.05)
                solo = service.submit(
                    JobRequest("sim", {"app": "hmmer"}, client_id="solo")
                )
                return await asyncio.gather(solo, *flood)
            finally:
                await service.drain(timeout=10)

        responses = run(main())
        assert responses[0]["status"] == "ok"  # solo was never shed
        assert any(r["status"] == "shed" for r in responses[1:])


class TestProtocol:
    def test_tcp_round_trip_and_error_paths(self, tmp_path, monkeypatch):
        monkeypatch.setattr(repro.runner, "run_spec", _fake_ok)

        async def main():
            service = _service(tmp_path)
            bound = {}
            server = asyncio.ensure_future(
                serve(
                    service, port=0,
                    ready_callback=lambda h, p: bound.update(h=h, p=p),
                )
            )
            while not bound:
                await asyncio.sleep(0.01)
            out = {}
            async with ServiceClient(bound["h"], bound["p"]) as client:
                out["ping"] = await client.ping()
                out["submit"] = await client.submit("sim", {"app": "mcf"})
                out["repeat"] = await client.submit("sim", {"app": "mcf"})
                out["bad_kind"] = await client.submit("nope", {})
                out["status"] = await client.status()

            # Raw connection: malformed JSON and unknown ops answer
            # with errors instead of wedging the connection.
            reader, writer = await asyncio.open_connection(
                bound["h"], bound["p"]
            )
            writer.write(b"this is not json\n")
            out["malformed"] = json.loads(await reader.readline())
            writer.write(b'{"op": "warp", "id": 9}\n')
            out["unknown_op"] = json.loads(await reader.readline())
            writer.write(b'{"op": "drain", "id": 10}\n')
            out["drain"] = json.loads(await reader.readline())
            writer.close()
            out["origin"] = await asyncio.wait_for(server, timeout=30)
            return out

        out = run(main())
        assert out["ping"]["pong"] is True
        assert out["submit"]["status"] == "ok"
        assert out["repeat"]["cached"] is True
        assert out["bad_kind"]["status"] == "error"
        assert out["bad_kind"]["error_class"] == "ConfigError"
        # bad_kind was rejected at parse time, before service.submit.
        assert out["status"]["healthz"]["counters"]["requests"] == 2
        assert out["malformed"]["status"] == "error"
        assert out["unknown_op"]["status"] == "error"
        assert out["drain"]["draining"] is True
        assert out["origin"] == "drain-op"

    def test_healthz_is_json_serializable(self, tmp_path, monkeypatch):
        monkeypatch.setattr(repro.runner, "run_spec", _fake_ok)

        async def main():
            service = await _service(tmp_path).start()
            try:
                await service.submit(_sim())
                return service.healthz()
            finally:
                await service.drain(timeout=5)

        health = run(main())
        json.dumps(health)  # must not raise
        assert health["counters"]["completed"] == 1
        assert health["queue"]["total"] == 0
        assert len(health["pool"]["workers"]) == 2
