"""Unit tests for the cluster's failure detectors.

All three detectors take an injectable clock, so every transition is
exercised deterministically — no sleeps, no wall-clock reads.
"""

from repro.service.health import BackendHealth, CircuitBreaker, LatencyTracker


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def _breaker(self, clock, **kwargs):
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("cooldown_s", 2.0)
        return CircuitBreaker(clock=clock, **kwargs)

    def test_stays_closed_below_threshold(self):
        breaker = self._breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = self._breaker(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_trips_open_and_rejects_until_cooldown(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.stats["rejections"] == 1
        clock.advance(1.9)
        assert not breaker.allow()

    def test_half_open_probe_budget_is_bounded(self):
        clock = FakeClock()
        breaker = self._breaker(clock, probe_budget=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()          # the single probe
        assert breaker.state == "half-open"
        assert not breaker.allow()      # budget exhausted
        assert breaker.stats["probes"] == 1

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.stats["closes"] == 1

    def test_probe_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.stats["opens"] == 2
        assert not breaker.allow()
        # A fresh cooldown starts from the re-open, not the first trip.
        clock.advance(2.0)
        assert breaker.allow()


class TestLatencyTracker:
    def test_p95_defaults_until_warmed_up(self):
        tracker = LatencyTracker(default_s=0.05)
        assert tracker.p95() == 0.05
        tracker.record(0.2)
        assert tracker.p95() == 0.2

    def test_p95_tracks_the_tail_not_the_median(self):
        tracker = LatencyTracker(window=128)
        for _ in range(95):
            tracker.record(0.01)
        for _ in range(5):
            tracker.record(1.0)
        assert tracker.p95() == 1.0

    def test_window_evicts_oldest_samples(self):
        tracker = LatencyTracker(window=4)
        for _ in range(4):
            tracker.record(1.0)
        for _ in range(4):
            tracker.record(0.01)
        assert tracker.p95() == 0.01

    def test_ema_converges_toward_recent_latency(self):
        tracker = LatencyTracker(alpha=0.5)
        tracker.record(1.0)
        tracker.record(0.0)
        tracker.record(0.0)
        assert tracker.ema_s == 0.25

    def test_snapshot_is_json_ready(self):
        tracker = LatencyTracker()
        tracker.record(0.1)
        snap = tracker.snapshot()
        assert snap == {"ema_ms": 100.0, "p95_ms": 100.0, "samples": 1}


class TestBackendHealth:
    def _health(self, clock=None, **kwargs):
        clock = clock or FakeClock()
        kwargs.setdefault("down_after", 3)
        return BackendHealth("node-0", clock=clock, **kwargs)

    def test_down_after_consecutive_ping_failures_only(self):
        health = self._health()
        assert health.record_ping(False) is None
        assert health.record_ping(True) is None
        assert health.record_ping(False) is None
        assert health.record_ping(False) is None
        assert health.up
        assert health.record_ping(False) == "down"
        assert not health.up
        assert health.transitions == {"down": 1, "up": 0}

    def test_single_good_ping_recovers(self):
        health = self._health()
        for _ in range(3):
            health.record_ping(False)
        assert health.record_ping(True) == "up"
        assert health.up
        assert health.ping_failures == 0

    def test_pings_feed_the_breaker_so_idle_nodes_recover(self):
        # The router never sends traffic through an open breaker, so
        # without this coupling a recovered-but-idle node would stay
        # open forever.
        clock = FakeClock()
        health = self._health(clock=clock)
        for _ in range(3):
            health.record_ping(False)
        assert health.breaker.state == "open"
        health.record_ping(True)
        assert health.breaker.state == "closed"

    def test_record_call_updates_latency_and_breaker(self):
        health = self._health()
        health.record_call(True, seconds=0.2)
        assert health.latency.p95() == 0.2
        for _ in range(3):
            health.record_call(False, seconds=1.0)
        assert health.breaker.state == "open"

    def test_snapshot_shape(self):
        health = self._health()
        snap = health.snapshot()
        assert snap["node"] == "node-0"
        assert snap["up"] is True
        assert set(snap) == {
            "node", "up", "ping_failures", "transitions", "breaker",
            "latency",
        }
