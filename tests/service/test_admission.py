"""Admission queue: bounded depth, lane weights, per-client fairness."""

from repro.service.admission import AdmissionQueue


class _Job:
    def __init__(self, name, lane="interactive", client="anon"):
        self.name = name
        self.lane = lane
        self.client_id = client

    def __repr__(self):
        return f"_Job({self.name})"


def _names(jobs):
    return [job.name for job in jobs]


class TestBounds:
    def test_offer_past_max_depth_is_rejected(self):
        queue = AdmissionQueue(max_depth=2)
        assert queue.offer(_Job("a"))
        assert queue.offer(_Job("b"))
        assert not queue.offer(_Job("c"))
        assert len(queue) == 2

    def test_take_frees_capacity(self):
        queue = AdmissionQueue(max_depth=1)
        queue.offer(_Job("a"))
        assert queue.take().name == "a"
        assert queue.offer(_Job("b"))

    def test_per_client_cap(self):
        queue = AdmissionQueue(max_depth=10, per_client_cap=2)
        assert queue.offer(_Job("a1", client="a"))
        assert queue.offer(_Job("a2", client="a"))
        assert not queue.offer(_Job("a3", client="a"))
        # Other clients are unaffected by a's cap.
        assert queue.offer(_Job("b1", client="b"))

    def test_empty_take_returns_none(self):
        assert AdmissionQueue().take() is None


class TestFairness:
    def test_lane_weights_interleave_3_to_1(self):
        queue = AdmissionQueue(max_depth=100)
        for i in range(6):
            queue.offer(_Job(f"i{i}", lane="interactive"))
            queue.offer(_Job(f"b{i}", lane="batch"))
        order = _names(queue.drain())
        # Default weights 3:1 -- three interactive per batch, and batch
        # is never starved.
        assert order[:8] == ["i0", "i1", "i2", "b0", "i3", "i4", "i5", "b1"]

    def test_batch_drains_when_interactive_is_empty(self):
        queue = AdmissionQueue(max_depth=10)
        for i in range(3):
            queue.offer(_Job(f"b{i}", lane="batch"))
        assert _names(queue.drain()) == ["b0", "b1", "b2"]

    def test_clients_round_robin_within_a_lane(self):
        queue = AdmissionQueue(max_depth=100)
        for i in range(3):
            queue.offer(_Job(f"flood{i}", client="flood"))
        queue.offer(_Job("solo0", client="solo"))
        order = _names(queue.drain())
        # The one-request client is served second, not behind the flood.
        assert order == ["flood0", "solo0", "flood1", "flood2"]

    def test_depths_snapshot(self):
        queue = AdmissionQueue(max_depth=10)
        queue.offer(_Job("a", lane="interactive"))
        queue.offer(_Job("b", lane="batch"))
        assert queue.depths() == {"interactive": 1, "batch": 1, "total": 2}

    def test_identical_sequences_order_identically(self):
        def fill(queue):
            for i in range(5):
                queue.offer(_Job(f"j{i}", lane=("batch", "interactive")[i % 2],
                                 client=f"c{i % 3}"))
            return _names(queue.drain())

        assert fill(AdmissionQueue()) == fill(AdmissionQueue())
