"""Mesh topology tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.network.topology import MeshTopology


class TestMeshTopology:
    def test_table_iv_mesh_dimensions(self):
        mesh = MeshTopology(4, 2)
        assert mesh.num_nodes == 8
        assert mesh.max_hops() == 4

    def test_coords_row_major(self):
        mesh = MeshTopology(4, 2)
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(3) == (3, 0)
        assert mesh.coords(4) == (0, 1)
        assert mesh.coords(7) == (3, 1)

    def test_hops_manhattan(self):
        mesh = MeshTopology(4, 2)
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 3) == 3
        assert mesh.hops(0, 7) == 4
        assert mesh.hops(1, 6) == 2

    def test_route_endpoints(self):
        mesh = MeshTopology(4, 2)
        route = mesh.route(0, 7)
        assert route[0] == 0
        assert route[-1] == 7
        assert len(route) == mesh.hops(0, 7) + 1

    def test_route_steps_are_neighbors(self):
        mesh = MeshTopology(4, 2)
        route = mesh.route(1, 6)
        for a, b in zip(route, route[1:]):
            assert mesh.hops(a, b) == 1

    def test_invalid_node_raises(self):
        with pytest.raises(ConfigError):
            MeshTopology(4, 2).coords(8)

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ConfigError):
            MeshTopology(0, 2)

    @given(
        a=st.integers(min_value=0, max_value=7),
        b=st.integers(min_value=0, max_value=7),
    )
    def test_hops_symmetric(self, a, b):
        mesh = MeshTopology(4, 2)
        assert mesh.hops(a, b) == mesh.hops(b, a)

    @given(
        a=st.integers(min_value=0, max_value=7),
        b=st.integers(min_value=0, max_value=7),
        c=st.integers(min_value=0, max_value=7),
    )
    def test_triangle_inequality(self, a, b, c):
        mesh = MeshTopology(4, 2)
        assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)
