"""NoC latency and traffic accounting tests."""

from repro.network.noc import NoC, TrafficCategory
from repro.params import NetworkParams


def make_noc():
    return NoC(NetworkParams())


class TestNoC:
    def test_latency_per_hop(self):
        noc = make_noc()
        assert noc.delay(0, 0) == 0
        assert noc.delay(0, 3) == 3
        assert noc.round_trip(0, 7) == 8

    def test_send_accounts_control_bytes(self):
        noc = make_noc()
        noc.send(0, 1, is_data=False, category=TrafficCategory.NORMAL)
        assert noc.total_bytes == 8
        assert noc.messages == 1

    def test_send_accounts_data_bytes(self):
        noc = make_noc()
        noc.send(0, 1, is_data=True, category=TrafficCategory.SPECLOAD)
        assert noc.bytes_by_category[TrafficCategory.SPECLOAD] == 72

    def test_byte_hops_scale_with_distance(self):
        noc = make_noc()
        noc.send(0, 7, is_data=True, category=TrafficCategory.NORMAL)
        assert noc.byte_hops == 72 * 4

    def test_breakdown_keys(self):
        noc = make_noc()
        noc.send(0, 1, False, TrafficCategory.NORMAL)
        noc.send(0, 1, False, TrafficCategory.SPECLOAD)
        noc.send(0, 1, True, TrafficCategory.EXPOSE_VALIDATE)
        split = noc.traffic_breakdown()
        assert split == {"normal": 8, "specload": 8, "expose_validate": 72}

    def test_send_returns_latency(self):
        noc = make_noc()
        assert noc.send(0, 2, False, TrafficCategory.NORMAL) == 2

    def test_reset_stats(self):
        noc = make_noc()
        noc.send(0, 1, True, TrafficCategory.NORMAL)
        noc.reset_stats()
        assert noc.total_bytes == 0
        assert noc.messages == 0
