"""reprolint: rule firing, scope gating, and suppression accounting."""

import json

import pytest

from repro.staticcheck.lint import (
    ALL_RULES,
    classify_scope,
    lint_file,
    run_lint,
    rule_catalog,
)
from repro.staticcheck.lint.report import render_json, render_text


def lint_source(source, path="src/repro/sim/fake.py"):
    return lint_file(path, ALL_RULES, source=source)


def rules_hit(source, path="src/repro/sim/fake.py"):
    return {f.rule for f in lint_source(source, path)}


class TestScopeClassification:
    def test_sim_packages(self):
        assert classify_scope("src/repro/coherence/hierarchy.py") == "sim"
        assert classify_scope("src/repro/cpu/core.py") == "sim"
        assert classify_scope("src/repro/system.py") == "sim"

    def test_host_packages(self):
        assert classify_scope("src/repro/experiments/engine.py") == "host"
        assert classify_scope("src/repro/reliability/faults.py") == "host"
        assert classify_scope("src/repro/staticcheck/model.py") == "host"

    def test_pure_modules(self):
        assert classify_scope("src/repro/coherence/protocol.py") == "pure"
        assert classify_scope("src/repro/invisispec/lifecycle.py") == "pure"

    def test_unknown_defaults_to_sim(self):
        assert classify_scope("src/repro/newpkg/thing.py") == "sim"


class TestWallClock:
    def test_flags_time_calls_in_sim_scope(self):
        src = "import time\ndef f():\n    return time.monotonic()\n"
        assert "wallclock-in-sim" in rules_hit(src)

    def test_allows_wall_clock_in_host_scope(self):
        src = "import time\ndef f():\n    return time.monotonic()\n"
        hits = rules_hit(src, path="src/repro/experiments/fake.py")
        assert "wallclock-in-sim" not in hits


class TestUnseededRandom:
    def test_flags_global_rng(self):
        assert "unseeded-random" in rules_hit(
            "import random\nx = random.randint(0, 4)\n"
        )

    def test_flags_seedless_random_instance(self):
        assert "unseeded-random" in rules_hit(
            "import random\nrng = random.Random()\n"
        )

    def test_allows_seeded_random_instance(self):
        assert "unseeded-random" not in rules_hit(
            "import random\nrng = random.Random(42)\n"
        )

    def test_applies_in_host_scope_too(self):
        hits = rules_hit(
            "import random\nx = random.random()\n",
            path="src/repro/experiments/fake.py",
        )
        assert "unseeded-random" in hits


class TestUnorderedIteration:
    def test_flags_for_over_set_call(self):
        assert "unordered-iteration" in rules_hit(
            "for x in set(items):\n    go(x)\n"
        )

    def test_flags_comprehension_over_set_literal(self):
        assert "unordered-iteration" in rules_hit(
            "out = [x for x in {1, 2, 3}]\n"
        )

    def test_flags_known_set_attribute(self):
        assert "unordered-iteration" in rules_hit(
            "for c in entry.sharers:\n    go(c)\n"
        )

    def test_flags_set_algebra(self):
        assert "unordered-iteration" in rules_hit(
            "for c in tracked - {core}:\n    go(c)\n"
        )

    def test_flags_list_of_set(self):
        assert "unordered-iteration" in rules_hit("order = list(set(xs))\n")

    def test_allows_sorted_walk(self):
        assert "unordered-iteration" not in rules_hit(
            "for c in sorted(entry.sharers):\n    go(c)\n"
        )


class TestFloatCycles:
    def test_flags_cycle_division(self):
        assert "float-cycles" in rules_hit("rate = hits / total_cycles\n")

    def test_flags_float_conversion(self):
        assert "float-cycles" in rules_hit("x = float(self.cycle)\n")

    def test_allows_floor_division(self):
        assert "float-cycles" not in rules_hit("n = cycles // epoch_len\n")

    def test_allows_non_cycle_division(self):
        assert "float-cycles" not in rules_hit("ratio = hits / misses\n")


class TestPureProtocol:
    PURE = "src/repro/coherence/protocol.py"

    def test_flags_stats_reference(self):
        hits = rules_hit("def f(counters):\n    counters.bump('x')\n",
                         path=self.PURE)
        assert "pure-protocol" in hits

    def test_flags_stats_import(self):
        hits = rules_hit("from ..stats.counters import Counters\n",
                         path=self.PURE)
        assert "pure-protocol" in hits

    def test_rule_inactive_outside_pure_modules(self):
        hits = rules_hit("def f(counters):\n    counters.bump('x')\n")
        assert "pure-protocol" not in hits


class TestKernelApiBypass:
    def test_flags_direct_event_queue_scheduling(self):
        assert "kernel-api-bypass" in rules_hit(
            "self.kernel.events.schedule(5, cb)\n"
        )

    def test_kernel_module_is_exempt(self):
        hits = rules_hit(
            "self.events.schedule(5, cb)\n",
            path="src/repro/sim/kernel.py",
        )
        assert "kernel-api-bypass" not in hits

    def test_kernel_schedule_is_fine(self):
        assert "kernel-api-bypass" not in rules_hit(
            "self.kernel.schedule(5, cb)\n"
        )


class TestBlockingCallInAsync:
    SERVICE = "src/repro/service/fake.py"

    def test_flags_time_sleep_in_async_def(self):
        src = (
            "import time\n"
            "async def handler():\n"
            "    time.sleep(0.1)\n"
        )
        assert "blocking-call-in-async" in rules_hit(src, path=self.SERVICE)

    def test_flags_open_in_async_def(self):
        src = (
            "async def handler(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n"
        )
        assert "blocking-call-in-async" in rules_hit(src, path=self.SERVICE)

    def test_flags_blocking_socket_constructor(self):
        src = (
            "import socket\n"
            "async def handler(host):\n"
            "    return socket.create_connection((host, 80))\n"
        )
        assert "blocking-call-in-async" in rules_hit(src, path=self.SERVICE)

    def test_flags_unawaited_raw_socket_method(self):
        src = (
            "async def handler(sock):\n"
            "    data = sock.recv(4096)\n"
            "    return data\n"
        )
        assert "blocking-call-in-async" in rules_hit(src, path=self.SERVICE)

    def test_allows_awaited_coroutine_named_like_a_socket_method(self):
        src = (
            "async def handler(client):\n"
            "    await client.connect()\n"
        )
        hits = rules_hit(src, path=self.SERVICE)
        assert "blocking-call-in-async" not in hits

    def test_allows_asyncio_sleep(self):
        src = (
            "import asyncio\n"
            "async def handler():\n"
            "    await asyncio.sleep(0.1)\n"
        )
        hits = rules_hit(src, path=self.SERVICE)
        assert "blocking-call-in-async" not in hits

    def test_sync_def_is_out_of_scope(self):
        src = "import time\ndef handler():\n    time.sleep(0.1)\n"
        hits = rules_hit(src, path=self.SERVICE)
        assert "blocking-call-in-async" not in hits

    def test_nested_sync_helper_is_exempt(self):
        # a sync def inside a coroutine is the run_in_executor idiom:
        # the blocking work executes on a thread, not the event loop
        src = (
            "import time\n"
            "async def handler(loop):\n"
            "    def work():\n"
            "        time.sleep(0.1)\n"
            "    await loop.run_in_executor(None, work)\n"
        )
        hits = rules_hit(src, path=self.SERVICE)
        assert "blocking-call-in-async" not in hits

    def test_rule_is_host_scope_only(self):
        src = (
            "import time\n"
            "async def handler():\n"
            "    time.sleep(0.1)\n"
        )
        hits = rules_hit(src)  # sim scope path
        assert "blocking-call-in-async" not in hits

    def test_service_tree_is_clean(self):
        findings, nfiles = run_lint(["src/repro/service"])
        async_hits = [
            f for f in findings if f.rule == "blocking-call-in-async"
        ]
        assert nfiles >= 6
        assert async_hits == [], [repr(f) for f in async_hits]


class TestSuppressionAudit:
    def test_audit_lists_justified_waivers(self, tmp_path):
        from repro.staticcheck.lint import audit_suppressions

        mod = tmp_path / "mod.py"
        mod.write_text(
            "for x in set(items):  "
            "# reprolint: disable=unordered-iteration -- summed next line\n"
            "    total += x\n"
        )
        entries = audit_suppressions([str(tmp_path)])
        assert len(entries) == 1
        assert entries[0]["rules"] == ["unordered-iteration"]
        assert entries[0]["justification"] == "summed next line"
        assert entries[0]["line"] == 1

    def test_repo_waiver_list_is_small_and_justified(self):
        from repro.staticcheck.lint import audit_suppressions

        entries = audit_suppressions(["src/repro"])
        # every live waiver must carry a justification (the engine
        # rejects bare ones) and the list must stay short enough to
        # review by hand
        assert len(entries) <= 5
        for entry in entries:
            assert entry["justification"].strip()


class TestSuppressions:
    def test_justified_suppression_silences_finding(self):
        src = (
            "for x in set(items):  "
            "# reprolint: disable=unordered-iteration -- order irrelevant, "
            "results are summed\n"
            "    total += x\n"
        )
        assert rules_hit(src) == set()

    def test_suppression_without_justification_is_reported(self):
        src = (
            "for x in set(items):  # reprolint: disable=unordered-iteration\n"
            "    total += x\n"
        )
        hits = rules_hit(src)
        assert "bad-suppression" in hits
        # and the underlying finding is NOT silenced
        assert "unordered-iteration" in hits

    def test_unused_suppression_is_reported(self):
        src = (
            "x = 1  # reprolint: disable=float-cycles -- stale waiver\n"
        )
        assert "unused-suppression" in rules_hit(src)

    def test_suppression_only_covers_named_rule(self):
        src = (
            "for x in set(items):  "
            "# reprolint: disable=float-cycles -- wrong rule name\n"
            "    total += x\n"
        )
        hits = rules_hit(src)
        assert "unordered-iteration" in hits


class TestReportersAndTree:
    def test_repo_tree_is_clean(self):
        findings, nfiles = run_lint(["src/repro"])
        assert nfiles > 80
        assert findings == [], [repr(f) for f in findings]

    def test_syntax_error_is_a_finding(self):
        findings = lint_source("def broken(:\n")
        assert [f.rule for f in findings] == ["syntax-error"]

    def test_json_reporter_round_trips(self):
        findings = lint_source("x = hits / total_cycles\n")
        payload = json.loads(render_json(findings, 1))
        assert payload["count"] == len(findings) == 1
        assert payload["findings"][0]["rule"] == "float-cycles"

    def test_text_reporter_mentions_location(self):
        findings = lint_source("x = hits / total_cycles\n")
        text = render_text(findings, 1)
        assert "float-cycles" in text
        assert ":1:" in text

    def test_rule_catalog_is_complete(self):
        catalog = rule_catalog()
        assert len(catalog) == len(ALL_RULES) >= 6
        for description, scopes in catalog.values():
            assert description
            assert scopes


class TestCLI:
    def test_lint_cli_exit_codes(self, tmp_path, capsys):
        from repro.staticcheck.__main__ import main

        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean)]) == 0
        dirty = tmp_path / "repro" / "sim" / "dirty.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(dirty)]) == 1
        capsys.readouterr()

    def test_model_cli_json(self, capsys):
        from repro.staticcheck.__main__ import main

        assert main(["model", "--cores", "2", "--lines", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] and payload["complete"]
        assert payload["states"] > 1_000

    def test_model_cli_single_mutation(self, capsys):
        from repro.staticcheck.__main__ import main

        assert main(["model", "--mutation", "upgrade_drops_one_inv"]) == 0
        out = capsys.readouterr().out
        assert "caught" in out
