"""Bit-identical stats across interpreters with different hash seeds.

The reprolint ``unordered-iteration`` rule exists because set iteration
order follows PYTHONHASHSEED; this test is the dynamic proof that the
simulator has no such dependence left.  A small Figure-4 cell (one SPEC
app under IS-Spectre/TSO) runs in two *fresh interpreter processes*
with different, explicit PYTHONHASHSEED values; every counter and the
cycle count must match exactly — not approximately.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

_SRC = str(Path(__file__).resolve().parents[2] / "src")

_CELL_SCRIPT = """
import json, sys
from repro.configs import ConsistencyModel, ProcessorConfig, Scheme
from repro.runner import run_spec

result = run_spec(
    "mcf",
    ProcessorConfig(scheme=Scheme.IS_SPECTRE, consistency=ConsistencyModel.TSO),
    instructions=1500,
    seed=7,
)
fingerprint = {
    "cycles": result.cycles,
    "instructions": result.instructions,
    "traffic": result.traffic_breakdown,
    "counters": dict(sorted(result.counters.as_dict().items())),
}
json.dump(fingerprint, sys.stdout, sort_keys=True)
"""


def _run_cell(hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = _SRC
    proc = subprocess.run(
        [sys.executable, "-c", _CELL_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.slow
def test_stats_identical_across_hash_seeds():
    a = _run_cell(1)
    b = _run_cell(424242)
    assert a["cycles"] == b["cycles"]
    assert a["counters"] == b["counters"]
    assert a["traffic"] == b["traffic"]
    assert a == b
