"""Every seeded protocol bug must be caught, with the right property.

Each registry entry is one single-edit mutation of the abstract
protocol.  The checker must find a counterexample for all of them on
the smallest configuration (2 cores, 1 line) — this is the checker's
own regression suite: a weakened invariant or a lost transition rule
shows up here as a mutation going silently green.
"""

import pytest

from repro.staticcheck.model import ModelChecker
from repro.staticcheck.mutations import MUTATIONS, check_mutation


@pytest.mark.parametrize("mut", MUTATIONS, ids=[m.name for m in MUTATIONS])
def test_mutation_is_caught_with_expected_property(mut):
    result = check_mutation(mut.name, cores=2, lines=1, max_seconds=120)
    assert result.violation is not None, (
        f"mutation {mut.name} escaped the checker "
        f"({result.states} states explored)"
    )
    assert result.violation.prop == mut.expected_property
    assert result.violation.trace, "counterexample must carry a trace"


def test_registry_is_large_enough():
    # the acceptance bar is >= 12 seeded single-edit mutations
    assert len(MUTATIONS) >= 12


def test_traces_are_shortest_known():
    """BFS order guarantees a minimal-length counterexample; pin the
    depth so a search-order regression (DFS-like behaviour, lost
    dedup) is visible."""
    result = check_mutation("spec_mem_fills_l2", cores=2, lines=1)
    assert len(result.violation.trace) == 1


def test_counterexample_traces_replay_in_the_abstract_model():
    """apply_label must reproduce the violation the BFS reported."""
    for mut in MUTATIONS:
        result = check_mutation(mut.name, cores=2, lines=1)
        ck = ModelChecker(cores=2, lines=1, mutation=mut.name)
        state = ck.canonicalize(ck.initial_state())
        replay_viol = None
        for label in result.violation.trace:
            state, step_viol = ck.apply_label(state, label)
            if step_viol is not None:
                replay_viol = step_viol
                break
            state = ck.canonicalize(state)
            state_viol = ck.check_invariants(state)
            if state_viol is not None:
                replay_viol = state_viol
                break
        assert replay_viol is not None, mut.name
        assert replay_viol.prop == result.violation.prop, mut.name
