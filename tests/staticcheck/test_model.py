"""The explicit-state protocol model checker on the unmodified tables.

The checker extracts its transition rules from the same declarative
tables (repro.coherence.protocol) that drive the live simulator, so a
clean exhaustive run here is a proof about the shipped routing logic,
not about a hand-copied model.
"""

import pytest

from repro.staticcheck.model import (
    MUTATION_NAMES,
    ModelChecker,
    Violation,
)


class TestBaseProtocolClean:
    def test_two_cores_one_line_exhaustive(self):
        result = ModelChecker(cores=2, lines=1).run(max_seconds=60)
        assert result.ok, result.violation
        assert result.complete
        # regression floor: the reachable space must stay non-trivial
        # (a collapse here means rules silently stopped firing)
        assert result.states > 1_000
        assert result.transitions > result.states

    def test_two_cores_two_lines_exhaustive(self):
        result = ModelChecker(cores=2, lines=2).run(max_seconds=120)
        assert result.ok, result.violation
        assert result.complete
        assert result.states > 10_000

    @pytest.mark.slow
    def test_three_cores_one_line_exhaustive(self):
        result = ModelChecker(cores=3, lines=1).run(max_seconds=180)
        assert result.ok, result.violation
        assert result.complete


class TestCheckerMechanics:
    def test_initial_state_is_quiescent_and_canonical(self):
        ck = ModelChecker(cores=2, lines=1)
        init = ck.initial_state()
        assert ck.canonicalize(init) == ck.canonicalize(
            ck.canonicalize(init)
        )
        assert ck.check_invariants(init) is None

    def test_successors_apply_label_round_trip(self):
        """Every successor must be reachable again via apply_label —
        this is what makes counterexample traces replayable."""
        ck = ModelChecker(cores=2, lines=1)
        state = ck.canonicalize(ck.initial_state())
        for label, _tags, ns, _viol in ck.successors(state):
            via_label, _ = ck.apply_label(state, label)
            assert via_label == ns, label

    def test_symmetry_reduction_is_sound_at_depth_two(self):
        """Canonicalizing must never merge states whose invariant
        verdicts differ."""
        ck = ModelChecker(cores=2, lines=1)
        frontier = [ck.canonicalize(ck.initial_state())]
        for _ in range(2):
            nxt = []
            for state in frontier:
                for _label, _tags, ns, _v in ck.successors(state):
                    canon = ck.canonicalize(ns)
                    ok_raw = ck.check_invariants(ns) is None
                    ok_canon = ck.check_invariants(canon) is None
                    assert ok_raw == ok_canon
                    nxt.append(canon)
            frontier = nxt

    def test_violation_carries_trace(self):
        v = Violation("swmr", "detail", trace=["a", "b"])
        assert v.prop == "swmr"
        assert v.trace == ["a", "b"]

    def test_mutation_names_are_unique(self):
        assert len(MUTATION_NAMES) == len(set(MUTATION_NAMES))
        assert len(MUTATION_NAMES) >= 12

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError):
            ModelChecker(cores=2, lines=1, mutation="no_such_bug")

    def test_state_cap_reports_incomplete(self):
        result = ModelChecker(cores=2, lines=1, max_states=50).run()
        assert not result.complete
        assert result.ok  # capped, but no violation in what was seen
