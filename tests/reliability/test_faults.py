"""Fault-injection framework: schedule language, triggers, hierarchy wiring."""

import pytest

from repro.configs import ProcessorConfig, Scheme
from repro.errors import (
    ConfigError,
    DeadlockError,
    ReproError,
    SimTimeoutError,
)
from repro.reliability.faults import (
    FAULT_SITES,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
)
from repro.runner import run_parsec, run_spec

CFG = ProcessorConfig(scheme=Scheme.BASE)


class TestScheduleLanguage:
    def test_parse_full_spec(self):
        spec = FaultSpec.parse("dram.stall:nth=2,extra=5000,count=3")
        assert spec.site == "dram.stall"
        assert spec.nth == 2
        assert spec.extra == 5000
        assert spec.count == 3

    def test_parse_prob_and_window(self):
        spec = FaultSpec.parse("noc.delay:prob=0.25,window=100-900")
        assert spec.prob == 0.25
        assert spec.window == (100, 900)

    def test_default_extra_per_site(self):
        assert FaultSpec.parse("dram.stall:nth=1").extra == 5000
        assert FaultSpec.parse("noc.delay:nth=1").extra == 200

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec.parse("l1.melt:nth=1")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec.parse("dram.stall:nth=1,sauce=9")

    def test_trigger_required(self):
        with pytest.raises(ConfigError):
            FaultSpec("dram.stall")

    def test_schedule_parse_multiple(self):
        schedule = FaultSchedule.parse(
            ["dram.stall:nth=1", "mshr.stuck:nth=4"], seed=7
        )
        assert len(schedule.specs) == 2
        assert schedule.seed == 7
        assert bool(schedule)
        assert not bool(FaultSchedule())


class TestInjectorTriggers:
    def test_nth_is_one_based_and_exact(self):
        injector = FaultSchedule([FaultSpec("dram.stall", nth=3)]).injector()
        fires = [injector.fire("dram.stall") is not None for _ in range(6)]
        assert fires == [False, False, True, False, False, False]

    def test_count_widens_to_consecutive_ops(self):
        injector = FaultSchedule(
            [FaultSpec("dram.stall", nth=2, count=3)]
        ).injector()
        fires = [injector.fire("dram.stall") is not None for _ in range(6)]
        assert fires == [False, True, True, True, False, False]

    def test_sites_count_independently(self):
        schedule = FaultSchedule(
            [FaultSpec("dram.stall", nth=1), FaultSpec("noc.delay", nth=2)]
        )
        injector = schedule.injector()
        assert injector.fire("noc.delay") is None
        assert injector.fire("dram.stall") is not None
        assert injector.fire("noc.delay") is not None

    def test_probabilistic_is_deterministic_per_seed(self):
        def firing_pattern(seed):
            injector = FaultSchedule(
                [FaultSpec("noc.delay", prob=0.5, count=10**9)], seed=seed
            ).injector()
            return [
                injector.fire("noc.delay") is not None for _ in range(64)
            ]

        assert firing_pattern(1) == firing_pattern(1)
        assert firing_pattern(1) != firing_pattern(2)

    def test_window_restricts_by_cycle(self):
        spec = FaultSpec("dram.stall", nth=1, window=(100, 200))
        injector = FaultInjector(FaultSchedule([spec]))
        assert injector.fire("dram.stall", cycle=50) is None
        # nth=1 already consumed op 1; use a fresh injector inside window.
        injector = FaultInjector(FaultSchedule([spec]))
        assert injector.fire("dram.stall", cycle=150) is not None

    def test_log_records_what_fired(self):
        injector = FaultSchedule(
            [FaultSpec("dram.stall", nth=2, extra=123)]
        ).injector()
        injector.fire("dram.stall")
        injector.fire("dram.stall")
        assert injector.fired == 1
        assert injector.summary() == {"dram.stall": 1}
        assert injector.log[0]["extra"] == 123

    def test_fresh_injector_per_attempt_resets_state(self):
        schedule = FaultSchedule([FaultSpec("dram.stall", nth=1)])
        first = schedule.injector()
        assert first.fire("dram.stall") is not None
        second = schedule.injector()
        assert second.fire("dram.stall") is not None


class TestEndToEndInjection:
    """Each site deterministically produces its advertised failure mode."""

    def test_mshr_stuck_deadlocks(self):
        injector = FaultSchedule.parse(["mshr.stuck:nth=3"]).injector()
        with pytest.raises(DeadlockError):
            run_spec("hmmer", CFG, instructions=400, faults=injector)
        assert injector.summary() == {"mshr.stuck": 1}

    def test_noc_drop_times_out_under_budget(self):
        injector = FaultSchedule.parse(["noc.drop:nth=10"]).injector()
        with pytest.raises(SimTimeoutError):
            run_spec(
                "hmmer", CFG, instructions=400, faults=injector,
                max_cycles=200_000,
            )

    def test_kernel_event_drop_deadlocks(self):
        injector = FaultSchedule.parse(["kernel.event_drop:nth=20"]).injector()
        with pytest.raises(ReproError):
            run_spec(
                "hmmer", CFG, instructions=400, faults=injector,
                max_cycles=500_000,
            )

    def test_dram_stall_slows_but_completes(self):
        clean = run_spec("hmmer", CFG, instructions=400)
        injector = FaultSchedule.parse(
            ["dram.stall:nth=1,extra=20000"]
        ).injector()
        stalled = run_spec("hmmer", CFG, instructions=400, faults=injector)
        assert injector.summary() == {"dram.stall": 1}
        assert stalled.total_cycles > clean.total_cycles

    def test_noc_delay_slows_but_completes(self):
        clean = run_spec("hmmer", CFG, instructions=400)
        injector = FaultSchedule.parse(
            ["noc.delay:nth=1,extra=30000"]
        ).injector()
        delayed = run_spec("hmmer", CFG, instructions=400, faults=injector)
        assert injector.summary() == {"noc.delay": 1}
        assert delayed.total_cycles > clean.total_cycles

    def test_inv_ack_drop_hangs_a_store(self):
        # Needs real cross-core sharing: a multithreaded run with enough
        # instructions that some store hits remotely shared lines.
        injector = FaultSchedule.parse(["inv.ack_drop:nth=1"]).injector()
        with pytest.raises(ReproError):
            run_parsec(
                "fluidanimate", CFG, instructions=2000, faults=injector,
                max_cycles=2_000_000,
            )
        assert injector.summary().get("inv.ack_drop") == 1

    def test_no_faults_means_bit_identical_runs(self):
        # The hooks must be invisible when no schedule is armed.
        a = run_spec("hmmer", CFG, instructions=400)
        empty = FaultSchedule()
        b = run_spec("hmmer", CFG, instructions=400,
                     faults=empty.injector() if empty else None)
        assert a.cycles == b.cycles
        assert a.traffic_bytes == b.traffic_bytes

    def test_all_sites_are_documented(self):
        assert set(FAULT_SITES) == {
            "noc.delay", "noc.drop", "dram.stall", "mshr.stuck",
            "inv.ack_drop", "inv.drop", "kernel.event_drop",
            "worker.kill", "net.delay",
        }
