"""Reliability-layer tests."""
