"""Supervised parallel sweep execution: pool, crashes, quarantine, drain.

The fast tests monkeypatch ``repro.runner.run_spec`` with small fakes; the
supervisor uses fork-started workers, so children inherit the patch and
the fake runs inside real worker processes.  The slow tests at the bottom
drive the real CLI / real simulator through subprocesses.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro.runner
from repro.configs import ConsistencyModel, Scheme
from repro.reliability import (
    CellSpec,
    RetryPolicy,
    RunEngine,
    RunJournal,
    FaultSchedule,
    Supervisor,
)
from repro.reliability.engine import DEFAULT_SEED_STEP
from repro.reliability import supervisor as supervisor_mod

REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SRC = os.path.join(REPO, "src")


def _cells(apps, schemes=(Scheme.BASE,), **kwargs):
    return [
        CellSpec("spec", app, scheme, ConsistencyModel.TSO, **kwargs)
        for app in apps
        for scheme in schemes
    ]


def _strip_wall(journal_path):
    with open(journal_path) as handle:
        data = json.load(handle)
    for cell in data["cells"].values():
        for attempt in cell.get("attempts", ()):
            attempt.pop("wall_ms", None)
    return data


# --------------------------------------------------------------- fake runner

class _FakeCounters:
    def __init__(self, values):
        self._values = values

    def as_dict(self):
        return dict(self._values)


class _FakeResult:
    """Just enough RunResult surface for capture_metrics()."""

    def __init__(self, seed):
        self.cycles = 1000 + seed
        self.instructions = 500
        self.traffic_bytes = 64
        self.traffic_breakdown = {"data": 64}
        self.counters = _FakeCounters({"fake.counter": 1})
        self.sanitizer_report = None

    def count(self, name):
        return 1 if name == "fake.counter" else 0


def _fake_ok(app, config, seed=0, **kwargs):
    return _FakeResult(seed)


def _kill_self_on_base_seed(app, config, seed=0, **kwargs):
    if seed == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return _FakeResult(seed)


def _oom_on_mcf(app, config, seed=0, **kwargs):
    if app == "mcf":
        raise MemoryError("simulated allocation failure")
    return _FakeResult(seed)


def _stall_on_mcf(app, config, seed=0, **kwargs):
    if app == "mcf":
        time.sleep(30)
    return _FakeResult(seed)


def _slow_ok(app, config, seed=0, **kwargs):
    time.sleep(0.4)
    return _FakeResult(seed)


# ------------------------------------------------------------------- tests

class TestPoolBasics:
    def test_jobs_1_stays_serial(self, tmp_path):
        engine = RunEngine(
            journal=RunJournal(tmp_path / "j.json"),
            supervisor=Supervisor(jobs=1),
        )
        outcomes = engine.run_specs(_cells(["hmmer"], instructions=200))
        assert [o.status for o in outcomes] == ["ok"]
        assert engine.supervisor.stats["workers_spawned"] == 0

    def test_parallel_matches_serial(self, tmp_path):
        specs = _cells(
            ["hmmer", "mcf"], (Scheme.BASE, Scheme.IS_SPECTRE),
            instructions=200,
        )
        serial = RunEngine(journal=RunJournal(tmp_path / "serial.json"))
        serial_out = serial.run_specs(specs)

        sup = Supervisor(jobs=2, heartbeat_timeout=30.0)
        par = RunEngine(
            journal=RunJournal(tmp_path / "par.json"), supervisor=sup
        )
        par_out = par.run_specs(specs)

        assert [o.cell_id for o in par_out] == [o.cell_id for o in serial_out]
        assert all(o.status == "ok" for o in par_out)
        assert [o.result.cycles for o in par_out] == [
            o.result.cycles for o in serial_out
        ]
        a = _strip_wall(tmp_path / "serial.json")
        b = _strip_wall(tmp_path / "par.json")
        a["experiment"] = b["experiment"] = ""
        assert a == b

    def test_resume_serves_cached_cells_without_workers(self, tmp_path):
        specs = _cells(["hmmer"], instructions=200)
        path = tmp_path / "j.json"
        RunEngine(journal=RunJournal(path)).run_specs(specs)

        sup = Supervisor(jobs=2)
        engine = RunEngine(
            journal=RunJournal(path), resume=True, supervisor=sup
        )
        outcomes = engine.run_specs(specs)
        assert [o.status for o in outcomes] == ["cached"]
        assert sup.stats["workers_spawned"] == 0
        assert outcomes[0].result.cycles is not None


class TestCrashIsolation:
    def test_worker_sigkill_retries_with_bumped_seed(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _kill_self_on_base_seed)
        specs = _cells(["mcf", "hmmer"])
        sup = Supervisor(jobs=2, heartbeat_timeout=30.0, quarantine_crashes=3)
        engine = RunEngine(
            journal=RunJournal(tmp_path / "j.json"),
            policy=RetryPolicy(max_attempts=3),
            supervisor=sup,
        )
        outcomes = engine.run_specs(specs)
        # Both cells crash their worker at seed 0, then succeed on the
        # bumped seed -- the crash consumed an attempt, it did not reset
        # the sequence.
        assert [o.status for o in outcomes] == ["ok", "ok"]
        assert sup.stats["workers_crashed"] == 2
        for spec in specs:
            record = RunJournal(tmp_path / "j.json").get(spec.cell_id)
            assert [a["status"] for a in record["attempts"]] == [
                "failed", "ok",
            ]
            assert record["attempts"][0]["error_class"] == "WorkerCrashError"
            assert record["attempts"][1]["seed"] == DEFAULT_SEED_STEP

    def test_repeated_crashes_quarantine_the_cell(
        self, tmp_path, monkeypatch
    ):
        def always_kill(app, config, seed=0, **kwargs):
            if app == "mcf":
                os.kill(os.getpid(), signal.SIGKILL)
            return _FakeResult(seed)

        monkeypatch.setattr(repro.runner, "run_spec", always_kill)
        sup = Supervisor(jobs=2, heartbeat_timeout=30.0)
        engine = RunEngine(
            journal=RunJournal(tmp_path / "j.json"),
            policy=RetryPolicy(max_attempts=5),
            supervisor=sup,
        )
        outcomes = engine.run_specs(_cells(["mcf", "hmmer"]))
        statuses = {o.cell_id.split(":")[1]: o for o in outcomes}
        assert statuses["mcf"].status == "poisoned"
        assert not statuses["mcf"].ok
        assert statuses["hmmer"].status == "ok"
        assert sup.stats["cells_quarantined"] == 1
        # Quarantine preempts the retry budget: exactly 2 crash attempts.
        record = RunJournal(tmp_path / "j.json").get(statuses["mcf"].cell_id)
        assert record["status"] == "poisoned"
        assert len(record["attempts"]) == 2
        assert "quarantined" in record["error_message"]

    def test_memory_error_is_contained_in_the_cell(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _oom_on_mcf)
        sup = Supervisor(jobs=2, heartbeat_timeout=30.0)
        engine = RunEngine(
            journal=RunJournal(tmp_path / "j.json"),
            policy=RetryPolicy(max_attempts=2),
            supervisor=sup,
        )
        outcomes = engine.run_specs(_cells(["mcf", "hmmer"]))
        statuses = {o.cell_id.split(":")[1]: o for o in outcomes}
        assert statuses["mcf"].status == "failed"
        assert statuses["mcf"].error_class == "MemoryError"
        assert statuses["hmmer"].status == "ok"
        # The worker survived the MemoryError: no process was lost.
        assert sup.stats["workers_crashed"] == 0
        # MemoryError is not retryable -- one attempt only.
        record = RunJournal(tmp_path / "j.json").get(statuses["mcf"].cell_id)
        assert len(record["attempts"]) == 1

    def test_heartbeat_stall_kills_and_quarantines(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _stall_on_mcf)
        sup = Supervisor(jobs=2, heartbeat_timeout=0.5, poll_interval=0.05)
        engine = RunEngine(
            journal=RunJournal(tmp_path / "j.json"),
            policy=RetryPolicy(max_attempts=4),
            supervisor=sup,
        )
        outcomes = engine.run_specs(_cells(["mcf", "hmmer"]))
        statuses = {o.cell_id.split(":")[1]: o for o in outcomes}
        assert statuses["mcf"].status == "poisoned"
        assert statuses["hmmer"].status == "ok"
        assert sup.stats["heartbeat_kills"] == 2
        assert "heartbeat" in statuses["mcf"].error_message

    def test_supervisor_rss_poll_kills_over_ceiling(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _slow_ok)
        # Fake the parent-side RSS probe: every worker instantly looks
        # enormous, so the polling path (not the in-worker rlimit) fires.
        monkeypatch.setattr(
            supervisor_mod, "_rss_bytes", lambda pid: 10**12
        )
        sup = Supervisor(
            jobs=1, max_rss=2**30, heartbeat_timeout=30.0, poll_interval=0.05
        )
        engine = RunEngine(
            journal=RunJournal(tmp_path / "j.json"),
            policy=RetryPolicy(max_attempts=2),
            supervisor=sup,
        )
        outcomes = sup.run_specs(engine, _cells(["mcf"]))
        assert outcomes[0].status == "poisoned"
        assert sup.stats["rss_kills"] >= 1
        assert "RSS" in outcomes[0].error_message

    def test_rss_bytes_reads_proc(self):
        rss = supervisor_mod._rss_bytes(os.getpid())
        assert rss is None or rss > 0

    def test_sanitizer_violation_transports_across_the_pipe(self, tmp_path):
        # A record-mode sanitizer report produced inside a worker must
        # reach the supervisor and fail the cell exactly like the serial
        # engine: journaled report, failed status, no retry.
        spec = CellSpec(
            "parsec", "fluidanimate", Scheme.BASE, ConsistencyModel.TSO,
            instructions=600, sanitize="record",
        )
        schedule = FaultSchedule.parse(["inv.drop:nth=1"])
        sup = Supervisor(jobs=2, heartbeat_timeout=60.0)
        engine = RunEngine(
            journal=RunJournal(tmp_path / "j.json"),
            policy=RetryPolicy(max_attempts=3),
            supervisor=sup,
            fault_schedule=schedule,
        )
        outcomes = engine.run_specs([spec])
        assert outcomes[0].status == "failed"
        assert "violation" in outcomes[0].error_message
        record = RunJournal(tmp_path / "j.json").get(spec.cell_id)
        assert record["status"] == "failed"
        assert len(record["attempts"]) == 1  # never retryable
        report = record["attempts"][0]["sanitizer"]
        assert report["violation_count"] >= 1


class TestGracefulDrain:
    def test_drain_finishes_in_flight_and_keeps_journal(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _slow_ok)
        specs = _cells(["a", "b", "c", "d"])
        sup = Supervisor(jobs=1, heartbeat_timeout=30.0, poll_interval=0.05)
        engine = RunEngine(
            journal=RunJournal(tmp_path / "j.json"), supervisor=sup
        )
        raised = []

        def run():
            try:
                sup.run_specs(engine, specs)
            except KeyboardInterrupt as error:
                raised.append(error)

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.6)  # let the first cell land, second be in flight
        sup.request_drain()
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert raised, "drain must surface as KeyboardInterrupt"
        assert sup.drained and not sup.hard_abort

        journal = RunJournal(tmp_path / "j.json")
        done = journal.completed_ids()
        assert 1 <= len(done) < len(specs)
        assert len(engine.outcomes) == len(done)

        # Resume picks up exactly the remaining cells, serially.
        engine2 = RunEngine(
            journal=RunJournal(tmp_path / "j.json"), resume=True
        )
        outcomes = engine2.run_specs(specs)
        assert all(o.ok for o in outcomes)
        cached = [o for o in outcomes if o.status == "cached"]
        assert len(cached) == len(done)


@pytest.mark.slow
class TestSubprocessSupervision:
    """Real processes, real simulator: kill -9 the supervisor, determinism."""

    DRIVER = """
import sys
sys.path.insert(0, {src!r})
from repro.configs import ConsistencyModel, Scheme
from repro.reliability import CellSpec, RunEngine, RunJournal, Supervisor

specs = [
    CellSpec("spec", app, Scheme.BASE, ConsistencyModel.TSO,
             instructions=8000)
    for app in ("mcf", "hmmer", "bzip2", "sjeng")
]
engine = RunEngine(
    journal=RunJournal({journal!r}, experiment="t"),
    resume=True,
    supervisor=Supervisor(jobs=2, heartbeat_timeout=60.0),
)
engine.run_specs(specs)
print("COMPLETE", flush=True)
"""

    def test_resume_after_supervisor_kill9(self, tmp_path):
        journal_path = str(tmp_path / "j.json")
        script = self.DRIVER.format(src=SRC, journal=journal_path)

        # Run 1: SIGKILL the whole supervisor once the first cell lands.
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if os.path.exists(journal_path):
                try:
                    if RunJournal(journal_path).completed_ids():
                        break
                except Exception:
                    pass
            if proc.poll() is not None:
                break
            time.sleep(0.05)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)

        journal = RunJournal(journal_path)
        done_before = set(journal.completed_ids())
        assert done_before, "first run should have journaled >= 1 cell"

        # Run 2: resume to completion; journaled cells are not re-run.
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=300,
        )
        assert out.returncode == 0, out.stderr
        assert "COMPLETE" in out.stdout
        final = RunJournal(journal_path)
        assert len(final.completed_ids()) == 4

    def test_serial_and_parallel_sweeps_bit_identical(self, tmp_path):
        """CLI sweeps under different PYTHONHASHSEED and --jobs produce
        identical journals (modulo wall-clock) and identical stdout."""
        outputs, journals = [], []
        for jobs, hashseed in (("1", "1"), ("4", "2")):
            journal_dir = tmp_path / f"jrn{jobs}"
            env = dict(os.environ)
            env["PYTHONPATH"] = SRC
            env["PYTHONHASHSEED"] = hashseed
            out = subprocess.run(
                [
                    sys.executable, "-m", "repro.experiments", "figure4",
                    "--apps", "mcf,hmmer", "--instructions", "400",
                    "--no-rc", "--jobs", jobs,
                    "--journal-dir", str(journal_dir),
                ],
                capture_output=True, text=True, timeout=600, env=env,
                cwd=REPO,
            )
            assert out.returncode == 0, out.stderr
            outputs.append(out.stdout)
            journals.append(_strip_wall(journal_dir / "figure4.json"))
        assert outputs[0] == outputs[1]
        assert journals[0] == journals[1]
