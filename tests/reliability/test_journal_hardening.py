"""Journal durability: fsync'd writes, .bak rotation, corrupt-file recovery.

A supervisor (or the box under it) can die mid-write; ``--resume`` must
never crash on what it finds afterwards.  Each test reconstructs one of
the on-disk states a ``kill -9`` can leave behind.
"""

import json

import pytest

from repro.reliability import RunJournal


def _record(journal, cell, status="ok"):
    journal.record(cell, {"status": status, "attempts": [{"status": status}]})


class TestBackupRotation:
    def test_bak_holds_previous_good_journal(self, tmp_path):
        path = tmp_path / "j.json"
        journal = RunJournal(path, experiment="t")
        _record(journal, "c1")
        _record(journal, "c2")
        bak = json.loads((tmp_path / "j.json.bak").read_text())
        main = json.loads(path.read_text())
        assert set(main["cells"]) == {"c1", "c2"}
        assert set(bak["cells"]) == {"c1"}  # one save behind

    def test_tmp_file_never_left_behind(self, tmp_path):
        path = tmp_path / "j.json"
        journal = RunJournal(path, experiment="t")
        _record(journal, "c1")
        assert not (tmp_path / "j.json.tmp").exists()


class TestCorruptRecovery:
    def test_truncated_main_recovers_from_bak(self, tmp_path):
        path = tmp_path / "j.json"
        journal = RunJournal(path, experiment="t")
        _record(journal, "c1")
        _record(journal, "c2")
        # kill -9 mid-write: the main file is truncated garbage.
        path.write_text(path.read_text()[: 40])
        with pytest.warns(UserWarning, match="recovered run journal"):
            reloaded = RunJournal(path)
        assert reloaded.recovered_from == "bak"
        assert reloaded.is_completed("c1")
        assert not reloaded.is_completed("c2")  # lost with the main file

    def test_missing_main_with_bak_recovers(self, tmp_path):
        path = tmp_path / "j.json"
        journal = RunJournal(path, experiment="t")
        _record(journal, "c1")
        _record(journal, "c2")
        path.unlink()  # crash window between the two os.replace calls
        with pytest.warns(UserWarning, match="recovered run journal"):
            reloaded = RunJournal(path)
        assert reloaded.is_completed("c1")

    def test_both_copies_corrupt_starts_empty(self, tmp_path):
        path = tmp_path / "j.json"
        journal = RunJournal(path, experiment="t")
        _record(journal, "c1")
        _record(journal, "c2")
        path.write_text("{ not json")
        (tmp_path / "j.json.bak").write_text("also not json")
        with pytest.warns(UserWarning):
            reloaded = RunJournal(path)
        assert reloaded.recovered_from == "empty"
        assert len(reloaded) == 0
        # The journal still works (resume re-runs everything).
        _record(reloaded, "c1")
        assert RunJournal(path).is_completed("c1")

    def test_wrong_shape_json_is_treated_as_corrupt(self, tmp_path):
        path = tmp_path / "j.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.warns(UserWarning, match="unreadable"):
            reloaded = RunJournal(path)
        assert reloaded.recovered_from == "empty"

    def test_clean_load_sets_no_recovery_flag(self, tmp_path):
        path = tmp_path / "j.json"
        journal = RunJournal(path, experiment="t")
        _record(journal, "c1")
        assert RunJournal(path).recovered_from is None
        assert RunJournal(tmp_path / "fresh.json").recovered_from is None
