"""Run engine: retry policy, journal, resume, degradation, acceptance."""

import json

import pytest

from repro.configs import ConsistencyModel, ProcessorConfig, Scheme
from repro.errors import DeadlockError, ProtocolError, SimTimeoutError
from repro.experiments import figure4
from repro.reliability import (
    CellFailure,
    CellResult,
    FaultSchedule,
    RetryPolicy,
    RunEngine,
    RunJournal,
    capture_metrics,
    cell_id_for,
    is_ok,
)
from repro.reliability.engine import DEFAULT_SEED_STEP
from repro.runner import run_spec


class TestRetryPolicy:
    def test_seed_bump_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.seed_for(3, 0) == 3
        assert policy.seed_for(3, 1) == 3 + DEFAULT_SEED_STEP
        assert policy.seed_for(3, 2) == 3 + 2 * DEFAULT_SEED_STEP

    def test_budget_grows_per_attempt(self):
        policy = RetryPolicy(budget_growth=2.0)
        assert policy.budget_for(1000, 0) == 1000
        assert policy.budget_for(1000, 1) == 2000
        assert policy.budget_for(None, 5) is None

    def test_retryable_classes(self):
        policy = RetryPolicy()
        assert policy.is_retryable(SimTimeoutError(9, "budget"))
        assert policy.is_retryable(DeadlockError(9, "stuck"))
        assert not policy.is_retryable(ProtocolError("bad state"))


class TestRunCell:
    def test_ok_cell_records_metrics(self, tmp_path):
        journal = RunJournal(tmp_path / "j.json", experiment="t")
        engine = RunEngine(journal=journal)
        calls = []

        def fn(seed, max_cycles, watchdog, faults):
            calls.append(seed)
            return run_spec(
                "hmmer", ProcessorConfig(scheme=Scheme.BASE),
                instructions=300, seed=seed,
            )

        outcome = engine.run_cell("t:cell", fn, base_seed=5)
        assert outcome.ok and outcome.status == "ok"
        assert calls == [5]
        record = journal.get("t:cell")
        assert record["status"] == "ok"
        assert record["metrics"]["cycles"] == outcome.result.cycles
        assert engine.exit_code == 0

    def test_transient_failure_retries_with_bumped_seed(self):
        engine = RunEngine(policy=RetryPolicy(max_attempts=3))
        seeds = []

        def fn(seed, max_cycles, watchdog, faults):
            seeds.append(seed)
            if len(seeds) < 3:
                raise SimTimeoutError(100, "injected")
            return run_spec(
                "hmmer", ProcessorConfig(scheme=Scheme.BASE),
                instructions=300, seed=seed,
            )

        outcome = engine.run_cell("t:flaky", fn, base_seed=1)
        assert outcome.ok
        assert seeds == [1, 1 + DEFAULT_SEED_STEP, 1 + 2 * DEFAULT_SEED_STEP]
        assert [a["status"] for a in outcome.attempts] == [
            "failed", "failed", "ok",
        ]

    def test_budget_grows_across_attempts(self):
        engine = RunEngine(
            policy=RetryPolicy(max_attempts=2), max_cycles=10_000
        )
        budgets = []

        def fn(seed, max_cycles, watchdog, faults):
            budgets.append(max_cycles)
            raise SimTimeoutError(max_cycles, "still too slow")

        outcome = engine.run_cell("t:slow", fn)
        assert not outcome.ok
        assert budgets == [10_000, 20_000]

    def test_non_retryable_error_fails_immediately(self):
        engine = RunEngine(policy=RetryPolicy(max_attempts=4))
        calls = []

        def fn(seed, max_cycles, watchdog, faults):
            calls.append(seed)
            raise ProtocolError("invariant broken")

        outcome = engine.run_cell("t:bug", fn)
        assert not outcome.ok
        assert len(calls) == 1
        assert outcome.error_class == "ProtocolError"

    def test_programming_errors_propagate(self):
        engine = RunEngine()

        def fn(seed, max_cycles, watchdog, faults):
            raise KeyError("not a simulation failure")

        with pytest.raises(KeyError):
            engine.run_cell("t:crash", fn)

    def test_failure_budget_controls_exit_code(self):
        engine = RunEngine(
            policy=RetryPolicy(max_attempts=1), failure_budget=1
        )

        def boom(seed, max_cycles, watchdog, faults):
            raise DeadlockError(7, "stuck")

        engine.run_cell("t:a", boom)
        assert engine.exit_code == 0  # 1 failure <= budget of 1
        engine.run_cell("t:b", boom)
        assert engine.exit_code == 1
        assert len(engine.failures) == 2

    def test_failure_marker_and_is_ok(self):
        engine = RunEngine(policy=RetryPolicy(max_attempts=1))

        def boom(seed, max_cycles, watchdog, faults):
            raise DeadlockError(7, "stuck")

        outcome = engine.run_cell("t:gap", boom)
        marker = outcome.failure()
        assert isinstance(marker, CellFailure)
        assert not is_ok(marker)
        assert is_ok(object())
        assert not is_ok(None)

    def test_fault_cells_glob_scopes_injection(self):
        schedule = FaultSchedule.parse(["dram.stall:nth=1"])
        engine = RunEngine(
            fault_schedule=schedule, fault_cells="spec:mcf:*"
        )
        seen = {}

        def fn(seed, max_cycles, watchdog, faults):
            seen[len(seen)] = faults
            return run_spec(
                "hmmer", ProcessorConfig(scheme=Scheme.BASE),
                instructions=300, seed=seed,
            )

        engine.run_cell("spec:mcf:IS-Sp:TSO:s0", fn)
        engine.run_cell("spec:hmmer:IS-Sp:TSO:s0", fn)
        assert seen[0] is not None  # matched the glob
        assert seen[1] is None  # did not


class TestJournalAndResume:
    def test_journal_roundtrip_and_attempt_accumulation(self, tmp_path):
        path = tmp_path / "j.json"
        journal = RunJournal(path, experiment="t")
        journal.record(
            "c1", {"status": "failed", "attempts": [{"status": "failed"}]}
        )
        # A later session extends, not replaces, the attempt history.
        reloaded = RunJournal(path)
        reloaded.record(
            "c1", {"status": "ok", "attempts": [{"status": "ok"}]}
        )
        final = RunJournal(path)
        record = final.get("c1")
        assert [a["status"] for a in record["attempts"]] == ["failed", "ok"]
        assert final.is_completed("c1")
        assert final.completed_ids() == ["c1"]
        with open(path) as handle:
            assert json.load(handle)["version"] == 1

    def test_cell_result_reconstructs_runresult_surface(self):
        result = run_spec(
            "hmmer", ProcessorConfig(scheme=Scheme.IS_SPECTRE),
            instructions=300,
        )
        view = CellResult(
            json.loads(json.dumps(capture_metrics(result)))
        )
        assert view.cycles == result.cycles
        assert view.instructions == result.instructions
        assert view.ipc == pytest.approx(result.ipc)
        assert view.traffic_bytes == result.traffic_bytes
        assert view.traffic_breakdown == dict(result.traffic_breakdown)
        assert view.count("invisispec.exposures") == result.count(
            "invisispec.exposures"
        )
        assert view.count("no.such.counter") == 0

    def test_resume_skips_completed_cells(self, tmp_path):
        path = tmp_path / "j.json"
        first = RunEngine(journal=RunJournal(path, experiment="t"))
        calls = []

        def fn(seed, max_cycles, watchdog, faults):
            calls.append(seed)
            return run_spec(
                "hmmer", ProcessorConfig(scheme=Scheme.BASE),
                instructions=300, seed=seed,
            )

        fresh = first.run_cell("t:done", fn)
        assert fresh.status == "ok" and calls == [0]

        second = RunEngine(journal=RunJournal(path), resume=True)
        cached = second.run_cell("t:done", fn)
        assert cached.status == "cached"
        assert calls == [0]  # not re-run
        assert cached.result.cycles == fresh.result.cycles

    def test_resume_reruns_failed_cells(self, tmp_path):
        path = tmp_path / "j.json"
        journal = RunJournal(path, experiment="t")
        journal.record(
            "t:bad",
            {"status": "failed", "error_class": "DeadlockError",
             "attempts": [{"status": "failed"}]},
        )
        engine = RunEngine(journal=RunJournal(path), resume=True)
        calls = []

        def fn(seed, max_cycles, watchdog, faults):
            calls.append(seed)
            return run_spec(
                "hmmer", ProcessorConfig(scheme=Scheme.BASE),
                instructions=300, seed=seed,
            )

        outcome = engine.run_cell("t:bad", fn)
        assert outcome.status == "ok"
        # The journaled failure already consumed attempt 0, so the resumed
        # attempt continues the seed-bump sequence instead of re-running
        # the seed that failed.
        assert calls == [DEFAULT_SEED_STEP]
        record = RunJournal(path).get("t:bad")
        assert record["status"] == "ok"
        assert [a["status"] for a in record["attempts"]] == ["failed", "ok"]

    def test_resume_continues_seed_sequence_across_sessions(self, tmp_path):
        # Regression for cross-session attempt accounting: a cell that
        # failed twice in a previous session must resume at attempt 2
        # (seed + 2 * step, budget * growth**2), not restart at attempt 0.
        path = tmp_path / "j.json"
        journal = RunJournal(path, experiment="t")
        journal.record(
            "t:bad",
            {"status": "failed", "error_class": "SimTimeoutError",
             "attempts": [{"status": "failed", "seed": 4},
                          {"status": "failed", "seed": 4 + DEFAULT_SEED_STEP}]},
        )
        engine = RunEngine(
            journal=RunJournal(path), resume=True, max_cycles=10_000,
            policy=RetryPolicy(max_attempts=2),
        )
        seen = []

        def fn(seed, max_cycles, watchdog, faults):
            seen.append((seed, max_cycles))
            return run_spec(
                "hmmer", ProcessorConfig(scheme=Scheme.BASE),
                instructions=300, seed=seed,
            )

        outcome = engine.run_cell("t:bad", fn, base_seed=4)
        assert outcome.status == "ok"
        assert seen == [(4 + 2 * DEFAULT_SEED_STEP, 40_000)]
        # A completed cell resets the offset: re-running it fresh (without
        # --resume) measures the requested seed again.
        fresh = RunEngine(journal=RunJournal(path))
        fresh.run_cell("t:bad", fn, base_seed=4)
        assert seen[-1] == (4, None)

    def test_cell_id_format(self):
        cell = cell_id_for(
            "spec", "mcf", Scheme.IS_SPECTRE, ConsistencyModel.TSO, 0
        )
        assert cell == "spec:mcf:IS-Sp:TSO:s0"


class TestFigure4Acceptance:
    """ISSUE acceptance: fault-injected figure-4 run + resume roundtrip."""

    APPS = ["mcf", "hmmer"]
    TARGET = "spec:mcf:IS-Sp:*"

    def _engine(self, path, **kwargs):
        return RunEngine(
            journal=RunJournal(path, experiment="figure4"),
            policy=RetryPolicy(max_attempts=1),
            max_cycles=50_000_000,
            **kwargs,
        )

    def test_fault_then_resume_reruns_only_failed_cell(self, tmp_path):
        path = tmp_path / "figure4.json"

        # Pass 1: a stuck-MSHR fault injected into exactly one cell.
        engine = self._engine(
            path,
            fault_schedule=FaultSchedule.parse(["mshr.stuck:nth=3"]),
            fault_cells=self.TARGET,
        )
        result = figure4.run(
            apps=self.APPS, instructions=600, include_rc=False,
            engine=engine,
        )

        # The run completed and rendered, with the failed cell as a gap.
        mcf_row = next(row for row in result.rows if row[0] == "mcf")
        assert "×" in mcf_row
        hmmer_row = next(row for row in result.rows if row[0] == "hmmer")
        assert "×" not in hmmer_row
        assert len(engine.failures) == 1
        failed_id = engine.failures[0].cell_id
        assert failed_id == "spec:mcf:IS-Sp:TSO:s0"
        assert engine.exit_code == 1

        # The failure is journaled with its error class and fault log.
        record = RunJournal(path).get(failed_id)
        assert record["status"] == "failed"
        assert record["error_class"] == "DeadlockError"
        assert record["attempts"][-1]["faults"] == {"mshr.stuck": 1}

        # Pass 2: --resume without faults re-runs only the failed cell.
        resumed = self._engine(path, resume=True)
        result2 = figure4.run(
            apps=self.APPS, instructions=600, include_rc=False,
            engine=resumed,
        )
        statuses = {o.cell_id: o.status for o in resumed.outcomes}
        live = [cid for cid, status in statuses.items() if status == "ok"]
        assert live == [failed_id]  # every other cell served from journal
        assert all(
            status == "cached"
            for cid, status in statuses.items()
            if cid != failed_id
        )
        assert resumed.exit_code == 0

        # The gap is filled and the journal now shows the full history.
        mcf_row2 = next(row for row in result2.rows if row[0] == "mcf")
        assert "×" not in mcf_row2
        record = RunJournal(path).get(failed_id)
        assert record["status"] == "ok"
        assert [a["status"] for a in record["attempts"]] == ["failed", "ok"]

    def test_resumed_figure_matches_fresh_figure(self, tmp_path):
        # Journal-served metrics must reproduce the fresh numbers exactly.
        path = tmp_path / "figure4.json"
        engine = self._engine(path)
        fresh = figure4.run(
            apps=["hmmer"], instructions=600, include_rc=False, engine=engine,
        )
        resumed_engine = self._engine(path, resume=True)
        resumed = figure4.run(
            apps=["hmmer"], instructions=600, include_rc=False,
            engine=resumed_engine,
        )
        assert fresh.rows == resumed.rows
        assert all(o.status == "cached" for o in resumed_engine.outcomes)
