"""Lease pool: per-task futures, crash attribution, deadlines, fd hygiene.

Same trick as the supervisor tests: ``repro.runner.run_spec`` is
monkeypatched with small fakes and the fork start method carries the
patch into real worker processes.
"""

import gc
import os
import signal
import time

import pytest

import repro.runner
from repro.configs import ConsistencyModel, Scheme
from repro.errors import WorkerCrashError
from repro.reliability import (
    CellSpec,
    LeasePool,
    PoolClosedError,
    RetryPolicy,
    RunEngine,
    RunJournal,
    Supervisor,
)


def _cell(app, **kwargs):
    return CellSpec("spec", app, Scheme.BASE, ConsistencyModel.TSO, **kwargs)


class _FakeCounters:
    def __init__(self, values):
        self._values = values

    def as_dict(self):
        return dict(self._values)


class _FakeResult:
    def __init__(self, seed):
        self.cycles = 1000 + seed
        self.instructions = 500
        self.traffic_bytes = 64
        self.traffic_breakdown = {"data": 64}
        self.counters = _FakeCounters({"fake.counter": 1})
        self.sanitizer_report = None

    def count(self, name):
        return 1 if name == "fake.counter" else 0


def _fake_ok(app, config, seed=0, **kwargs):
    return _FakeResult(seed)


def _kill_on_seed0(app, config, seed=0, **kwargs):
    if seed == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return _FakeResult(seed)


def _always_kill(app, config, seed=0, **kwargs):
    os.kill(os.getpid(), signal.SIGKILL)


def _stall(app, config, seed=0, **kwargs):
    time.sleep(30)


@pytest.fixture
def pool():
    pools = []

    def make(**kwargs):
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("heartbeat_timeout", 30.0)
        kwargs.setdefault("poll_interval", 0.01)
        p = LeasePool(**kwargs).start()
        pools.append(p)
        return p

    yield make
    for p in pools:
        p.close(kill=True)


class TestLeasing:
    def test_leases_resolve_to_attempt_results(self, pool, monkeypatch):
        monkeypatch.setattr(repro.runner, "run_spec", _fake_ok)
        p = pool()
        futures = [p.submit(_cell("mcf"), seed=s) for s in (0, 7, 13)]
        results = [f.result(timeout=30) for f in futures]
        assert [r.status for r in results] == ["ok"] * 3
        # The seed reached the worker: the fake encodes it in cycles.
        assert [r.metrics["cycles"] for r in results] == [1000, 1007, 1013]
        assert p.stats["leases_completed"] == 3

    def test_submit_to_unstarted_or_closed_pool_fails_fast(self):
        p = LeasePool(workers=1)
        with pytest.raises(PoolClosedError):
            p.submit(_cell("mcf")).result(timeout=5)
        p.start()
        p.close(kill=True)
        with pytest.raises(PoolClosedError):
            p.submit(_cell("mcf")).result(timeout=5)

    def test_worker_crash_fails_only_its_lease(self, pool, monkeypatch):
        monkeypatch.setattr(repro.runner, "run_spec", _kill_on_seed0)
        p = pool()
        doomed = p.submit(_cell("mcf"), seed=0)
        fine = p.submit(_cell("hmmer"), seed=5)
        with pytest.raises(WorkerCrashError):
            doomed.result(timeout=30)
        assert fine.result(timeout=30).status == "ok"
        # Caller-side retry with a bumped seed lands on a fresh worker.
        retry = p.submit(_cell("mcf"), seed=9973)
        assert retry.result(timeout=30).status == "ok"
        assert p.stats["workers_crashed"] == 1
        assert p.stats["workers_spawned"] == 3  # 2 initial + 1 respawn

    def test_pool_replenishes_across_repeated_crashes(
        self, pool, monkeypatch
    ):
        monkeypatch.setattr(repro.runner, "run_spec", _kill_on_seed0)
        p = pool(workers=2)
        for _ in range(4):
            with pytest.raises(WorkerCrashError):
                p.submit(_cell("mcf"), seed=0).result(timeout=30)
        assert p.submit(_cell("mcf"), seed=1).result(timeout=30).status == "ok"
        assert p.stats["workers_crashed"] == 4

    def test_heartbeat_stall_kills_the_lease(self, pool, monkeypatch):
        monkeypatch.setattr(repro.runner, "run_spec", _stall)
        p = pool(heartbeat_timeout=0.4)
        with pytest.raises(WorkerCrashError) as err:
            p.submit(_cell("mcf")).result(timeout=30)
        assert err.value.kind == "heartbeat"
        assert p.stats["heartbeat_kills"] == 1

    def test_deadline_soft_path_fires_in_worker(self, pool, monkeypatch):
        # wall_clock_s reaches the worker as a WallClockGuard: the run
        # fails with a retryable SimTimeoutError, no SIGKILL involved.
        def slow_sim(app, config, seed=0, watchdog=None, **kwargs):
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if watchdog is not None:
                    watchdog(0)
                time.sleep(0.01)
            return _FakeResult(seed)

        monkeypatch.setattr(repro.runner, "run_spec", slow_sim)
        p = pool()
        result = p.submit(
            _cell("mcf"), deadline=time.monotonic() + 0.3
        ).result(timeout=30)
        assert result.status == "failed"
        assert result.error_class == "SimTimeoutError"
        assert RetryPolicy().is_retryable(result.error)
        assert p.stats["deadline_kills"] == 0  # backstop never needed

    def test_deadline_hard_backstop_kills_wedged_worker(
        self, pool, monkeypatch
    ):
        # A worker that ignores its watchdog entirely hits the pool-side
        # SIGKILL backstop: the lease fails instead of hanging forever.
        monkeypatch.setattr(repro.runner, "run_spec", _stall)
        p = pool(deadline_grace=0.2)
        with pytest.raises(WorkerCrashError) as err:
            p.submit(
                _cell("mcf"), deadline=time.monotonic() + 0.3
            ).result(timeout=30)
        assert err.value.kind == "deadline"
        assert p.stats["deadline_kills"] == 1

    def test_expired_deadline_fails_before_dispatch(self, pool, monkeypatch):
        monkeypatch.setattr(repro.runner, "run_spec", _stall)
        p = pool(workers=1, deadline_grace=0.2)
        blocker = p.submit(_cell("mcf"), deadline=time.monotonic() + 0.5)
        queued = p.submit(_cell("hmmer"), deadline=time.monotonic() + 0.1)
        with pytest.raises(WorkerCrashError) as err:
            queued.result(timeout=30)
        assert err.value.kind == "deadline"
        with pytest.raises(WorkerCrashError):
            blocker.result(timeout=30)

    def test_close_kill_fails_inflight_leases(self, pool, monkeypatch):
        monkeypatch.setattr(repro.runner, "run_spec", _stall)
        p = pool(workers=1)
        inflight = p.submit(_cell("mcf"))
        queued = p.submit(_cell("hmmer"))
        time.sleep(0.2)  # let the first lease dispatch
        p.close(kill=True)
        with pytest.raises(WorkerCrashError) as err:
            inflight.result(timeout=5)
        assert err.value.kind == "shutdown"
        with pytest.raises(PoolClosedError):
            queued.result(timeout=5)

    def test_snapshot_is_json_shaped(self, pool, monkeypatch):
        monkeypatch.setattr(repro.runner, "run_spec", _fake_ok)
        p = pool()
        p.submit(_cell("mcf")).result(timeout=30)
        snap = p.snapshot()
        assert len(snap["workers"]) == 2
        assert snap["backlog"] == 0
        assert snap["stats"]["leases_completed"] == 1


def _open_fds():
    gc.collect()
    return len(os.listdir("/proc/self/fd"))


class TestFdHygiene:
    def test_no_fd_growth_across_quarantines(self, tmp_path, monkeypatch):
        """50 quarantined cells (one worker SIGKILL each) must not grow
        the supervisor process's fd table: pipes and process handles are
        released at reap time, not left to garbage-collector timing."""
        monkeypatch.setattr(repro.runner, "run_spec", _always_kill)
        # Warm-up run: first multiprocessing use opens persistent fds
        # (resource tracker, /dev/shm arena) that are not per-quarantine.
        sup = Supervisor(
            jobs=2, heartbeat_timeout=30.0, poll_interval=0.01,
            quarantine_crashes=1,
        )
        engine = RunEngine(
            journal=RunJournal(tmp_path / "warm.json"),
            policy=RetryPolicy(max_attempts=1),
            supervisor=sup,
        )
        engine.run_specs([_cell("warmup")])

        before = _open_fds()
        sup = Supervisor(
            jobs=2, heartbeat_timeout=30.0, poll_interval=0.01,
            quarantine_crashes=1,
        )
        engine = RunEngine(
            journal=RunJournal(tmp_path / "j.json"),
            policy=RetryPolicy(max_attempts=1),
            supervisor=sup,
        )
        outcomes = engine.run_specs([_cell(f"app{i}") for i in range(50)])
        assert sup.stats["cells_quarantined"] == 50
        assert all(o.status == "poisoned" for o in outcomes)
        after = _open_fds()
        assert after <= before + 2, (
            f"fd table grew from {before} to {after} across 50 quarantines"
        )

    def test_lease_pool_releases_fds_across_crashes(self, pool, monkeypatch):
        monkeypatch.setattr(repro.runner, "run_spec", _kill_on_seed0)
        p = pool(workers=2)
        with pytest.raises(WorkerCrashError):
            p.submit(_cell("warmup"), seed=0).result(timeout=30)
        before = _open_fds()
        for _ in range(20):
            with pytest.raises(WorkerCrashError):
                p.submit(_cell("mcf"), seed=0).result(timeout=30)
        after = _open_fds()
        assert after <= before + 2, (
            f"fd table grew from {before} to {after} across 20 crashes"
        )
