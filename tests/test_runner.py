"""Runner helper tests (small instruction budgets)."""

from repro import ConsistencyModel, ProcessorConfig, Scheme
from repro.configs import ALL_SCHEMES
from repro.runner import (
    normalized_execution_time,
    normalized_traffic,
    run_matrix,
    run_parsec,
    run_spec,
)


class TestRunSpec:
    def test_runs_and_measures(self):
        result = run_spec("hmmer", ProcessorConfig(), instructions=800)
        assert result.instructions == 800
        assert result.cycles > 0

    def test_warmup_default_is_half(self):
        result = run_spec("hmmer", ProcessorConfig(), instructions=800)
        assert result.cores[0].retired_instructions == 1200


class TestRunParsec:
    def test_eight_cores_retire(self):
        result = run_parsec(
            "swaptions", ProcessorConfig(), instructions=250, warmup=50
        )
        assert len(result.cores) == 8
        assert result.instructions == 8 * 250


class TestRunMatrix:
    def test_matrix_covers_schemes(self):
        results = run_matrix(
            "hmmer",
            instructions=600,
            schemes=(Scheme.BASE, Scheme.IS_FUTURE),
        )
        assert set(results) == {Scheme.BASE, Scheme.IS_FUTURE}

    def test_normalizations_anchor_base_at_one(self):
        results = run_matrix(
            "hmmer",
            instructions=600,
            schemes=(Scheme.BASE, Scheme.IS_SPECTRE),
        )
        exec_norm = normalized_execution_time(results)
        traffic_norm = normalized_traffic(results)
        assert exec_norm[Scheme.BASE] == 1.0
        assert traffic_norm[Scheme.BASE] == 1.0
        assert exec_norm[Scheme.IS_SPECTRE] > 0

    def test_rc_matrix_runs(self):
        results = run_matrix(
            "hmmer",
            consistency=ConsistencyModel.RC,
            instructions=600,
            schemes=(Scheme.BASE, Scheme.IS_FUTURE),
        )
        assert results[Scheme.IS_FUTURE].cycles > 0
