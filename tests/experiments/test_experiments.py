"""Smoke tests for the experiment harness with tiny budgets."""

import pytest

from repro.experiments import ALL_EXPERIMENTS, figure4, figure5, figure6
from repro.experiments import ablations, table6, table7, tables45


class TestRegistry:
    def test_every_evaluation_artifact_has_an_experiment(self):
        for name in ("figure4", "figure5", "figure6", "figure7", "figure8",
                     "table6", "table7", "tables45", "ablations"):
            assert name in ALL_EXPERIMENTS


class TestFigure4:
    def test_rows_and_shape(self):
        result = figure4.run(
            apps=["hmmer"], instructions=600, include_rc=False
        )
        row = result.row_for("hmmer")
        assert row is not None
        base, fe_sp, is_sp, fe_fu, is_fu = row[1:6]
        assert base == 1.0
        # The paper's headline ordering: fences cost far more than IS.
        assert fe_sp > is_sp
        assert fe_fu > is_fu
        assert result.row_for("average") is not None

    def test_rc_average_row(self):
        result = figure4.run(apps=["hmmer"], instructions=500, include_rc=True)
        assert result.row_for("RC-average") is not None


class TestFigure5:
    def test_base_leaks_is_sp_does_not(self):
        result = figure5.run(trials=1)
        assert result.extras["base_guess"] == result.extras["secret"]
        assert result.extras["is_sp_guess"] is None

    def test_secret_row_contrast(self):
        result = figure5.run(secret=84, trials=1)
        row = result.row_for(84)
        assert row[1] <= 40  # Base: hit
        assert row[2] >= 100  # IS-Sp: miss


class TestFigure6:
    def test_traffic_normalized(self):
        result = figure6.run(
            apps=["hmmer"], instructions=600, include_rc=False
        )
        row = result.row_for("hmmer")
        assert row[1] == 1.0  # Base
        assert row[3] > 1.0  # IS-Sp adds traffic


class TestTable6:
    def test_characterization_columns(self):
        result = table6.run(
            spec_apps=("hmmer",), parsec_apps=("swaptions",),
            instructions=500,
        )
        row = result.row_for("hmmer (IS-Fu)")
        assert row is not None
        exposures, val_hit, val_miss = row[1:4]
        assert abs(exposures + val_hit + val_miss - 100.0) < 1.0


class TestTable7:
    def test_matches_paper_columns(self):
        result = table7.run()
        assert len(result.rows) == 5
        area_row = result.row_for("Area (mm^2)")
        assert float(area_row[1]) < 0.05


class TestTables45:
    def test_renders_parameters(self):
        result = tables45.run()
        assert result.row_for("Architecture") is not None
        assert result.row_for("config IS-Fu") is not None


class TestAblations:
    @pytest.mark.slow
    def test_ablation_rows(self):
        result = ablations.run(
            app="hmmer", v2e_app="hmmer", parsec_app="swaptions",
            instructions=500,
        )
        labels = [row[0] for row in result.rows]
        assert any("no-llc-sb" in label for label in labels)
        assert any("no-early-squash" in label for label in labels)
        assert any("validations instead" in label for label in labels)
