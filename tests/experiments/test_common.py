"""Experiment plumbing tests."""

import pytest

from repro.configs import Scheme
from repro.experiments.common import (
    ExperimentResult,
    arithmetic_mean,
    default_apps,
    geometric_mean,
    normalized,
)
from repro.workloads import parsec_names, spec_names


class TestExperimentResult:
    def test_text_renders_headers_rows_notes(self):
        result = ExperimentResult(
            "x", "Title", ["a", "b"], [["app", 1.5]], notes="note text"
        )
        assert "Title" in result.text
        assert "note text" in result.text
        assert "1.50" in result.text

    def test_row_for(self):
        result = ExperimentResult("x", "t", ["a"], [["one", 1], ["two", 2]])
        assert result.row_for("two") == ["two", 2]
        assert result.row_for("missing") is None


class TestBars:
    def test_bars_renders_numeric_columns(self):
        result = ExperimentResult(
            "x", "Bars", ["app", "Base", "IS-Fu", "note"],
            [["mcf", 1.0, 1.3, "n/a"], ["lbm", 1.0, 1.5, "n/a"]],
        )
        text = result.bars()
        assert "mcf" in text and "lbm" in text
        assert "IS-Fu" in text
        assert "#" in text
        assert "note" not in text  # non-numeric column skipped

    def test_bars_explicit_columns(self):
        result = ExperimentResult(
            "x", "Bars", ["app", "Base", "IS-Fu"], [["mcf", 1.0, 1.3]]
        )
        text = result.bars(columns=["IS-Fu"])
        assert "Base" not in text.splitlines()[-1]


class TestSerialization:
    def test_json_roundtrip(self, tmp_path):
        result = ExperimentResult(
            "fig", "Title", ["a", "b"], [["x", 1.25]], notes="n"
        )
        path = tmp_path / "result.json"
        result.save_json(path)
        loaded = ExperimentResult.load_json(path)
        assert loaded.experiment_id == "fig"
        assert loaded.rows == [["x", 1.25]]
        assert loaded.notes == "n"
        assert loaded.text == result.text


class TestMeanStd:
    def test_mean_std(self):
        from repro.experiments.common import mean_std

        mean, std = mean_std([1.0, 2.0, 3.0])
        assert mean == 2.0
        assert abs(std - 1.0) < 1e-9
        assert mean_std([5.0]) == (5.0, 0.0)
        assert mean_std([]) == (0.0, 0.0)

    def test_multi_seed_overhead(self):
        from repro.configs import Scheme
        from repro.experiments.common import multi_seed_overhead

        mean, std = multi_seed_overhead(
            "hmmer", Scheme.IS_SPECTRE, instructions=600, seeds=(0, 1)
        )
        assert mean > 0.5
        assert std >= 0.0


class TestHelpers:
    def test_default_apps_full_suites(self):
        assert default_apps("spec") == spec_names()
        assert default_apps("parsec") == parsec_names()

    def test_default_apps_quick_subsets(self):
        quick = default_apps("spec", quick=True)
        assert 0 < len(quick) < len(spec_names())
        assert set(quick) <= set(spec_names())

    def test_default_apps_explicit_wins(self):
        assert default_apps("spec", apps=["mcf"], quick=True) == ["mcf"]

    def test_means(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert geometric_mean([1.0, 4.0]) == 2.0
        assert arithmetic_mean([]) == 0.0
        assert geometric_mean([]) == 0.0

    def test_normalized_anchors_base(self):
        class Fake:
            def __init__(self, cycles):
                self.cycles = cycles

        results = {Scheme.BASE: Fake(100), Scheme.IS_FUTURE: Fake(150)}
        norm = normalized(results, lambda r: r.cycles)
        assert norm[Scheme.BASE] == 1.0
        assert norm[Scheme.IS_FUTURE] == 1.5
