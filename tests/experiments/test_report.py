"""Report-generation tests."""

from repro.experiments import figure5, report, table7
from repro.experiments.common import ExperimentResult


def fake_figure4():
    headers = ["app", "Base", "Fe-Sp", "IS-Sp", "Fe-Fu", "IS-Fu", "x", "y"]
    rows = [
        ["mcf", 1.0, 2.2, 1.05, 3.3, 1.2, 0, 0],
        ["average", 1.0, 2.19, 1.10, 3.72, 1.30, "", ""],
        ["RC-average", 1.0, 4.0, 1.07, 6.9, 1.34, "", ""],
    ]
    return ExperimentResult("figure4", "Fig 4", headers, rows)


class TestBuildReport:
    def test_report_includes_paper_numbers(self):
        text = report.build_report({"figure4": fake_figure4()})
        assert "1.88" in text  # paper Fe-Sp
        assert "1.1" in text  # measured IS-Sp
        assert "Figure 4" in text

    def test_report_with_table7(self):
        result = table7.run()
        text = report.build_report({"table7": result})
        assert "Table VII" in text
        assert "0.0174" in text

    def test_security_matrix_always_present(self):
        text = report.build_report({})
        assert "Security matrix" in text
        assert "Spectre v1" in text

    def test_cli_run_with_saved_json(self, tmp_path):
        fake_figure4().save_json(tmp_path / "figure4.json")
        text = report.run(results_dir=str(tmp_path))
        assert "Figure 4" in text

    def test_cli_run_writes_out(self, tmp_path):
        fake_figure4().save_json(tmp_path / "figure4.json")
        out = tmp_path / "EXPERIMENTS.md"
        report.run(results_dir=str(tmp_path), out=str(out))
        assert out.exists()
        assert "paper vs. measured" in out.read_text()
