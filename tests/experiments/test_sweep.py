"""Parameter-sweep experiment smoke test (tiny budget)."""

from repro.experiments import sweep


class TestVariance:
    def test_variance_rows(self):
        from repro.experiments import variance

        result = variance.run(apps=("hmmer",), instructions=400,
                              seeds=(0, 1))
        row = result.row_for("hmmer")
        assert row is not None
        assert row[1] > 0.5  # IS-Sp mean overhead factor
        assert row[2] >= 0.0  # std


class TestSweep:
    def test_single_dimension_rows(self):
        result = sweep.run(app="hmmer", dimensions=("lq",), instructions=500)
        labels = [row[0] for row in result.rows]
        assert labels == ["lq:LQ=16", "lq:LQ=32", "lq:LQ=64"]
        for row in result.rows:
            assert row[1] > 0  # base cycles
            assert row[2] > 0  # IS-Fu cycles
            assert row[3].endswith("%")

    def test_dram_dimension_monotone_base(self):
        result = sweep.run(app="hmmer", dimensions=("dram",),
                           instructions=500)
        base_cycles = [row[1] for row in result.rows]
        # Higher DRAM latency never speeds up the baseline.
        assert base_cycles == sorted(base_cycles)
