"""Shared fixtures and helpers for the test suite."""

import pytest

from repro import ConsistencyModel, ProcessorConfig, Scheme, SystemParams
from repro.cpu import isa
from repro.cpu.trace import ProgramTrace
from repro.system import System


@pytest.fixture
def spec_params():
    """Single-core machine (SPEC style, one L2 bank)."""
    return SystemParams.for_spec()


@pytest.fixture
def duo_params():
    """Two-core machine for coherence tests."""
    return SystemParams(num_cores=2)


def make_system(ops, scheme=Scheme.BASE, consistency=ConsistencyModel.TSO,
                params=None, wrong_paths=None, **system_kwargs):
    """One core running an explicit list of micro-ops."""
    if params is None:
        params = SystemParams.for_spec()
    return System(
        params=params,
        config=ProcessorConfig(scheme=scheme, consistency=consistency),
        traces=[ProgramTrace(ops, wrong_paths)],
        **system_kwargs,
    )


def run_ops(ops, scheme=Scheme.BASE, consistency=ConsistencyModel.TSO,
            params=None, wrong_paths=None, max_cycles=500_000, **kwargs):
    """Build, run, and return (RunResult, System)."""
    system = make_system(
        ops, scheme=scheme, consistency=consistency, params=params,
        wrong_paths=wrong_paths, **kwargs,
    )
    result = system.run(max_cycles=max_cycles)
    return result, system


def simple_load_alu_ops(n=20, base=0x1000, stride=64):
    """n rounds of load -> dependent ALU."""
    ops = []
    for i in range(n):
        ops.append(isa.load(pc=0x100 + 4 * i, addr=base + stride * i, size=8))
        ops.append(isa.alu(pc=0x200 + 4 * i, deps=(1,)))
    return ops
