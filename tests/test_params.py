"""Parameter dataclass validation (Table IV defaults)."""

import pytest

from repro import CacheParams, ConfigError, CoreParams, NetworkParams, SystemParams
from repro.params import TLBParams


class TestCacheParams:
    def test_defaults_match_table_iv_l1d(self):
        params = SystemParams().l1d
        assert params.size_bytes == 64 * 1024
        assert params.line_bytes == 64
        assert params.ways == 8
        assert params.round_trip_latency == 1
        assert params.ports == 3

    def test_num_sets_and_lines(self):
        params = CacheParams(size_bytes=64 * 1024, line_bytes=64, ways=8)
        assert params.num_lines == 1024
        assert params.num_sets == 128

    def test_l2_bank_matches_table_iv(self):
        params = SystemParams().l2_bank
        assert params.size_bytes == 2 * 1024 * 1024
        assert params.ways == 16
        assert params.round_trip_latency == 8

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=1024, line_bytes=48)

    def test_rejects_negative_size(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=-1)

    def test_rejects_indivisible_geometry(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=1000, line_bytes=64, ways=8)

    def test_rejects_unknown_replacement(self):
        with pytest.raises(ConfigError):
            CacheParams(size_bytes=1024, ways=2, replacement="belady")


class TestCoreParams:
    def test_defaults_match_table_iv(self):
        core = CoreParams()
        assert core.issue_width == 8
        assert core.rob_entries == 192
        assert core.load_queue_entries == 32
        assert core.store_queue_entries == 32
        assert core.btb_entries == 4096
        assert core.ras_entries == 16

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            CoreParams(issue_width=0)

    def test_interrupt_interval_zero_allowed(self):
        assert CoreParams(interrupt_interval=0).interrupt_interval == 0

    def test_rejects_negative_interrupt_interval(self):
        with pytest.raises(ConfigError):
            CoreParams(interrupt_interval=-5)


class TestTLBParams:
    def test_defaults(self):
        tlb = TLBParams()
        assert tlb.entries == 64
        assert tlb.page_bytes == 4096

    def test_rejects_non_power_of_two_page(self):
        with pytest.raises(ConfigError):
            TLBParams(page_bytes=5000)


class TestNetworkParams:
    def test_defaults_match_table_iv(self):
        net = NetworkParams()
        assert net.mesh_cols == 4
        assert net.mesh_rows == 2
        assert net.link_bits == 128
        assert net.hop_latency == 1
        assert net.num_nodes == 8

    def test_data_message_carries_line_plus_header(self):
        net = NetworkParams()
        assert net.data_message_bytes == 72
        assert net.control_message_bytes == 8


class TestSystemParams:
    def test_for_spec_is_single_core_single_bank(self):
        params = SystemParams.for_spec()
        assert params.num_cores == 1
        assert params.num_l2_banks == 1

    def test_for_parsec_is_eight_cores(self):
        params = SystemParams.for_parsec()
        assert params.num_cores == 8
        assert params.num_l2_banks == 8

    def test_default_banks_track_cores(self):
        assert SystemParams(num_cores=4).num_l2_banks == 4

    def test_dram_latency_is_100_cycles(self):
        # 50 ns at 2 GHz.
        assert SystemParams().dram_latency == 100

    def test_rejects_more_cores_than_mesh_nodes(self):
        with pytest.raises(ConfigError):
            SystemParams(num_cores=9)

    def test_rejects_line_size_mismatch(self):
        with pytest.raises(ConfigError):
            SystemParams(
                l1d=CacheParams(size_bytes=64 * 1024, line_bytes=32, ways=8),
            )

    def test_replace_returns_modified_copy(self):
        params = SystemParams()
        other = params.replace(dram_latency=200)
        assert other.dram_latency == 200
        assert params.dram_latency == 100
