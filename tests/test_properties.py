"""Cross-cutting property-based tests on core data structures."""

import sys
from pathlib import Path

from hypothesis import given, settings, strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.coherence.mesi import MESIState
from repro.cpu.branch import TournamentPredictor
from repro.cpu.isa import MicroOp, OpKind
from repro.cpu.lsq import LoadQueue, StoreQueue
from repro.cpu.rob import ROBEntry
from repro.mem.cache import CacheArray
from repro.params import CacheParams


def small_cache():
    return CacheArray(
        CacheParams(size_bytes=64 * 2 * 4, line_bytes=64, ways=2), MESIState.INVALID
    )


class TestCacheArrayProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "invalidate", "lookup"]),
                st.integers(min_value=0, max_value=15),
            ),
            max_size=60,
        )
    )
    def test_occupancy_never_exceeds_capacity(self, operations):
        cache = small_cache()
        for op, line_idx in operations:
            line = line_idx * 64
            if op == "insert" and not cache.contains(line):
                cache.insert(line, MESIState.SHARED)
            elif op == "invalidate":
                cache.invalidate(line)
            else:
                cache.lookup(line)
            assert cache.occupancy <= 8
            # Resident lines are exactly the trackable set.
            assert len(set(cache.resident_lines())) == cache.occupancy

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=40))
    def test_inserted_line_is_resident_until_displaced(self, lines):
        cache = small_cache()
        for line_idx in lines:
            line = line_idx * 64
            if not cache.contains(line):
                cache.insert(line, MESIState.EXCLUSIVE)
            assert cache.contains(line)  # at least right after touch


class TestQueueProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.sampled_from(["alloc", "retire", "squash"]), max_size=60
        ),
        st.randoms(use_true_random=False),
    )
    def test_lq_pointer_discipline(self, actions, rng):
        lq = LoadQueue(4)
        seq = 0
        for action in actions:
            if action == "alloc" and not lq.full:
                entry = ROBEntry(MicroOp(OpKind.LOAD), seq, seq, False, 0)
                lq.allocate(entry, epoch=0)
                seq += 1
            elif action == "retire" and len(lq):
                lq.retire_head()
            elif action == "squash" and len(lq):
                target = rng.randrange(lq.head, lq.tail + 1)
                lq.squash_to(target)
            assert 0 <= len(lq) <= 4
            assert lq.head <= lq.tail
            live = list(lq.entries())
            assert [e.index for e in live] == sorted(e.index for e in live)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=8))
    def test_sq_allocate_retire_roundtrip(self, n):
        sq = StoreQueue(8)
        entries = []
        for i in range(n):
            entries.append(sq.allocate(ROBEntry(MicroOp(OpKind.STORE), i, i,
                                                False, 0)))
        for expected in entries:
            assert sq.retire_head() is expected
        assert len(sq) == 0


class TestPredictorProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_history_restore_is_exact(self, outcomes):
        predictor = TournamentPredictor()
        for taken in outcomes:
            predicted, checkpoint = predictor.predict(0x400)
            history_before = checkpoint[0]
            predictor.squash_restore(checkpoint)
            assert predictor.global_history == history_before
            # Redo the prediction and train normally.
            predicted, checkpoint = predictor.predict(0x400)
            predictor.update(0x400, taken, checkpoint, predicted != taken)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.booleans(), min_size=50, max_size=300))
    def test_counters_stay_saturated(self, outcomes):
        predictor = TournamentPredictor()
        for taken in outcomes:
            _p, checkpoint = predictor.predict(0x404)
            predictor.update(0x404, taken, checkpoint, False)
        assert all(0 <= c <= 3 for c in predictor._local_counters)
        assert all(0 <= c <= 3 for c in predictor._global_counters)
        assert all(0 <= c <= 3 for c in predictor._choice_counters)
