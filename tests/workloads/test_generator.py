"""Synthetic trace generator tests: determinism and statistics."""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.isa import OpKind
from repro.workloads import SPEC_PROFILES, SyntheticTrace
from repro.workloads.profiles import WorkloadProfile


def sample(profile, n, seed=0, core_id=0):
    trace = SyntheticTrace(profile, seed=seed, core_id=core_id)
    return [trace.next_op() for _ in range(n)]


class TestDeterminism:
    def test_same_seed_same_stream(self):
        profile = SPEC_PROFILES["mcf"]
        a = sample(profile, 500, seed=3)
        b = sample(profile, 500, seed=3)
        for op_a, op_b in zip(a, b):
            assert op_a.kind == op_b.kind
            assert op_a.addr == op_b.addr
            assert op_a.pc == op_b.pc
            assert op_a.taken == op_b.taken

    def test_different_seeds_differ(self):
        profile = SPEC_PROFILES["mcf"]
        a = sample(profile, 200, seed=1)
        b = sample(profile, 200, seed=2)
        assert any(
            op_a.addr != op_b.addr
            for op_a, op_b in zip(a, b)
            if op_a.kind is OpKind.LOAD and op_b.kind is OpKind.LOAD
        )

    def test_cores_get_disjoint_private_regions(self):
        profile = SPEC_PROFILES["hmmer"]
        a = sample(profile, 300, core_id=0)
        b = sample(profile, 300, core_id=1)
        addrs_a = {op.addr for op in a if op.addr is not None}
        addrs_b = {op.addr for op in b if op.addr is not None}
        assert not addrs_a & addrs_b

    def test_wrong_path_deterministic_per_branch(self):
        profile = SPEC_PROFILES["sjeng"]
        trace = SyntheticTrace(profile, seed=0)
        branch = next(
            op for op in iter(trace.next_op, None) if op.kind is OpKind.BRANCH
        )
        first = [trace.wrong_path_op(branch, i) for i in range(5)]
        second = [trace.wrong_path_op(branch, i) for i in range(5)]
        for op_a, op_b in zip(first, second):
            assert op_a.kind == op_b.kind
            assert op_a.addr == op_b.addr

    def test_wrong_path_does_not_perturb_correct_path(self):
        profile = SPEC_PROFILES["libquantum"]
        a_trace = SyntheticTrace(profile, seed=5)
        b_trace = SyntheticTrace(profile, seed=5)
        a_ops = []
        b_ops = []
        for i in range(400):
            op_a = a_trace.next_op()
            a_ops.append(op_a)
            if op_a.kind is OpKind.BRANCH:
                for j in range(10):
                    a_trace.wrong_path_op(op_a, j)  # must be side-effect free
            b_ops.append(b_trace.next_op())
        for op_a, op_b in zip(a_ops, b_ops):
            assert op_a.addr == op_b.addr


class TestStatistics:
    def test_mix_matches_profile(self):
        profile = SPEC_PROFILES["mcf"]
        ops = sample(profile, 8000)
        counts = Counter(op.kind for op in ops)
        load_frac = counts[OpKind.LOAD] / len(ops)
        store_frac = counts[OpKind.STORE] / len(ops)
        branch_frac = counts[OpKind.BRANCH] / len(ops)
        assert abs(load_frac - profile.load_frac) < 0.03
        assert abs(store_frac - profile.store_frac) < 0.03
        assert abs(branch_frac - profile.branch_frac) < 0.03

    def test_streaming_profile_advances(self):
        profile = SPEC_PROFILES["lbm"]
        ops = sample(profile, 3000)
        stream_addrs = [
            op.addr for op in ops
            if op.addr is not None and op.addr >= 0x1800_0000
        ]
        assert stream_addrs == sorted(stream_addrs)

    def test_hot_set_concentration(self):
        profile = SPEC_PROFILES["hmmer"]  # hot_fraction 0.95
        ops = sample(profile, 5000)
        hot_limit = 0x1000_0000 + profile.hot_lines * 64
        mem_ops = [op for op in ops if op.addr is not None]
        hot = sum(1 for op in mem_ops if op.addr < hot_limit)
        assert hot / len(mem_ops) > 0.8

    def test_branch_biases_cover_both_directions(self):
        profile = SPEC_PROFILES["gobmk"]
        trace = SyntheticTrace(profile, seed=0)
        biases = list(trace._branch_bias.values())
        assert any(b > 0.5 for b in biases)
        assert any(b < 0.5 for b in biases)

    def test_parsec_sync_sections_emitted(self):
        from repro.workloads import PARSEC_PROFILES

        profile = PARSEC_PROFILES["fluidanimate"]
        ops = sample(profile, 4000)
        kinds = Counter(op.kind for op in ops)
        assert kinds[OpKind.ACQUIRE] > 0
        assert kinds[OpKind.ACQUIRE] == kinds[OpKind.RELEASE]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_all_addresses_nonnegative(self, seed):
        profile = SPEC_PROFILES["omnetpp"]
        for op in sample(profile, 200, seed=seed):
            if op.addr is not None:
                assert op.addr >= 0
