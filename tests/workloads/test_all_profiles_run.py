"""Every shipped profile runs end to end (small budgets)."""

import pytest

from repro import ProcessorConfig, Scheme
from repro.runner import run_parsec, run_spec
from repro.workloads import parsec_names, spec_names


@pytest.mark.parametrize("app", spec_names())
def test_every_spec_profile_runs(app):
    result = run_spec(
        app, ProcessorConfig(scheme=Scheme.IS_FUTURE), instructions=300,
        warmup=100, pretrain_ops=2000,
    )
    assert result.instructions == 300
    assert result.cycles > 0
    assert result.traffic_bytes > 0


@pytest.mark.parametrize("app", parsec_names())
def test_every_parsec_profile_runs(app):
    result = run_parsec(
        app, ProcessorConfig(scheme=Scheme.IS_SPECTRE), instructions=120,
        warmup=40, pretrain_ops=1500,
    )
    assert result.instructions == 8 * 120
    assert result.cycles > 0
