"""Workload profile and suite coverage tests."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    PARSEC_PROFILES,
    SPEC_PROFILES,
    WorkloadProfile,
    parsec_names,
    parsec_traces,
    spec_names,
    spec_trace,
)


class TestSuiteCoverage:
    def test_23_spec_applications(self):
        assert len(SPEC_PROFILES) == 23

    def test_9_parsec_applications(self):
        assert len(PARSEC_PROFILES) == 9

    def test_figure4_apps_present(self):
        for name in ("bzip2", "mcf", "sjeng", "libquantum", "omnetpp",
                     "GemsFDTD", "lbm", "sphinx3"):
            assert name in SPEC_PROFILES

    def test_figure7_apps_present(self):
        for name in ("blackscholes", "canneal", "fluidanimate", "swaptions",
                     "x264"):
            assert name in PARSEC_PROFILES

    def test_all_profiles_validate(self):
        for profile in list(SPEC_PROFILES.values()) + list(
            PARSEC_PROFILES.values()
        ):
            assert 0 < profile.load_frac < 1
            assert profile.alu_frac > 0

    def test_parsec_profiles_share(self):
        assert all(
            p.shared_fraction > 0 for p in PARSEC_PROFILES.values()
        )

    def test_paper_calibration_anchors(self):
        # sjeng: worst branches; libquantum: near-perfect, streaming;
        # omnetpp: worst TLB locality.
        profiles = SPEC_PROFILES
        assert profiles["sjeng"].branch_mispredict_target == max(
            p.branch_mispredict_target for p in profiles.values()
        )
        assert profiles["libquantum"].stride_fraction >= 0.8
        assert profiles["omnetpp"].tlb_locality == min(
            p.tlb_locality for p in profiles.values()
        )


class TestProfileValidation:
    def test_rejects_fraction_overflow(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(name="bad", suite="spec_int", load_frac=0.9,
                            store_frac=0.2, branch_frac=0.1)

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(name="bad", suite="spec_int", hot_fraction=1.5)

    def test_rejects_nonpositive_footprint(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(name="bad", suite="spec_int", footprint_lines=0)


class TestFactories:
    def test_spec_trace_unknown_raises(self):
        with pytest.raises(WorkloadError):
            spec_trace("quake")

    def test_parsec_traces_one_per_core(self):
        traces = parsec_traces("canneal", num_cores=8)
        assert len(traces) == 8
        assert len({t.core_id for t in traces}) == 8

    def test_names_align_with_profiles(self):
        assert set(spec_names()) == set(SPEC_PROFILES)
        assert set(parsec_names()) == set(PARSEC_PROFILES)
