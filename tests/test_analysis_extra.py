"""Additional derived-metric coverage: InvisiSpec-specific metrics."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import run_ops, simple_load_alu_ops

from repro import ConsistencyModel, Scheme, analysis


class TestInvisiSpecMetrics:
    def test_usl_fraction_positive_for_is_future(self):
        result, _ = run_ops(simple_load_alu_ops(30), scheme=Scheme.IS_FUTURE)
        assert 0.0 < analysis.usl_fraction(result) <= 1.0

    def test_rc_split_is_all_exposures(self):
        result, _ = run_ops(
            simple_load_alu_ops(30),
            scheme=Scheme.IS_FUTURE,
            consistency=ConsistencyModel.RC,
        )
        exposures, val_hit, val_miss = analysis.visibility_split(result)
        assert exposures == 1.0
        assert val_hit == val_miss == 0.0

    def test_tlb_miss_rate_bounds(self):
        result, _ = run_ops(simple_load_alu_ops(30))
        assert 0.0 <= analysis.tlb_miss_rate(result) <= 1.0

    def test_summary_consistent_with_runresult(self):
        result, _ = run_ops(simple_load_alu_ops(15), scheme=Scheme.IS_SPECTRE)
        summary = analysis.summarize(result)
        assert summary["cycles"] == result.cycles
        assert summary["instructions"] == result.instructions
        assert abs(summary["ipc"] - result.ipc) < 1e-12
        assert summary["traffic_bytes"] == result.traffic_bytes
