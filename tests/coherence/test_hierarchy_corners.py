"""Hierarchy corner paths: bounce, bank queueing, ports, merge classes."""

import itertools

from repro.coherence.hierarchy import MemRequest, RequestKind
from repro.coherence.mesi import MESIState
from repro.invisispec.llc_sb import LLCSpeculativeBuffer
from repro.mem.address import AddressSpace
from repro.mem.memimage import MemoryImage
from repro.params import SystemParams
from repro.sim.kernel import SimKernel
from repro.stats.counters import Counters

_seq = itertools.count(1_000_000)

LINE_A = 0x0004_0000


class Rig:
    def __init__(self, num_cores=2):
        self.params = SystemParams(num_cores=num_cores)
        self.kernel = SimKernel()
        self.space = AddressSpace()
        self.image = MemoryImage(self.space)
        self.counters = Counters()
        from repro.coherence.hierarchy import CacheHierarchy

        self.hierarchy = CacheHierarchy(
            self.params, self.kernel, self.image, self.counters
        )
        for i in range(num_cores):
            self.hierarchy.attach_core(i, _StubCore())

    def submit(self, core, addr, kind, seq=None, value=0, lq_index=0, epoch=0):
        outcome = {}
        req = MemRequest(
            core_id=core,
            addr=addr,
            size=8,
            kind=kind,
            seq=seq if seq is not None else next(_seq),
            lq_index=lq_index,
            epoch=epoch,
            store_value=value,
            on_complete=lambda r: outcome.setdefault("result", r),
        )
        self.hierarchy.submit(req)
        return req, outcome

    def drain(self):
        self.kernel.run(max_cycles=self.kernel.cycle + 100_000)


class _StubCore:
    def on_invalidation(self, line, reason):
        pass

    def on_l1_eviction(self, line):
        pass


class TestSpecGetSBounce:
    def test_bounce_during_writeback_window(self):
        rig = Rig()
        # Core 1 owns the line dirty.
        rig.submit(1, LINE_A, RequestKind.STORE, value=1)
        rig.drain()
        # Open a write-back transient window on the directory entry.
        line = rig.space.line_of(LINE_A)
        bank = rig.hierarchy.bank_of(line)
        entry = rig.hierarchy.dirs[bank].entry(line)
        entry.wb_pending_until = rig.kernel.cycle + 50
        req, outcome = rig.submit(0, LINE_A, RequestKind.SPEC_LOAD)
        rig.drain()
        assert "result" in outcome
        assert outcome["result"].bounces >= 1
        assert rig.counters["invisispec.spec_gets_bounces"] >= 1

    def test_bounced_request_eventually_gets_data(self):
        rig = Rig()
        rig.submit(1, LINE_A, RequestKind.STORE, value=0xEE)
        rig.drain()
        line = rig.space.line_of(LINE_A)
        bank = rig.hierarchy.bank_of(line)
        rig.hierarchy.dirs[bank].entry(line).wb_pending_until = (
            rig.kernel.cycle + 30
        )
        _req, outcome = rig.submit(0, LINE_A, RequestKind.SPEC_LOAD)
        rig.drain()
        value = sum(
            b << (8 * i) for i, b in enumerate(outcome["result"].data)
        )
        assert value == 0xEE


class TestBankAndPortContention:
    def test_bank_queue_serializes_bursts(self):
        rig = Rig()
        outcomes = []
        # A burst of misses to distinct lines homed at the same bank.
        num_banks = rig.hierarchy.num_banks
        for i in range(8):
            addr = LINE_A + 64 * num_banks * i  # same bank every time
            outcomes.append(rig.submit(0, addr, RequestKind.LOAD)[1])
        rig.drain()
        assert rig.counters["l2.bank_queue_cycles"] > 0
        assert all("result" in o for o in outcomes)

    def test_l1_port_limit_spreads_accesses(self):
        rig = Rig()
        # Warm one line, then issue more same-cycle hits than ports.
        rig.submit(0, LINE_A, RequestKind.LOAD)
        rig.drain()
        ready = []
        for _ in range(9):  # 3 ports -> at least 3 cycles of slots
            _req, outcome = rig.submit(0, LINE_A, RequestKind.LOAD)
            ready.append(outcome)
        rig.drain()
        cycles = {o["result"].ready_cycle for o in ready}
        assert len(cycles) >= 3


class TestMergeClasses:
    def test_visible_loads_merge(self):
        rig = Rig()
        _r1, o1 = rig.submit(0, LINE_A, RequestKind.LOAD, seq=10)
        _r2, o2 = rig.submit(0, LINE_A + 8, RequestKind.LOAD, seq=11)
        rig.drain()
        assert rig.counters["hierarchy.mshr_merges"] == 1
        assert "result" in o1 and "result" in o2

    def test_older_request_does_not_merge_into_younger(self):
        """Section VII: never reuse state allocated by a younger access."""
        rig = Rig()
        rig.submit(0, LINE_A, RequestKind.SPEC_LOAD, seq=20)
        rig.submit(0, LINE_A + 8, RequestKind.SPEC_LOAD, seq=5)  # older!
        rig.drain()
        assert rig.counters["hierarchy.mshr_merges"] == 0
        assert rig.counters["hierarchy.mshr_bypass"] == 1

    def test_spec_and_visible_never_merge(self):
        rig = Rig()
        rig.submit(0, LINE_A, RequestKind.SPEC_LOAD, seq=30)
        rig.submit(0, LINE_A + 8, RequestKind.LOAD, seq=31)
        rig.drain()
        assert rig.counters["hierarchy.mshr_merges"] == 0

    def test_stores_never_merge(self):
        rig = Rig()
        rig.submit(0, LINE_A, RequestKind.LOAD, seq=40)
        rig.submit(0, LINE_A, RequestKind.STORE, seq=41, value=9)
        rig.drain()
        assert rig.counters["hierarchy.mshr_merges"] == 0
        assert rig.image.read(LINE_A, 8) == 9


class TestL2EvictionRecall:
    def test_l2_eviction_recalls_l1_copies(self):
        """Inclusive hierarchy: evicting an L2 line invalidates the L1s."""
        params = SystemParams(
            num_cores=1,
            l2_banks=1,
            l2_bank=SystemParams().l2_bank.__class__(
                size_bytes=64 * 16 * 4, line_bytes=64, ways=4,
                round_trip_latency=8, ports=1,
            ),
        )
        kernel = SimKernel()
        space = AddressSpace()
        image = MemoryImage(space)
        counters = Counters()
        from repro.coherence.hierarchy import CacheHierarchy

        hierarchy = CacheHierarchy(params, kernel, image, counters)
        hierarchy.attach_core(0, _StubCore())
        # Overflow one tiny-L2 set.
        first = 0x10_0000
        victims = []
        for i in range(8):
            addr = first + 64 * 16 * i  # same L2 set
            req = MemRequest(0, addr, 8, RequestKind.LOAD, seq=next(_seq))
            hierarchy.submit(req)
            kernel.run(max_cycles=kernel.cycle + 10_000)
        assert counters["coherence.l2_evictions"] > 0
        hierarchy.check_inclusion()
