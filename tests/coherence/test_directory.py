"""Directory metadata tests."""

import pytest

from repro.coherence.directory import Directory
from repro.errors import ProtocolError


class TestDirectory:
    def test_entry_created_on_demand(self):
        directory = Directory(0)
        assert directory.entry(0x1000) is None
        entry = directory.entry(0x1000, create=True)
        assert entry is not None
        assert not entry.cached_anywhere

    def test_add_sharer(self):
        directory = Directory(0)
        entry = directory.add_sharer(0x1000, 2)
        assert entry.sharers == {2}
        assert entry.owner is None

    def test_owner_is_not_also_sharer(self):
        directory = Directory(0)
        directory.add_sharer(0x1000, 1)
        entry = directory.set_owner(0x1000, 1)
        assert entry.owner == 1
        assert 1 not in entry.sharers

    def test_add_sharer_noop_for_owner(self):
        directory = Directory(0)
        directory.set_owner(0x1000, 3)
        entry = directory.add_sharer(0x1000, 3)
        assert entry.owner == 3
        assert 3 not in entry.sharers

    def test_demote_owner(self):
        directory = Directory(0)
        directory.set_owner(0x1000, 1)
        entry = directory.demote_owner(0x1000)
        assert entry.owner is None
        assert entry.sharers == {1}

    def test_demote_without_owner_raises(self):
        directory = Directory(0)
        directory.add_sharer(0x1000, 1)
        with pytest.raises(ProtocolError):
            directory.demote_owner(0x1000)

    def test_remove_core(self):
        directory = Directory(0)
        directory.add_sharer(0x1000, 1)
        directory.set_owner(0x1000, 2)
        directory.remove_core(0x1000, 2)
        entry = directory.entry(0x1000)
        assert entry.owner is None
        assert entry.sharers == {1}

    def test_sharers_other_than_includes_owner(self):
        directory = Directory(0)
        directory.add_sharer(0x1000, 1)
        directory.set_owner(0x1000, 2)
        # Sorted tuples: iteration order feeds invalidation-message order,
        # which is cycle-affecting, so it must be deterministic.
        assert directory.sharers_other_than(0x1000, 1) == (2,)
        assert directory.sharers_other_than(0x1000, 2) == (1,)
        assert directory.sharers_other_than(0x1000, 3) == (1, 2)
        assert directory.sharers_other_than(0x2000, 0) == ()

    def test_writeback_window(self):
        directory = Directory(0)
        entry = directory.entry(0x1000, create=True)
        entry.wb_pending_until = 100
        assert entry.writeback_in_flight(50)
        assert not entry.writeback_in_flight(100)

    def test_drop(self):
        directory = Directory(0)
        directory.add_sharer(0x1000, 1)
        directory.drop(0x1000)
        assert directory.entry(0x1000) is None
