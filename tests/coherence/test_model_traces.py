"""Model-checker counterexamples replayed on the live hierarchy.

Each seeded mutation's shortest counterexample trace — the message
interleaving that breaks the *mutated* abstract protocol — is replayed
as a stimulus program against the real, unmodified CacheHierarchy on a
SimKernel.  The shipped code must survive every one: requests complete,
Spec-GetS steps stay invisible, and SWMR / directory agreement /
inclusion hold at quiescence.  A future protocol change that
reintroduces one of these bugs fails here with the exact interleaving
that exposes it.
"""

import pytest

from repro.staticcheck.mutations import MUTATIONS, check_mutation
from repro.staticcheck.replay import (
    ReplayError,
    TraceReplayer,
    parse_label,
    replay_trace,
)


@pytest.mark.parametrize("mut", MUTATIONS, ids=[m.name for m in MUTATIONS])
def test_counterexample_survives_on_live_simulator(mut):
    result = check_mutation(mut.name, cores=2, lines=1, max_seconds=120)
    assert result.violation is not None, mut.name
    replayer = replay_trace(result.violation.trace, cores=2, lines=1)
    assert replayer.steps_replayed >= 1


class TestLabelParsing:
    def test_full_label(self):
        assert parse_label("issue_store c1 l0 via upgrade") == (
            "issue_store",
            1,
            0,
            "via upgrade",
        )

    def test_coreless_label(self):
        assert parse_label("l2_evict l0") == ("l2_evict", None, 0, "")

    def test_trailing_text(self):
        assert parse_label("l1_evict c0 l1 was M") == (
            "l1_evict",
            0,
            1,
            "was M",
        )

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_label("???")


class TestReplayerChecks:
    def test_clean_program_passes(self):
        replayer = TraceReplayer(cores=2, lines=1)
        replayer.replay(
            [
                "issue_load c0 l0 via mem_read",
                "deliver_fill c0 l0 installed (load)",
                "issue_store c1 l0 via owner_invalidate",
                "perform_store c1 l0",
            ]
        )
        assert replayer.steps_replayed == 2

    def test_spec_then_validate_uses_llc_sb(self):
        replayer = TraceReplayer(cores=2, lines=1)
        replayer.replay(
            [
                "issue_spec c0 l0 via spec_mem_read",
                "spec_visible c0 l0 via mem_read",
            ]
        )
        assert replayer.counters["hierarchy.requests.spec_load"] == 1

    def test_detects_planted_swmr_break(self):
        """The end-state checks are not vacuous: hand the replayer a
        hierarchy whose L1 states were corrupted behind its back."""
        from repro.coherence.mesi import MESIState

        replayer = TraceReplayer(cores=2, lines=1)
        replayer.step("issue_store c0 l0 via mem_store")
        line = replayer.space.line_of(replayer.line_addr(0))
        # plant a second writable copy without telling the directory
        replayer.hierarchy.l1s[1].insert(line, MESIState.MODIFIED)
        with pytest.raises(ReplayError):
            replayer.finish()

    def test_detects_lost_store_value(self):
        replayer = TraceReplayer(cores=2, lines=1)
        replayer.step("issue_store c0 l0 via mem_store")
        # corrupt the architectural image behind the hierarchy's back
        replayer.image.write(replayer.line_addr(0), 8, 0xDEAD)
        with pytest.raises(ReplayError):
            replayer.finish()
