"""Cache hierarchy transaction tests, driven without cores.

Requests are submitted directly and the kernel drains the scheduled events;
a stub core records invalidation/eviction callbacks.
"""

import itertools

import pytest

from repro.coherence.hierarchy import CacheHierarchy, MemRequest, RequestKind
from repro.coherence.mesi import MESIState
from repro.invisispec.llc_sb import LLCSpeculativeBuffer
from repro.mem.address import AddressSpace
from repro.mem.memimage import MemoryImage
from repro.params import SystemParams
from repro.sim.kernel import SimKernel
from repro.stats.counters import Counters

_seq = itertools.count(1)


class StubCore:
    def __init__(self):
        self.invalidations = []
        self.evictions = []

    def on_invalidation(self, line, reason):
        self.invalidations.append((line, reason))

    def on_l1_eviction(self, line):
        self.evictions.append(line)


class Rig:
    def __init__(self, num_cores=2, with_llc_sb=False):
        self.params = SystemParams(num_cores=num_cores)
        self.kernel = SimKernel()
        self.space = AddressSpace()
        self.image = MemoryImage(self.space)
        self.counters = Counters()
        self.hierarchy = CacheHierarchy(
            self.params, self.kernel, self.image, self.counters
        )
        self.cores = [StubCore() for _ in range(num_cores)]
        for i, core in enumerate(self.cores):
            self.hierarchy.attach_core(i, core)
        if with_llc_sb:
            self.llc_sbs = [
                LLCSpeculativeBuffer(32) for _ in range(num_cores)
            ]
            self.hierarchy.set_llc_sbs(self.llc_sbs)

    def request(self, core, addr, kind, size=8, value=0, lq_index=0, epoch=0):
        """Submit and run to completion; returns (result, latency)."""
        outcome = {}
        start = self.kernel.cycle
        req = MemRequest(
            core_id=core,
            addr=addr,
            size=size,
            kind=kind,
            seq=next(_seq),
            lq_index=lq_index,
            epoch=epoch,
            store_value=value,
            on_complete=lambda r: outcome.setdefault("result", r),
        )
        self.hierarchy.submit(req)
        self.kernel.run(max_cycles=start + 100_000)
        assert "result" in outcome, "request never completed"
        return outcome["result"], outcome["result"].ready_cycle - start


LINE_A = 0x0004_0000
LINE_B = 0x0008_0000


class TestLoadPaths:
    def test_cold_load_goes_to_dram(self):
        rig = Rig()
        result, latency = rig.request(0, LINE_A, RequestKind.LOAD)
        assert result.level == "dram"
        assert latency >= rig.params.dram_latency

    def test_second_load_hits_l1(self):
        rig = Rig()
        rig.request(0, LINE_A, RequestKind.LOAD)
        result, latency = rig.request(0, LINE_A, RequestKind.LOAD)
        assert result.level == "l1"
        assert latency <= 3

    def test_load_fills_l2_inclusively(self):
        rig = Rig()
        rig.request(0, LINE_A, RequestKind.LOAD)
        bank = rig.hierarchy.bank_of(rig.space.line_of(LINE_A))
        assert rig.hierarchy.l2[bank].contains(rig.space.line_of(LINE_A))
        rig.hierarchy.check_inclusion()

    def test_other_core_load_stays_on_chip(self):
        # Core 0 holds the sole copy in E (it is the tracked owner), so
        # core 1's read is forwarded to it; either way, no DRAM access.
        rig = Rig()
        rig.request(0, LINE_A, RequestKind.LOAD)
        dram_before = rig.hierarchy.dram.stat_accesses
        result, latency = rig.request(1, LINE_A, RequestKind.LOAD)
        assert result.level in ("l2", "remote_l1")
        assert rig.hierarchy.dram.stat_accesses == dram_before
        assert latency < rig.params.dram_latency
        # Both copies end up Shared.
        assert rig.hierarchy.l1_state(0, LINE_A) is MESIState.SHARED

    def test_load_returns_memory_value(self):
        rig = Rig()
        rig.image.write(LINE_A, 8, 0xCAFEBABE)
        result, _ = rig.request(0, LINE_A, RequestKind.LOAD)
        value = sum(b << (8 * i) for i, b in enumerate(result.data))
        assert value == 0xCAFEBABE


class TestStorePaths:
    def test_store_acquires_modified(self):
        rig = Rig()
        rig.request(0, LINE_A, RequestKind.STORE, value=7)
        assert rig.hierarchy.l1_state(0, LINE_A) is MESIState.MODIFIED
        assert rig.image.read(LINE_A, 8) == 7

    def test_store_invalidates_remote_sharer(self):
        rig = Rig()
        rig.request(1, LINE_A, RequestKind.LOAD)
        rig.request(0, LINE_A, RequestKind.STORE, value=1)
        assert rig.hierarchy.l1_state(1, LINE_A) is MESIState.INVALID
        assert any(
            line == rig.space.line_of(LINE_A)
            for line, _ in rig.cores[1].invalidations
        )

    def test_store_hit_in_shared_upgrades(self):
        rig = Rig()
        rig.request(0, LINE_A, RequestKind.LOAD)
        rig.request(1, LINE_A, RequestKind.LOAD)  # both share now
        rig.request(0, LINE_A, RequestKind.STORE, value=2)
        assert rig.counters["hierarchy.upgrades"] >= 1
        assert rig.hierarchy.l1_state(1, LINE_A) is MESIState.INVALID

    def test_remote_modified_moves_ownership(self):
        rig = Rig()
        rig.request(0, LINE_A, RequestKind.STORE, value=3)
        rig.request(1, LINE_A, RequestKind.STORE, value=4)
        assert rig.hierarchy.l1_state(1, LINE_A) is MESIState.MODIFIED
        assert rig.hierarchy.l1_state(0, LINE_A) is MESIState.INVALID
        assert rig.image.read(LINE_A, 8) == 4


class TestRemoteOwnerReads:
    def test_read_from_remote_modified_demotes_owner(self):
        rig = Rig()
        rig.request(0, LINE_A, RequestKind.STORE, value=9)
        result, _ = rig.request(1, LINE_A, RequestKind.LOAD)
        assert result.level == "remote_l1"
        assert rig.hierarchy.l1_state(0, LINE_A) is MESIState.SHARED
        value = sum(b << (8 * i) for i, b in enumerate(result.data))
        assert value == 9


class TestSpecGetS:
    def test_spec_load_leaves_no_l1_or_l2_state(self):
        rig = Rig()
        result, _ = rig.request(0, LINE_A, RequestKind.SPEC_LOAD)
        assert result.level == "dram"
        line = rig.space.line_of(LINE_A)
        assert not rig.hierarchy.l1s[0].contains(line)
        bank = rig.hierarchy.bank_of(line)
        assert not rig.hierarchy.l2[bank].contains(line)
        assert rig.hierarchy.dirs[bank].entry(line) is None

    def test_spec_load_does_not_change_directory_for_cached_line(self):
        rig = Rig()
        rig.request(1, LINE_A, RequestKind.LOAD)
        line = rig.space.line_of(LINE_A)
        bank = rig.hierarchy.bank_of(line)
        before = set(rig.hierarchy.dirs[bank].entry(line).sharers)
        rig.request(0, LINE_A, RequestKind.SPEC_LOAD)
        assert set(rig.hierarchy.dirs[bank].entry(line).sharers) == before

    def test_spec_load_reads_remote_modified_without_demoting(self):
        rig = Rig()
        rig.request(1, LINE_A, RequestKind.STORE, value=5)
        result, _ = rig.request(0, LINE_A, RequestKind.SPEC_LOAD)
        assert result.level == "remote_l1"
        assert rig.hierarchy.l1_state(1, LINE_A) is MESIState.MODIFIED

    def test_spec_load_inserts_into_llc_sb_on_dram_miss(self):
        rig = Rig(with_llc_sb=True)
        rig.request(0, LINE_A, RequestKind.SPEC_LOAD, lq_index=3, epoch=1)
        line = rig.space.line_of(LINE_A)
        assert line in rig.llc_sbs[0].valid_lines()


class TestValidationExposure:
    def test_validation_hits_llc_sb_instead_of_dram(self):
        rig = Rig(with_llc_sb=True)
        rig.request(0, LINE_A, RequestKind.SPEC_LOAD, lq_index=3, epoch=1)
        dram_before = rig.hierarchy.dram.stat_accesses
        result, latency = rig.request(
            0, LINE_A, RequestKind.VALIDATE, lq_index=3, epoch=1
        )
        assert result.level == "llc_sb"
        assert rig.hierarchy.dram.stat_accesses == dram_before
        assert latency < rig.params.dram_latency

    def test_validation_fills_caches(self):
        rig = Rig(with_llc_sb=True)
        rig.request(0, LINE_A, RequestKind.SPEC_LOAD, lq_index=3, epoch=1)
        rig.request(0, LINE_A, RequestKind.VALIDATE, lq_index=3, epoch=1)
        line = rig.space.line_of(LINE_A)
        assert rig.hierarchy.l1s[0].contains(line)
        rig.hierarchy.check_inclusion()

    def test_llc_sb_purged_after_use(self):
        rig = Rig(with_llc_sb=True)
        rig.request(0, LINE_A, RequestKind.SPEC_LOAD, lq_index=3, epoch=1)
        rig.request(0, LINE_A, RequestKind.VALIDATE, lq_index=3, epoch=1)
        assert rig.space.line_of(LINE_A) not in rig.llc_sbs[0].valid_lines()

    def test_epoch_mismatch_misses_llc_sb(self):
        rig = Rig(with_llc_sb=True)
        rig.request(0, LINE_A, RequestKind.SPEC_LOAD, lq_index=3, epoch=1)
        result, _ = rig.request(
            0, LINE_A, RequestKind.VALIDATE, lq_index=3, epoch=2
        )
        assert result.level == "dram"

    def test_safe_load_miss_purges_all_llc_sbs(self):
        rig = Rig(with_llc_sb=True)
        rig.request(0, LINE_A, RequestKind.SPEC_LOAD, lq_index=3, epoch=1)
        rig.request(1, LINE_A, RequestKind.LOAD)
        assert rig.space.line_of(LINE_A) not in rig.llc_sbs[0].valid_lines()

    def test_exposure_completes_and_fills(self):
        rig = Rig(with_llc_sb=True)
        rig.request(0, LINE_A, RequestKind.SPEC_LOAD, lq_index=4, epoch=0)
        result, _ = rig.request(
            0, LINE_A, RequestKind.EXPOSE, lq_index=4, epoch=0
        )
        assert result.level in ("llc_sb", "dram")
        assert rig.hierarchy.l1s[0].contains(rig.space.line_of(LINE_A))


class TestFlush:
    def test_clflush_removes_everywhere(self):
        rig = Rig()
        rig.request(0, LINE_A, RequestKind.LOAD)
        rig.request(1, LINE_A, RequestKind.LOAD)
        line = rig.space.line_of(LINE_A)
        rig.hierarchy.flush_line(line)
        assert not rig.hierarchy.l1s[0].contains(line)
        assert not rig.hierarchy.l1s[1].contains(line)
        bank = rig.hierarchy.bank_of(line)
        assert not rig.hierarchy.l2[bank].contains(line)

    def test_reload_after_flush_misses(self):
        rig = Rig()
        rig.request(0, LINE_A, RequestKind.LOAD)
        rig.hierarchy.flush_line(rig.space.line_of(LINE_A))
        result, latency = rig.request(0, LINE_A, RequestKind.LOAD)
        assert result.level == "dram"
        assert latency >= rig.params.dram_latency


class TestInclusion:
    def test_inclusion_after_mixed_traffic(self):
        rig = Rig()
        for i in range(40):
            core = i % 2
            addr = 0x10_0000 + 64 * (i * 7 % 23)
            kind = RequestKind.STORE if i % 3 == 0 else RequestKind.LOAD
            rig.request(core, addr, kind, value=i)
        rig.hierarchy.check_inclusion()
