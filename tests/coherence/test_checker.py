"""Coherence-invariant checker tests."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from conftest import run_ops

from repro import (
    ConsistencyModel,
    ProcessorConfig,
    ProtocolError,
    Scheme,
    SystemParams,
)
from repro.coherence.checker import (
    check_all,
    check_directory_agreement,
    check_inclusion,
    check_swmr,
    line_coherence_problems,
)
from repro.coherence.mesi import MESIState
from repro.cpu.isa import MicroOp, OpKind
from repro.cpu.trace import ProgramTrace
from repro.system import System


def racing_system(scheme=Scheme.BASE, rounds=25):
    shared = 0x7600_0000
    reader = []
    for i in range(rounds):
        reader.append(MicroOp(OpKind.LOAD, pc=0x100,
                              addr=0x1700_0000 + 64 * i, size=8,
                              deps=(2,) if i else ()))
        reader.append(MicroOp(OpKind.LOAD, pc=0x104, addr=shared, size=8))
    writer = []
    for i in range(rounds):
        writer.append(MicroOp(OpKind.ALU, pc=0x200, latency=90,
                              deps=(2,) if i else ()))
        writer.append(MicroOp(OpKind.STORE, pc=0x204, addr=shared, size=8,
                              store_value=i))
    system = System(
        params=SystemParams(num_cores=2),
        config=ProcessorConfig(scheme=scheme,
                               consistency=ConsistencyModel.TSO),
        traces=[ProgramTrace(reader), ProgramTrace(writer)],
    )
    system.run(max_cycles=2_000_000)
    return system


class TestInvariantsHold:
    @pytest.mark.parametrize("scheme", [Scheme.BASE, Scheme.IS_FUTURE])
    def test_after_contended_run(self, scheme):
        system = racing_system(scheme)
        assert check_all(system.hierarchy)

    def test_after_single_core_run(self):
        from conftest import simple_load_alu_ops

        _result, system = run_ops(simple_load_alu_ops(30))
        assert check_all(system.hierarchy)


class TestViolationsDetected:
    def test_swmr_detects_double_writer(self):
        system = racing_system()
        hierarchy = system.hierarchy
        # Corrupt: force the same line writable in both L1s.
        line = 0x7600_0000
        for l1 in hierarchy.l1s:
            if not l1.contains(line):
                l1.insert(line, MESIState.MODIFIED)
            else:
                l1.lookup(line, touch=False).state = MESIState.MODIFIED
        with pytest.raises(ProtocolError):
            check_swmr(hierarchy)

    def test_directory_agreement_detects_untracked_line(self):
        system = racing_system()
        hierarchy = system.hierarchy
        rogue_line = 0x7777_0000
        hierarchy.l1s[0].insert(rogue_line, MESIState.SHARED)
        with pytest.raises(ProtocolError):
            check_directory_agreement(hierarchy)

    def test_inclusion_detects_l1_line_missing_from_l2(self):
        system = racing_system()
        hierarchy = system.hierarchy
        line = 0x7600_0000
        holder = next(
            l1 for l1 in hierarchy.l1s if l1.contains(line)
        )
        bank = hierarchy.bank_of(line)
        hierarchy.l2[bank].invalidate(line)
        with pytest.raises(ProtocolError, match="inclusion"):
            check_inclusion(hierarchy)
        assert holder.contains(line)  # the L1 copy is what makes it a bug

    def test_line_problems_reports_kind_and_core(self):
        system = racing_system()
        hierarchy = system.hierarchy
        rogue_line = 0x7777_0000
        hierarchy.l1s[0].insert(rogue_line, MESIState.SHARED)
        problems = line_coherence_problems(hierarchy, rogue_line)
        kinds = {kind for kind, _msg, _core in problems}
        assert "directory" in kinds or "inclusion" in kinds
        # A skip set silences cores with in-flight invalidations.
        assert line_coherence_problems(
            hierarchy, rogue_line, skip_cores=frozenset({0})
        ) == []
