"""The Table I exception-attack family against the Table V configurations."""

import pytest

from repro import ProcessorConfig, Scheme
from repro.security import VARIANTS, run_exception_attack


@pytest.mark.parametrize("variant", sorted(VARIANTS))
class TestExceptionFamily:
    def test_base_leaks(self, variant):
        _lat, recovered = run_exception_attack(
            ProcessorConfig(scheme=Scheme.BASE), variant=variant, secret=177
        )
        assert recovered == 177

    def test_is_future_blocks(self, variant):
        _lat, recovered = run_exception_attack(
            ProcessorConfig(scheme=Scheme.IS_FUTURE), variant=variant,
            secret=177,
        )
        assert recovered is None

    def test_is_spectre_does_not_block(self, variant):
        """Exceptions are outside the Spectre attack model (Table II)."""
        _lat, recovered = run_exception_attack(
            ProcessorConfig(scheme=Scheme.IS_SPECTRE), variant=variant,
            secret=177,
        )
        assert recovered == 177


class TestVariantValidation:
    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            run_exception_attack(ProcessorConfig(), variant="spectre-v9")

    def test_attack_matrix_shape(self):
        from repro.security.exception_attacks import attack_matrix

        matrix = attack_matrix(
            (Scheme.BASE, Scheme.IS_FUTURE), variants=("meltdown",)
        )
        assert matrix["meltdown"][Scheme.BASE] is True
        assert matrix["meltdown"][Scheme.IS_FUTURE] is False
