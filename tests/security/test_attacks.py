"""The attack-vs-defense matrix (Table II scoping, Figures 1 and 5)."""

import pytest

from repro import ProcessorConfig, Scheme
from repro.security import (
    run_cross_core_attack,
    run_meltdown_style_attack,
    run_spectre_v1,
    run_ssb_attack,
)


def config(scheme):
    return ProcessorConfig(scheme=scheme)


class TestSpectreV1:
    def test_base_leaks_secret(self):
        latencies, recovered = run_spectre_v1(config(Scheme.BASE), secret=84,
                                              trials=1)
        assert recovered == 84
        assert latencies[84] <= 40

    def test_base_leaks_any_secret(self):
        for secret in (1, 200, 255):
            _, recovered = run_spectre_v1(config(Scheme.BASE), secret=secret,
                                          trials=1)
            assert recovered == secret

    def test_is_spectre_blocks(self):
        latencies, recovered = run_spectre_v1(
            config(Scheme.IS_SPECTRE), secret=84, trials=1
        )
        assert recovered is None
        # Figure 5: every access goes to memory under IS-Sp.
        assert min(latencies) >= 100

    def test_is_future_blocks(self):
        _, recovered = run_spectre_v1(config(Scheme.IS_FUTURE), secret=84,
                                      trials=1)
        assert recovered is None

    def test_fence_spectre_blocks(self):
        _, recovered = run_spectre_v1(config(Scheme.FENCE_SPECTRE), secret=84,
                                      trials=1)
        assert recovered is None


class TestSpeculativeStoreBypass:
    def test_base_leaks(self):
        _, recovered = run_ssb_attack(config(Scheme.BASE), secret=113)
        assert recovered == 113

    def test_spectre_defenses_do_not_block(self):
        """No branch is involved: the Spectre-model defenses are blind to
        it (the paper's motivation for the Futuristic model)."""
        for scheme in (Scheme.FENCE_SPECTRE, Scheme.IS_SPECTRE):
            _, recovered = run_ssb_attack(config(scheme), secret=113)
            assert recovered == 113

    def test_futuristic_defenses_block(self):
        for scheme in (Scheme.FENCE_FUTURE, Scheme.IS_FUTURE):
            _, recovered = run_ssb_attack(config(scheme), secret=113)
            assert recovered is None


class TestCrossCore:
    """Section III-C's CrossCore setting: the receiver monitors the shared
    LLC from another physical core."""

    def test_base_leaks_through_llc(self):
        latencies, recovered = run_cross_core_attack(
            config(Scheme.BASE), secret=37
        )
        assert recovered == 37
        assert latencies[37] <= 60  # on-chip: the transient load filled L2

    def test_invisispec_blocks_cross_core(self):
        for scheme in (Scheme.IS_SPECTRE, Scheme.IS_FUTURE):
            latencies, recovered = run_cross_core_attack(
                config(scheme), secret=37
            )
            assert recovered is None
            assert min(latencies) >= 100  # nothing on chip


class TestMeltdownStyle:
    def test_base_leaks(self):
        _, recovered = run_meltdown_style_attack(config(Scheme.BASE),
                                                 secret=199)
        assert recovered == 199

    def test_spectre_defenses_do_not_block(self):
        for scheme in (Scheme.FENCE_SPECTRE, Scheme.IS_SPECTRE):
            _, recovered = run_meltdown_style_attack(config(scheme),
                                                     secret=199)
            assert recovered == 199

    def test_futuristic_defenses_block(self):
        for scheme in (Scheme.FENCE_FUTURE, Scheme.IS_FUTURE):
            _, recovered = run_meltdown_style_attack(config(scheme),
                                                     secret=199)
            assert recovered is None
