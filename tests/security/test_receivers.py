"""Cache-timing receiver primitives."""

from repro import ProcessorConfig, Scheme
from repro.security.channel import AttackContext
from repro.security.flush_reload import FlushReloadReceiver
from repro.security.prime_probe import PrimeProbeReceiver


def make_context():
    return AttackContext(ProcessorConfig(scheme=Scheme.BASE))


class TestProbePrimitive:
    def test_cold_probe_is_slow(self):
        context = make_context()
        assert context.probe_latency(0, 0x8000) >= 100

    def test_warm_probe_is_fast(self):
        context = make_context()
        context.probe_latency(0, 0x8000)
        assert context.probe_latency(0, 0x8000) <= 4

    def test_flush_makes_probe_slow_again(self):
        context = make_context()
        context.probe_latency(0, 0x8000)
        context.flush(0x8000)
        assert context.probe_latency(0, 0x8000) >= 100


class TestFlushReload:
    def test_detects_victim_touch(self):
        context = make_context()
        monitored = [0x9000 + 64 * i for i in range(8)]
        receiver = FlushReloadReceiver(context, 0, monitored)
        receiver.flush()
        context.probe_latency(0, monitored[3])  # "victim" touches line 3
        assert receiver.hits() == [3]

    def test_no_touch_no_hits(self):
        context = make_context()
        monitored = [0xA000 + 64 * i for i in range(8)]
        receiver = FlushReloadReceiver(context, 0, monitored)
        receiver.flush()
        assert receiver.hits() == []


class TestPrimeProbe:
    def test_detects_conflict_in_monitored_set(self):
        context = make_context()
        receiver = PrimeProbeReceiver(context, 0, monitored_sets=[5])
        receiver.prime()
        # Victim touches a line mapping to set 5, evicting attacker state.
        l1 = context.hierarchy.l1s[0]
        victim_addr = 0x30_0000 + 5 * 64
        assert l1.set_index(context.space.line_of(victim_addr)) == 5
        context.probe_latency(0, victim_addr)
        evictions = receiver.probe()
        assert evictions[5] >= 1

    def test_quiet_set_shows_no_evictions(self):
        context = make_context()
        receiver = PrimeProbeReceiver(context, 0, monitored_sets=[7])
        receiver.prime()
        evictions = receiver.probe()
        assert evictions[7] == 0
