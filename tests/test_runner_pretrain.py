"""Functional predictor pre-training (the fast-forward substitute)."""

from repro import ProcessorConfig, Scheme
from repro.runner import run_spec


class TestPretraining:
    def test_pretrain_cuts_mispredicts(self):
        config = ProcessorConfig(scheme=Scheme.BASE)
        cold = run_spec("libquantum", config, instructions=1200, warmup=0,
                        pretrain_ops=0)
        warm = run_spec("libquantum", config, instructions=1200, warmup=0)
        cold_rate = cold.count("core.branch_mispredicts") / max(
            cold.count("core.branches_resolved"), 1
        )
        warm_rate = warm.count("core.branch_mispredicts") / max(
            warm.count("core.branches_resolved"), 1
        )
        assert warm_rate < cold_rate / 2

    def test_pretrain_preserves_committed_stream(self):
        """Pre-training must not consume the core's own trace."""
        config = ProcessorConfig(scheme=Scheme.BASE)
        a = run_spec("hmmer", config, instructions=800, warmup=0,
                     pretrain_ops=0)
        b = run_spec("hmmer", config, instructions=800, warmup=0,
                     pretrain_ops=10_000)
        assert a.instructions == b.instructions == 800
        # Same memory side effects either way (same committed stream).
        assert a.count("core.stores_performed") == b.count(
            "core.stores_performed"
        )

    def test_pretrain_resets_predictor_stats(self):
        config = ProcessorConfig(scheme=Scheme.BASE)
        result = run_spec("hmmer", config, instructions=600, warmup=0)
        core = result.cores[0]
        # Lookups counted during measurement only are bounded by the
        # branches actually dispatched (incl. squashed re-dispatches).
        assert core.predictor.stat_lookups <= 600 * 2
