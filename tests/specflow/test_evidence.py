"""Dynamic cross-validation of the static verdicts.

Each PoC runs on the live simulator twice with different secrets while
a probe on the core's load-issue path records the cache-line footprint
of every hypothetically-unsafe access.  SAFE PCs must have
secret-independent footprints; TRANSMIT PCs must differ (the positive
control proving the probe actually sees the channel)."""

from repro.specflow.evidence import gather_evidence


def test_dynamic_evidence_agrees_with_static_verdicts():
    outcomes = gather_evidence()
    assert outcomes, "no attack programs to check"
    for outcome in outcomes:
        assert outcome.ok, (outcome.program, outcome.violations)

    by_name = {o.program: o for o in outcomes}
    # every futuristic transmitter was exercised as a positive control
    assert by_name["spectre_v1"].transmit_pcs_checked
    assert by_name["meltdown_style"].transmit_pcs_checked
    assert by_name["ssb"].transmit_pcs_checked
    # and the SAFE side is not vacuous either
    assert any(o.safe_pcs_checked for o in outcomes)
