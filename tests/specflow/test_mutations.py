"""The seeded analysis mutations must flip SAFE -> TRANSMIT.

These are the analyzer's own mutation tests: a dropped fence and a
weakened bounds guard.  An analyzer that passed the corpus oracle but
missed these would be blind to the *absence* of protection.
"""

import pytest

from repro.specflow.mutations import MUTATIONS, check_all, check_mutation


@pytest.mark.parametrize("mutation", MUTATIONS, ids=[m.name for m in MUTATIONS])
def test_mutation_flips(mutation):
    outcome = check_mutation(mutation)
    assert outcome.baseline_class == "SAFE", mutation.name
    assert outcome.mutant_class == "TRANSMIT", mutation.name
    assert outcome.flipped
    # the flip comes with a counterexample chain ending in the claim
    assert outcome.witness
    assert outcome.witness[-1]["note"].startswith("transmits")


def test_check_all_covers_the_registry():
    outcomes = check_all()
    assert [o.mutation.name for o in outcomes] == [m.name for m in MUTATIONS]
    assert all(o.flipped for o in outcomes)
