"""Analyzer verdicts against ground truth.

The attack corpus is the oracle: every PoC recovers its secret at
runtime under Base, so the PCs it leaks through are *provably*
transmitters, and each PoC module declares them per attack model.
"""

import pytest

from repro.cpu import isa
from repro.specflow import (
    SpecProgram,
    all_programs,
    analyze_program,
    attack_programs,
    protected_pcs,
    workload_programs,
)

ALL = all_programs()


@pytest.mark.parametrize("model", ["spectre", "futuristic"])
@pytest.mark.parametrize("prog", ALL, ids=[p.name for p in ALL])
def test_oracle_classification(prog, model):
    report = analyze_program(prog, model=model)
    want = tuple(sorted(prog.expected_transmit.get(model, ())))
    assert tuple(sorted(report.pcs("TRANSMIT"))) == want
    assert report.pcs("UNKNOWN") == ()


def test_every_poc_transmits_under_futuristic():
    # the whole point of the corpus: each attack has a transmitter the
    # futuristic model must see (spectre-model coverage is narrower)
    for prog in attack_programs():
        report = analyze_program(prog, model="futuristic")
        assert report.summary["TRANSMIT"] >= 1, prog.name


def test_workloads_are_all_safe():
    for prog in workload_programs():
        report = analyze_program(prog, model="futuristic")
        assert report.summary["TRANSMIT"] == 0
        assert report.summary["UNKNOWN"] == 0
        assert report.summary["SAFE"] > 0


def test_spectre_v1_witness_chain():
    (prog,) = [p for p in attack_programs() if p.name == "spectre_v1"]
    report = analyze_program(prog, model="futuristic")
    rep = report.load_at(0x7020)
    assert rep.classification == "TRANSMIT"
    assert all(t.startswith("secret@") for t in rep.taints)
    # the chain starts at the secret read and ends at the transmit claim
    assert "taint source" in rep.witness[0]["note"]
    assert rep.witness[-1]["note"].startswith("transmits")
    assert rep.shadow["kind"] == "branch"
    # protected_pcs is exactly the non-SAFE set
    assert protected_pcs(report) == frozenset({0x7020})


def test_spectre_model_ignores_exception_shadows():
    (prog,) = [p for p in attack_programs() if p.name == "meltdown_style"]
    spectre = analyze_program(prog, model="spectre")
    futuristic = analyze_program(prog, model="futuristic")
    assert spectre.pcs("TRANSMIT") == ()
    assert futuristic.pcs("TRANSMIT") == (0x900C,)


def test_unmodelable_addr_fn_is_unknown_not_safe():
    table = list(range(256))

    def build():
        branch = isa.branch(pc=0x100, taken=True)
        access = isa.load(pc=0x110, addr=0x5000, size=1, dst="v")
        escape = isa.load(
            pc=0x120, size=1, deps=(0,),
            # host-side table lookup: taint cannot be tracked through it
            addr_fn=lambda env: 0x9000 + table[env.get("v", 0)],
        )
        return [branch], {branch.uid: [access, escape]}

    prog = SpecProgram(
        "escape", build, secret_ranges=((0x5000, 0x5001),)
    )
    report = analyze_program(prog, model="futuristic")
    rep = report.load_at(0x120)
    assert rep.classification == "UNKNOWN"
    assert rep.reason
    # imprecision is never silently SAFE: the PC lands in the protected set
    assert 0x120 in protected_pcs(report)


def test_uid_reset_makes_builds_reproducible():
    (prog,) = [p for p in attack_programs() if p.name == "spectre_v1"]
    ops_a, wrong_a = prog.build()
    ops_b, wrong_b = prog.build()
    assert [op.uid for op in ops_a] == [op.uid for op in ops_b]
    assert sorted(wrong_a) == sorted(wrong_b)

    isa.reset_uids(100)
    assert isa.load(pc=0).uid == 100
    isa.reset_uids()
    assert isa.load(pc=0).uid == 0
