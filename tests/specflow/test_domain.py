"""The abstract taint domain: propagation, witnesses, and the
operations it must *refuse* to model (AbstractionError, never a wrong
answer)."""

import pytest

from repro.specflow import AbstractValue, TaintEnv
from repro.specflow.domain import AbstractionError


def tainted(value, label="secret@0x100", step=("src",)):
    return AbstractValue(value, {label}, (dict(at="x", note=s) for s in step))


class TestPropagation:
    def test_clean_arithmetic_stays_clean(self):
        v = AbstractValue(6) * 7 + 1
        assert v.value == 43
        assert not v.tainted
        assert v.chain == ()

    def test_taint_flows_through_every_operator(self):
        t = tainted(5)
        for expr, expected in [
            (t + 3, 8),
            (3 + t, 8),
            (t - 1, 4),
            (10 - t, 5),
            (t * 4, 20),
            (t // 2, 2),
            (t % 3, 2),
            (t & 0xFF, 5),
            (t | 8, 13),
            (t ^ 1, 4),
            (t << 2, 20),
            (t >> 1, 2),
            (-t, -5),
            (~t, -6),
        ]:
            assert expr.value == expected
            assert expr.taints == {"secret@0x100"}

    def test_taint_unions_across_operands(self):
        v = tainted(1, "a") + tainted(2, "b")
        assert v.taints == {"a", "b"}

    def test_left_tainted_chain_wins(self):
        left = tainted(1, step=("L",))
        right = tainted(2, step=("R",))
        assert (left + right).chain == left.chain
        # a clean left operand defers to the tainted right's chain
        assert (AbstractValue(3) + right).chain == right.chain


class TestRefusals:
    def test_lift_rejects_non_integers(self):
        with pytest.raises(AbstractionError):
            AbstractValue(1) + 1.5
        with pytest.raises(AbstractionError):
            AbstractValue(1) + True

    def test_division_by_abstract_zero(self):
        with pytest.raises(AbstractionError):
            AbstractValue(4) // AbstractValue(0)
        with pytest.raises(AbstractionError):
            AbstractValue(4) % AbstractValue(0)

    def test_host_side_escapes_raise(self):
        table = list(range(8))
        with pytest.raises(AbstractionError):
            table[tainted(3)]  # __index__
        with pytest.raises(AbstractionError):
            bool(tainted(1))  # host-side branch
        with pytest.raises(AbstractionError):
            tainted(1) == 1  # comparison


class TestTaintEnv:
    def test_get_lifts_the_default(self):
        env = TaintEnv()
        v = env.get("v", 7)
        assert isinstance(v, AbstractValue)
        assert v.value == 7 and not v.tainted

    def test_getitem_of_unwritten_register_raises(self):
        with pytest.raises(AbstractionError):
            TaintEnv()["v"]

    def test_write_and_contains(self):
        env = TaintEnv()
        env.write("v", tainted(9))
        assert "v" in env
        assert env["v"].taints == {"secret@0x100"}
        env.write("w", 3)  # plain ints are lifted
        assert env["w"].value == 3

    def test_snapshot_is_independent(self):
        env = TaintEnv()
        env.write("v", 1)
        snap = env.snapshot()
        snap.write("v", tainted(2))
        assert not env["v"].tainted
        assert snap["v"].tainted

    def test_unknown_operations_surface(self):
        with pytest.raises(AbstractionError):
            TaintEnv().items()
