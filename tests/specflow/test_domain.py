"""The abstract taint domain: propagation, witnesses, and the
operations it must *refuse* to model (AbstractionError, never a wrong
answer)."""

import pytest

from repro.specflow import AbstractValue, TaintEnv
from repro.specflow.domain import (
    AbstractionError,
    PathLimitError,
    ValueSet,
    explore_paths,
)


def tainted(value, label="secret@0x100", step=("src",)):
    return AbstractValue(value, {label}, (dict(at="x", note=s) for s in step))


class TestPropagation:
    def test_clean_arithmetic_stays_clean(self):
        v = AbstractValue(6) * 7 + 1
        assert v.value == 43
        assert not v.tainted
        assert v.chain == ()

    def test_taint_flows_through_every_operator(self):
        t = tainted(5)
        for expr, expected in [
            (t + 3, 8),
            (3 + t, 8),
            (t - 1, 4),
            (10 - t, 5),
            (t * 4, 20),
            (t // 2, 2),
            (t % 3, 2),
            (t & 0xFF, 5),
            (t | 8, 13),
            (t ^ 1, 4),
            (t << 2, 20),
            (t >> 1, 2),
            (-t, -5),
            (~t, -6),
        ]:
            assert expr.value == expected
            assert expr.taints == {"secret@0x100"}

    def test_taint_unions_across_operands(self):
        v = tainted(1, "a") + tainted(2, "b")
        assert v.taints == {"a", "b"}

    def test_left_tainted_chain_wins(self):
        left = tainted(1, step=("L",))
        right = tainted(2, step=("R",))
        assert (left + right).chain == left.chain
        # a clean left operand defers to the tainted right's chain
        assert (AbstractValue(3) + right).chain == right.chain


class TestRefusals:
    def test_lift_rejects_non_integers(self):
        with pytest.raises(AbstractionError):
            AbstractValue(1) + 1.5
        with pytest.raises(AbstractionError):
            AbstractValue(1) + True

    def test_division_by_abstract_zero(self):
        with pytest.raises(AbstractionError):
            AbstractValue(4) // AbstractValue(0)
        with pytest.raises(AbstractionError):
            AbstractValue(4) % AbstractValue(0)

    def test_host_side_escapes_raise(self):
        # An unbounded secret-derived value — the shape every load
        # result has — may never decide host-side control flow outside
        # a fork oracle (see explore_paths).
        t = AbstractValue(3, {"secret@0x100"}, (), vset=None,
                          concrete=False)
        table = list(range(8))
        with pytest.raises(AbstractionError):
            table[t]  # __index__
        with pytest.raises(AbstractionError):
            bool(t)  # host-side branch
        with pytest.raises(AbstractionError):
            bool(t == 1)  # comparison escaping into a branch

    def test_index_refuses_even_when_bounded(self):
        # Host-side indexing leaks the whole value; a bounded vset
        # does not make it modelable.
        with pytest.raises(AbstractionError):
            list(range(8))[tainted(3)]

    def test_lattice_decisive_comparisons_stay_concrete(self):
        # vset point(5) proves 5 < 10 in every execution: no fork
        # needed, the comparison is a plain bool even though tainted.
        assert (tainted(5) < 10) is True
        assert (tainted(5) >= 10) is False
        assert bool(tainted(5))  # lo > 0: provably truthy

    def test_tainted_values_are_never_concrete(self):
        # concrete=True is ignored for secret-derived values — they
        # must fork, not short-circuit, in truth tests.
        t = AbstractValue(1, {"secret@0x100"}, (), concrete=True)
        assert not t.concrete


def _members(vs, cap=4096):
    """Every concrete value a small ValueSet admits (lattice semantics:
    lo <= v <= hi and v & ~bits == 0)."""
    assert vs.hi <= cap, "test set too large to enumerate"
    return {
        v for v in range(vs.lo, vs.hi + 1) if v & ~vs.bits == 0
    }


class TestValueSet:
    def test_point_and_singleton(self):
        p = ValueSet.point(100)
        assert p.singleton and p.lo == p.hi == 100
        assert ValueSet.point(-1) is None

    def test_top_bytes_covers_the_load_width(self):
        top = ValueSet.top_bytes(2)
        assert (top.lo, top.hi, top.bits) == (0, 0xFFFF, 0xFFFF)

    def test_malformed_interval_rejected(self):
        with pytest.raises(ValueError):
            ValueSet(5, 4)
        with pytest.raises(ValueError):
            ValueSet(-1, 4)

    def test_hull_joins_and_top_absorbs(self):
        h = ValueSet.hull(ValueSet.point(8), ValueSet.point(64))
        assert (h.lo, h.hi) == (8, 64)
        assert h.bits & 8 and h.bits & 64
        assert ValueSet.hull(None, ValueSet.point(1)) is None
        assert ValueSet.hull(ValueSet.point(1), None) is None

    @pytest.mark.parametrize(
        "op,a,b",
        [
            ("add", ValueSet(0, 7), ValueSet(0, 56, 0x38)),
            ("add", ValueSet(3, 9), ValueSet(1, 5)),  # carrying
            ("sub", ValueSet(8, 12), ValueSet(1, 3)),
            ("mul", ValueSet(0, 255), ValueSet.point(64)),
            ("mul", ValueSet(1, 5), ValueSet(2, 3)),
            ("and", ValueSet(0, 255), ValueSet.point(0xF0)),
            ("or", ValueSet(0, 15), ValueSet.point(0x10)),
            ("xor", ValueSet(0, 15), ValueSet(0, 3)),
            ("shl", ValueSet(0, 15), ValueSet.point(4)),
            ("shr", ValueSet(0, 255), ValueSet.point(4)),
            ("mod", ValueSet(0, 1000), ValueSet.point(64)),
            ("floordiv", ValueSet(0, 255), ValueSet.point(16)),
        ],
    )
    def test_transfer_ops_are_sound(self, op, a, b):
        """Every concrete pair's result is contained in the abstract
        result — the property the SAFE verdicts ultimately rest on."""
        from repro.specflow.domain import _VSET_OPS

        py = {
            "add": lambda x, y: x + y,
            "sub": lambda x, y: x - y,
            "mul": lambda x, y: x * y,
            "and": lambda x, y: x & y,
            "or": lambda x, y: x | y,
            "xor": lambda x, y: x ^ y,
            "shl": lambda x, y: x << y,
            "shr": lambda x, y: x >> y,
            "mod": lambda x, y: x % y,
            "floordiv": lambda x, y: x // y,
        }[op]
        out = _VSET_OPS[op](a, b)
        assert out is not None
        got = {
            py(x, y) for x in _members(a) for y in _members(b)
        }
        members = _members(out, cap=1 << 16)
        assert got <= members, (op, sorted(got - members)[:5])

    def test_mask_kills_the_value(self):
        # the masked-dead discharge: (secret & 0) leaves the point set
        from repro.specflow.domain import _VSET_OPS

        out = _VSET_OPS["and"](ValueSet.top_bytes(1), ValueSet.point(0))
        assert out.singleton and out.lo == 0

    def test_carry_free_add_keeps_the_bit_mask(self):
        from repro.specflow.domain import _VSET_OPS

        base = ValueSet.point(0xB00000)
        offset = ValueSet(0, 0x38, 0x38)  # line-aligned secret offset
        out = _VSET_OPS["add"](base, offset)
        assert (out.lo, out.hi) == (0xB00000, 0xB00038)
        assert out.bits == 0xB00000 | 0x38

    def test_power_of_two_scale_shifts_the_mask(self):
        from repro.specflow.domain import _VSET_OPS

        out = _VSET_OPS["mul"](ValueSet(0, 255), ValueSet.point(64))
        assert (out.lo, out.hi) == (0, 255 * 64)
        assert out.bits == 0xFF * 64

    def test_unsupported_shapes_go_to_top(self):
        from repro.specflow.domain import _VSET_OPS

        # negative-capable subtraction and variable shifts are top
        assert _VSET_OPS["sub"](ValueSet(0, 3), ValueSet(0, 5)) is None
        assert _VSET_OPS["shl"](ValueSet(0, 3), ValueSet(0, 2)) is None
        assert _VSET_OPS["add"](None, ValueSet.point(1)) is None


def _secretish(value=5):
    """An unbounded tainted value, as a transient load produces."""
    return AbstractValue(
        value, {"secret@0x100"}, (), vset=ValueSet.top_bytes(1),
        concrete=False,
    )


class TestPathSplitting:
    def test_one_comparison_forks_two_leaves_false_first(self):
        env = TaintEnv()
        env.write("v", _secretish())

        def fn(env):
            return 10 if env.get("v", 0) > 128 else 20

        leaves = explore_paths(fn, env)
        assert [leaf.decisions for leaf in leaves] == [(False,), (True,)]
        assert [leaf.result for leaf in leaves] == [20, 10]

    def test_leaves_carry_the_condition_taint(self):
        env = TaintEnv()
        env.write("v", _secretish())

        def fn(env):
            return 1 if env.get("v", 0) > 128 else 0

        for leaf in explore_paths(fn, env):
            assert leaf.cond_taints == {"secret@0x100"}

    def test_clean_conditions_do_not_taint_the_leaf(self):
        env = TaintEnv()
        env.write("v", AbstractValue(5, vset=ValueSet(0, 255),
                                     concrete=False))

        def fn(env):
            return 1 if env.get("v", 0) > 128 else 0

        leaves = explore_paths(fn, env)
        assert len(leaves) == 2
        assert all(leaf.cond_taints == frozenset() for leaf in leaves)

    def test_nested_comparisons_enumerate_all_vectors(self):
        env = TaintEnv()
        env.write("v", _secretish())

        def fn(env):
            v = env.get("v", 0)
            hi = 2 if v > 128 else 0
            lo = 1 if (v & 1) == 1 else 0
            return hi + lo

        leaves = explore_paths(fn, env)
        assert sorted(leaf.result for leaf in leaves) == [0, 1, 2, 3]
        assert len({leaf.decisions for leaf in leaves}) == 4

    def test_max_paths_is_enforced(self):
        env = TaintEnv()
        env.write("v", _secretish())

        def fn(env):
            return 1 if env.get("v", 0) > 128 else 0

        with pytest.raises(PathLimitError):
            explore_paths(fn, env, max_paths=1)

    def test_runaway_decision_chains_hit_the_depth_cap(self):
        env = TaintEnv()
        env.write("v", _secretish())

        def fn(env):
            v = env.get("v", 0)
            return sum(1 for i in range(64) if v > i)

        with pytest.raises(PathLimitError):
            explore_paths(fn, env, max_paths=10 ** 6)

    def test_single_path_follows_only_false(self):
        env = TaintEnv()
        env.write("v", _secretish())

        def fn(env):
            v = env.get("v", 0)
            hi = 2 if v > 128 else 0
            lo = 1 if (v & 1) == 1 else 0
            return hi + lo

        leaves = explore_paths(fn, env, single_path=True)
        assert [leaf.result for leaf in leaves] == [0]

    def test_oracle_is_restored_after_exploration(self):
        env = TaintEnv()
        env.write("v", _secretish())
        explore_paths(lambda env: 1 if env.get("v", 0) > 1 else 0, env)
        # outside exploration, abstract truth tests must refuse again
        with pytest.raises(AbstractionError):
            bool(_secretish() > 128)

    def test_lambda_errors_propagate(self):
        env = TaintEnv()
        env.write("v", _secretish())

        def fn(env):
            if env.get("v", 0) > 128:
                raise ZeroDivisionError("leaf blew up")
            return 0

        with pytest.raises(ZeroDivisionError):
            explore_paths(fn, env)


class TestTaintEnv:
    def test_get_lifts_the_default(self):
        env = TaintEnv()
        v = env.get("v", 7)
        assert isinstance(v, AbstractValue)
        assert v.value == 7 and not v.tainted

    def test_getitem_of_unwritten_register_raises(self):
        with pytest.raises(AbstractionError):
            TaintEnv()["v"]

    def test_write_and_contains(self):
        env = TaintEnv()
        env.write("v", tainted(9))
        assert "v" in env
        assert env["v"].taints == {"secret@0x100"}
        env.write("w", 3)  # plain ints are lifted
        assert env["w"].value == 3

    def test_snapshot_is_independent(self):
        env = TaintEnv()
        env.write("v", 1)
        snap = env.snapshot()
        snap.write("v", tainted(2))
        assert not env["v"].tainted
        assert snap["v"].tainted

    def test_unknown_operations_surface(self):
        with pytest.raises(AbstractionError):
            TaintEnv().items()
