"""Per-reason UNKNOWN accounting: every UNKNOWN verdict carries a
machine-readable ``reason_kind`` and the report summary splits the
counts, so downstream consumers (the fuzz campaign) aggregate kinds
instead of parsing free-text reasons."""

from repro.cpu.isa import MicroOp, OpKind
from repro.specflow import (
    SAFE,
    UNKNOWN,
    UNKNOWN_REASON_KINDS,
    SpecProgram,
    analyze_program,
    analyze_programs,
)
from repro.specflow.analyzer import (
    REASON_ABSTRACTION_ERROR,
    REASON_UNMODELED_OP,
    REASON_WINDOW_EXHAUSTED,
)

_SECRET = 0x2_4000


def _shadowed(arm_loads):
    """A flushed-guard branch whose arm is ``arm_loads``."""
    def build():
        guard = MicroOp(OpKind.LOAD, pc=0x100, addr=0x1000, size=1,
                        dst="limit")
        branch = MicroOp(OpKind.BRANCH, pc=0x110, taken=True, deps=(1,))
        return [guard, branch], {branch.uid: arm_loads()}

    return SpecProgram(
        name="unknown-reasons",
        builder=build,
        secret_ranges=((_SECRET, _SECRET + 8),),
        description="per-reason UNKNOWN fixtures",
    )


def test_abstraction_error_reason_kind():
    prog = _shadowed(lambda: [
        MicroOp(OpKind.LOAD, pc=0x200, size=1,
                # tainted-by-default AbstractValue used as a host-side
                # index -> AbstractionError inside the abstract domain
                addr_fn=lambda env: [0x1000, 0x2000][env.get("x", 0)]),
    ])
    report = analyze_program(prog)
    rep = next(r for r in report.loads if r.pc == 0x200)
    assert rep.classification == UNKNOWN
    assert rep.reason_kind == REASON_ABSTRACTION_ERROR
    assert rep.to_dict()["reason_kind"] == REASON_ABSTRACTION_ERROR


def test_unmodeled_op_reason_kind():
    prog = _shadowed(lambda: [
        MicroOp(OpKind.LOAD, pc=0x200, size=1,
                addr_fn=lambda env: 1 // 0),
    ])
    report = analyze_program(prog)
    rep = next(r for r in report.loads if r.pc == 0x200)
    assert rep.classification == UNKNOWN
    assert rep.reason_kind == REASON_UNMODELED_OP


def test_window_exhausted_reason_kind():
    def arm():
        return [
            MicroOp(OpKind.LOAD, pc=0x200 + 0x10 * k, addr=0x3000, size=1)
            for k in range(4)
        ]

    report = analyze_programs([_shadowed(arm)], window=2)[0]
    beyond = [r for r in report.loads if r.pc >= 0x220]
    assert beyond
    assert all(r.classification == UNKNOWN for r in beyond)
    assert all(r.reason_kind == REASON_WINDOW_EXHAUSTED for r in beyond)


def test_summary_splits_unknown_by_reason():
    def arm():
        return [
            MicroOp(OpKind.LOAD, pc=0x200, size=1,
                    addr_fn=lambda env: [0][env.get("x", 0)]),
            MicroOp(OpKind.LOAD, pc=0x210, size=1,
                    addr_fn=lambda env: 1 // 0),
            MicroOp(OpKind.LOAD, pc=0x220, addr=0x3000, size=1),
        ]

    report = analyze_programs([_shadowed(arm)], window=2)[0]
    reasons = report.summary["unknown_reasons"]
    assert set(reasons) == set(UNKNOWN_REASON_KINDS)
    assert reasons[REASON_ABSTRACTION_ERROR] == 1
    assert reasons[REASON_UNMODELED_OP] == 1
    assert reasons[REASON_WINDOW_EXHAUSTED] == 1
    assert report.summary[UNKNOWN] == 3


def test_safe_loads_carry_no_reason_kind():
    prog = _shadowed(lambda: [
        MicroOp(OpKind.LOAD, pc=0x200, addr=0x3000, size=1),
    ])
    report = analyze_program(prog)
    rep = next(r for r in report.loads if r.pc == 0x100)
    assert rep.classification == SAFE
    assert "reason_kind" not in rep.to_dict()


def test_analyze_programs_accepts_an_analyzer_override():
    from repro.specflow.mutations import make_weakened_analyzer

    def arm():
        pads = [MicroOp(OpKind.ALU, pc=0x180 + 0x10 * k) for k in range(3)]
        return pads + [
            MicroOp(OpKind.LOAD, pc=0x200, addr=_SECRET, size=1, dst="v"),
            MicroOp(OpKind.LOAD, pc=0x210, size=1, deps=(1,),
                    addr_fn=lambda env: 0x10_0000 + 64 * env.get("v", 0)),
        ]

    prog = _shadowed(arm)
    strong = analyze_programs([prog])[0]
    weak = analyze_programs(
        [prog],
        analyzer=make_weakened_analyzer("short_window"),
    )[0]
    assert strong.summary[UNKNOWN] == 0
    assert weak.summary["unknown_reasons"][
        REASON_WINDOW_EXHAUSTED
    ] >= 1
