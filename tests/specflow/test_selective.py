"""Acceptance for the closed loop: IS-Sel, the scheme that protects
only the PCs specflow could not prove harmless.

Two properties, both required:

* security — every attack PoC is defeated, *including* SSB and the
  exception family that IS-Spectre does not block (the analysis runs
  under the futuristic model, so their transmitters are in the
  protected set);
* performance — on workloads (which analyze all-SAFE) IS-Sel costs no
  more than IS-Spectre; in fact it matches Base cycle-for-cycle, since
  no protected PC ever appears in a workload trace.
"""

import pytest

from repro.configs import ProcessorConfig, Scheme
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.selective import compute_protected_pcs
from repro.runner import run_spec


@pytest.fixture(scope="module")
def protected():
    return compute_protected_pcs()


def test_protected_set_is_the_attack_transmitters(protected):
    # the workload programs contribute nothing: all their loads are SAFE
    assert protected == frozenset({0x7020, 0x7520, 0x800C, 0x900C})


class TestSecurity:
    def _config(self, protected):
        return ProcessorConfig(scheme=Scheme.SELECTIVE,
                               protected_pcs=protected)

    def test_spectre_v1_defeated(self, protected):
        from repro.security.spectre_v1 import run_spectre_v1

        _, recovered = run_spectre_v1(self._config(protected), secret=84)
        assert recovered is None

    def test_ssb_defeated_unlike_is_spectre(self, protected):
        from repro.security.ssb import run_ssb_attack

        # IS-Spectre does NOT block SSB; the analysis-guided scheme must,
        # because it flags the transmitter under the futuristic model
        _, leaked = run_ssb_attack(
            ProcessorConfig(scheme=Scheme.IS_SPECTRE), secret=113
        )
        assert leaked == 113
        _, recovered = run_ssb_attack(self._config(protected), secret=113)
        assert recovered is None

    def test_meltdown_style_defeated(self, protected):
        from repro.security.meltdown_style import run_meltdown_style_attack

        _, recovered = run_meltdown_style_attack(
            self._config(protected), secret=199
        )
        assert recovered is None

    def test_cross_core_defeated(self, protected):
        from repro.security.cross_core import run_cross_core_attack

        _, recovered = run_cross_core_attack(
            self._config(protected), secret=37
        )
        assert recovered is None

    @pytest.mark.parametrize(
        "variant", ["meltdown", "l1tf", "lazy_fp", "rogue_sysreg"]
    )
    def test_exception_family_defeated(self, protected, variant):
        from repro.security.exception_attacks import run_exception_attack

        _, recovered = run_exception_attack(
            self._config(protected), variant=variant, secret=177
        )
        assert recovered is None


class TestPerformance:
    @pytest.mark.parametrize("app", ["mcf", "sjeng"])
    def test_overhead_at_most_is_spectre(self, protected, app):
        cycles = {}
        for scheme, pcs in [
            (Scheme.BASE, frozenset()),
            (Scheme.IS_SPECTRE, frozenset()),
            (Scheme.SELECTIVE, protected),
        ]:
            config = ProcessorConfig(scheme=scheme, protected_pcs=pcs)
            cycles[scheme] = run_spec(app, config, instructions=2000).cycles
        assert cycles[Scheme.SELECTIVE] <= cycles[Scheme.IS_SPECTRE]
        # no protected PC appears in any workload trace, so the selective
        # machine is cycle-identical to Base, not merely close
        assert cycles[Scheme.SELECTIVE] == cycles[Scheme.BASE]


def test_experiment_is_registered():
    assert "selective" in ALL_EXPERIMENTS
