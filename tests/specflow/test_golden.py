"""Golden-file determinism: the per-PoC specflow reports are
bit-identical across interpreter processes with different
PYTHONHASHSEED values, and match the checked-in golden file — so any
report change shows up as a reviewable diff, and no verdict can ride
on hash order."""

import json
import os
import subprocess
import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parents[2] / "src")
_GOLDEN = Path(__file__).resolve().parent / "golden" / "attack_reports.json"

_DUMP_SCRIPT = """
import json, sys
from repro.specflow import analyze_program, attack_programs

payload = {
    model: [analyze_program(p, model=model).to_dict()
            for p in attack_programs()]
    for model in ("spectre", "futuristic")
}
json.dump(payload, sys.stdout, indent=2, sort_keys=True)
sys.stdout.write("\\n")
"""


def _dump_reports(hashseed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = _SRC
    proc = subprocess.run(
        [sys.executable, "-c", _DUMP_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_reports_bit_identical_across_hash_seeds_and_match_golden():
    a = _dump_reports(1)
    b = _dump_reports(424242)
    assert a == b
    assert a == _GOLDEN.read_text()


def test_golden_file_covers_every_poc_with_the_expected_verdicts():
    # guard against the golden file going stale relative to the corpus
    from repro.specflow import attack_programs

    payload = json.loads(_GOLDEN.read_text())
    for model in ("spectre", "futuristic"):
        by_name = {r["program"]: r for r in payload[model]}
        for prog in attack_programs():
            report = by_name[prog.name]
            got = sorted(
                load["pc"] for load in report["loads"]
                if load["classification"] == "TRANSMIT"
            )
            want = sorted(
                f"0x{pc:x}" for pc in prog.expected_transmit.get(model, ())
            )
            assert got == want, (model, prog.name)


def test_cli_json_is_deterministic():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    outputs = []
    for hashseed in (3, 77777):
        env["PYTHONHASHSEED"] = str(hashseed)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.staticcheck", "specflow",
             "--program", "spectre_v1", "--json"],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
    payload = json.loads(outputs[0])
    assert payload["programs"][0]["program"] == "spectre_v1"
