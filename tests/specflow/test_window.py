"""WindowModel timing bounds and the SAFE discharge-proof contents.

The squash-window discharge is the one v2 layer whose soundness rests on
a *machine* argument (resolve-before-issue) rather than a lattice one,
so its bounds are pinned exactly: any change to the slop constants or
the chase logic must show up here before the fuzz campaign has to find
it the hard way.
"""

import pytest

from repro.cpu.isa import MicroOp, OpKind
from repro.specflow.analyzer import SAFE, analyze_program
from repro.specflow.programs import hardened_programs
from repro.specflow.window import WindowModel

WARM_GUARD = 0xA000_0
COLD_GUARD = 0xA100_0

SETUP = {
    "secret_addr": 0xA400_0,
    "secret_size": 1,
    "writes": [],
    "warm": [WARM_GUARD],
    "flush": [COLD_GUARD],
}


def _guarded_ops(guard_addr):
    guard = MicroOp(OpKind.LOAD, pc=0x100, addr=guard_addr, size=1,
                    dst="limit")
    branch = MicroOp(OpKind.BRANCH, pc=0x110, taken=True, deps=(1,),
                     latency=2)
    return [guard, branch]


class TestLoadHits:
    def test_warm_unflushed_concrete_load_hits(self):
        wm = WindowModel()
        op = MicroOp(OpKind.LOAD, pc=0x100, addr=WARM_GUARD, size=1)
        assert wm.load_hits(op, SETUP)

    def test_flushed_load_does_not_hit(self):
        wm = WindowModel()
        op = MicroOp(OpKind.LOAD, pc=0x100, addr=COLD_GUARD, size=1)
        assert not wm.load_hits(op, SETUP)

    def test_computed_address_never_hits(self):
        wm = WindowModel()
        op = MicroOp(OpKind.LOAD, pc=0x100,
                     addr_fn=lambda env: WARM_GUARD, size=1)
        assert not wm.load_hits(op, SETUP)

    def test_load_spanning_past_the_warm_line_misses(self):
        wm = WindowModel()
        op = MicroOp(OpKind.LOAD, pc=0x100, addr=WARM_GUARD + 63, size=2)
        assert not wm.load_hits(op, SETUP)


class TestResolveBounds:
    def test_warm_guarded_branch_bound_is_exact(self):
        # guard (idx 0): deps ready at 0 + DISPATCH_SLOP = 3, warm hit
        # adds HIT_UB -> 11; branch (idx 1): max(dispatch 1+3, dep 11)
        # + max(latency 2, 2) + RESOLVE_SLOP = 15.
        wm = WindowModel()
        assert wm.resolve_ub(_guarded_ops(WARM_GUARD), 1, SETUP) == 15

    def test_cold_guard_has_no_bound(self):
        wm = WindowModel()
        assert wm.resolve_ub(_guarded_ops(COLD_GUARD), 1, SETUP) is None

    def test_no_setup_means_no_bound(self):
        wm = WindowModel()
        assert wm.resolve_ub(_guarded_ops(WARM_GUARD), 1, None) is None

    def test_exception_bound_waits_on_every_older_op(self):
        wm = WindowModel()
        ops = [
            MicroOp(OpKind.LOAD, pc=0x100, addr=WARM_GUARD, size=1),
            MicroOp(OpKind.ALU, pc=0x110, latency=4),
            MicroOp(OpKind.EXCEPTION, pc=0x120, latency=1),
        ]
        bound = wm.resolve_ub(ops, 2, SETUP)
        # the ALU at index 1 finishes at 4 (deps) + 4 (latency) = 8; the
        # warm load at 3 + 8 = 11 dominates; + max(1,1) + slop = 14.
        assert bound == 14

    def test_exception_over_a_store_is_unboundable(self):
        wm = WindowModel()
        ops = [
            MicroOp(OpKind.STORE, pc=0x100, addr=WARM_GUARD, size=1),
            MicroOp(OpKind.EXCEPTION, pc=0x110, latency=1),
        ]
        assert wm.resolve_ub(ops, 1, SETUP) is None

    def test_branch_on_a_cold_dependency_is_unboundable(self):
        wm = WindowModel()
        ops = [
            MicroOp(OpKind.LOAD, pc=0x100, addr=COLD_GUARD, size=1,
                    dst="limit"),
            MicroOp(OpKind.BRANCH, pc=0x110, taken=True, deps=(1,),
                    latency=2),
        ]
        assert wm.resolve_ub(ops, 1, SETUP) is None


class TestDischarge:
    def test_discharge_carries_the_bounds(self):
        wm = WindowModel()
        proof = wm.discharge(_guarded_ops(WARM_GUARD), 1, SETUP)
        assert proof == {"resolve_ub": 15, "issue_lb": 60, "margin": 16}

    def test_margin_is_enforced(self):
        # shrink the walk so resolve_ub + MARGIN > issue_lb: 15+16 > 30
        from repro.params import TLBParams

        wm = WindowModel(tlb=TLBParams(walk_latency=30))
        assert wm.discharge(_guarded_ops(WARM_GUARD), 1, SETUP) is None

    def test_unboundable_shadow_never_discharges(self):
        wm = WindowModel()
        assert wm.discharge(_guarded_ops(COLD_GUARD), 1, SETUP) is None


class TestProofContents:
    """The replayable witness a SAFE discharge carries in reports."""

    @staticmethod
    def _proof(program_name):
        prog = {p.name: p for p in hardened_programs()}[program_name]
        report = analyze_program(prog, model="futuristic")
        proofs = {
            f"0x{load.pc:x}": load.proof
            for load in report.loads
            if load.classification == SAFE and load.proof is not None
        }
        assert proofs, report.to_dict()
        return proofs

    def test_squash_window_proof_names_shadow_pages_and_bounds(self):
        proof = self._proof("hardened_warm_window")["0xa510"]
        assert proof["kind"] == "squash-window"
        assert proof["shadow"]["pc"] == "0xa410"
        assert proof["shadow"]["kind"] == "branch"
        assert proof["resolve_ub"] + proof["margin"] <= proof["issue_lb"]
        assert proof["pages"] == ["0xb00", "0xb03"]

    def test_value_killed_proof_names_the_line(self):
        proof = self._proof("hardened_masked")["0xa110"]
        assert proof["kind"] == "value-killed"
        assert proof["lo"] == proof["hi"] == proof["line"] == "0xb00000"

    def test_path_split_collapse_is_value_killed(self):
        proof = self._proof("hardened_branchy")["0xa310"]
        assert proof["kind"] == "value-killed"
        # both select arms land on the 0xb00000 line
        assert proof["line"] == "0xb00000"

    def test_arm_fence_proof_names_the_fence(self):
        from repro.fuzz.generator import build_program

        for index in range(40):
            fp = build_program(0, index)
            if fp.template == "bounds_check_fenced":
                break
        else:  # pragma: no cover - generator regression
            pytest.fail("no bounds_check_fenced draw in 40 programs")
        report = analyze_program(fp.spec_program(), model="futuristic")
        kinds = {
            load.proof["kind"]
            for load in report.loads
            if load.classification == SAFE and load.proof is not None
        }
        assert "arm-fence" in kinds

    def test_proofs_survive_to_dict(self):
        prog = {p.name: p for p in hardened_programs()}["hardened_masked"]
        payload = analyze_program(prog, model="futuristic").to_dict()
        by_pc = {load["pc"]: load for load in payload["loads"]}
        assert by_pc["0xa110"]["proof"]["kind"] == "value-killed"
