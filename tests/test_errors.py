"""Exception hierarchy tests."""

import inspect
import pickle

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ConfigError",
            "SimulationError",
            "ProtocolError",
            "ConsistencyError",
            "WorkloadError",
            "DeadlockError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_protocol_is_simulation_error(self):
        assert issubclass(errors.ProtocolError, errors.SimulationError)

    def test_deadlock_carries_cycle_and_detail(self):
        err = errors.DeadlockError(123, "core0 stuck")
        assert err.cycle == 123
        assert err.detail == "core0 stuck"
        assert "123" in str(err)
        assert "core0 stuck" in str(err)

    def test_catchable_at_boundary(self):
        with pytest.raises(errors.ReproError):
            raise errors.ConfigError("x")


#: One representative instance per error class.  The supervisor ships
#: errors across a worker pipe, so *every* class must pickle round-trip;
#: ``test_every_error_class_is_covered`` fails when a new class is added
#: without a factory here.
ERROR_INSTANCES = {
    errors.ReproError: lambda: errors.ReproError("boom"),
    errors.ConfigError: lambda: errors.ConfigError("bad config"),
    errors.SimulationError: lambda: errors.SimulationError("bad state"),
    errors.ProtocolError: lambda: errors.ProtocolError("MESI broken"),
    errors.ConsistencyError: lambda: errors.ConsistencyError("reordered"),
    errors.WorkloadError: lambda: errors.WorkloadError("bad profile"),
    errors.TransientError: lambda: errors.TransientError("flaky"),
    errors.DeadlockError: lambda: errors.DeadlockError(123, "core0 stuck"),
    errors.SimTimeoutError: lambda: errors.SimTimeoutError(456, "budget"),
    errors.FaultInjectionError: lambda: errors.FaultInjectionError("dropped"),
    errors.WorkerCrashError: lambda: errors.WorkerCrashError(
        "signal", "SIGKILL", worker_id=3, cell_id="spec:mcf:IS-Sp:TSO:s0"
    ),
    errors.SanitizerError: lambda: errors.SanitizerError("invariant"),
    errors.ServiceProtocolError: lambda: errors.ServiceProtocolError(
        "EOF mid-response", host="127.0.0.1", port=8753,
    ),
    errors.InvariantViolation: lambda: errors.InvariantViolation(
        "stale sharer", cycle=99, core_id=1, line_addr=0x2440,
        event="inv", trace=("a", "b"),
    ),
    errors.VisibilityViolation: lambda: errors.VisibilityViolation(
        "USL leaked", cycle=7, core_id=0, line_addr=0x40,
    ),
    errors.CoherenceViolation: lambda: errors.CoherenceViolation(
        "two owners", cycle=8, line_addr=0x80, event="store",
    ),
    errors.StructuralViolation: lambda: errors.StructuralViolation(
        "MSHR leak", cycle=9, core_id=2,
    ),
    errors.ConsistencyViolation: lambda: errors.ConsistencyViolation(
        "wrong value", cycle=10, core_id=3, line_addr=0xC0,
    ),
}


def _all_error_classes():
    return [
        cls
        for _, cls in inspect.getmembers(errors, inspect.isclass)
        if issubclass(cls, errors.ReproError)
    ]


class TestPickleRoundTrip:
    """Cross-process transport: every error class must survive pickling."""

    def test_every_error_class_is_covered(self):
        missing = set(_all_error_classes()) - set(ERROR_INSTANCES)
        assert not missing, (
            f"add ERROR_INSTANCES factories (and pickle support) for: "
            f"{sorted(c.__name__ for c in missing)}"
        )

    @pytest.mark.parametrize(
        "cls", sorted(ERROR_INSTANCES, key=lambda c: c.__name__),
        ids=lambda c: c.__name__,
    )
    def test_round_trip_preserves_type_message_and_context(self, cls):
        original = ERROR_INSTANCES[cls]()
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is cls
        assert str(clone) == str(original)
        for attr in ("cycle", "detail", "core_id", "line_addr", "event",
                     "trace", "reason", "kind", "worker_id", "cell_id"):
            if hasattr(original, attr):
                assert getattr(clone, attr) == getattr(original, attr), attr
        # Violations must still serialize their full report after transport.
        if isinstance(original, errors.InvariantViolation):
            assert clone.to_dict() == original.to_dict()


class TestMainModule:
    def test_banner_runs(self, capsys):
        from repro.__main__ import main

        assert main() == 0
        out = capsys.readouterr().out
        assert "InvisiSpec" in out
