"""Exception hierarchy tests."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ConfigError",
            "SimulationError",
            "ProtocolError",
            "ConsistencyError",
            "WorkloadError",
            "DeadlockError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_protocol_is_simulation_error(self):
        assert issubclass(errors.ProtocolError, errors.SimulationError)

    def test_deadlock_carries_cycle_and_detail(self):
        err = errors.DeadlockError(123, "core0 stuck")
        assert err.cycle == 123
        assert err.detail == "core0 stuck"
        assert "123" in str(err)
        assert "core0 stuck" in str(err)

    def test_catchable_at_boundary(self):
        with pytest.raises(errors.ReproError):
            raise errors.ConfigError("x")


class TestMainModule:
    def test_banner_runs(self, capsys):
        from repro.__main__ import main

        assert main() == 0
        out = capsys.readouterr().out
        assert "InvisiSpec" in out
