"""Stride prefetcher tests."""

from repro.mem.prefetcher import StridePrefetcher


class TestStridePrefetcher:
    def test_learns_constant_stride(self):
        pf = StridePrefetcher(threshold=2, degree=1)
        pc = 0x400
        issued = []
        for i in range(6):
            issued.extend(pf.train(pc, 0x1000 + 64 * i))
        assert issued  # eventually confident
        assert issued[-1] == 0x1000 + 64 * 5 + 64

    def test_degree_controls_count(self):
        pf = StridePrefetcher(threshold=1, degree=3)
        pc = 0x400
        result = []
        for i in range(5):
            result = pf.train(pc, 0x2000 + 128 * i)
        assert len(result) == 3
        assert result == [0x2000 + 128 * 5, 0x2000 + 128 * 6, 0x2000 + 128 * 7]

    def test_random_pattern_stays_quiet(self):
        pf = StridePrefetcher(threshold=2)
        addrs = [0x1000, 0x5040, 0x2380, 0x9000, 0x1140]
        for addr in addrs:
            assert pf.train(0x400, addr) == []

    def test_zero_stride_never_prefetches(self):
        pf = StridePrefetcher(threshold=1)
        for _ in range(5):
            result = pf.train(0x400, 0x3000)
        assert result == []

    def test_table_capacity_evicts(self):
        pf = StridePrefetcher(table_entries=2)
        pf.train(1, 0x100)
        pf.train(2, 0x200)
        pf.train(3, 0x300)  # evicts pc=1
        assert len(pf._table) == 2
