"""Replacement policy tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.mem.replacement import (
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_replacement_policy,
)


class TestLRU:
    def test_victim_is_least_recent(self):
        lru = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            lru.touch(way)
        assert lru.victim() == 0
        lru.touch(0)
        assert lru.victim() == 1

    def test_reset_makes_way_next_victim(self):
        lru = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            lru.touch(way)
        lru.reset(3)
        assert lru.victim() == 3

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=64))
    def test_victim_never_most_recently_touched(self, touches):
        lru = LRUPolicy(8)
        for way in touches:
            lru.touch(way)
        assert lru.victim() != touches[-1]


class TestRandom:
    def test_victim_in_range(self):
        policy = RandomPolicy(8, seed=3)
        for _ in range(100):
            assert 0 <= policy.victim() < 8

    def test_deterministic_for_seed(self):
        a = RandomPolicy(8, seed=5)
        b = RandomPolicy(8, seed=5)
        assert [a.victim() for _ in range(20)] == [b.victim() for _ in range(20)]


class TestTreePLRU:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            TreePLRUPolicy(6)

    def test_victim_in_range(self):
        plru = TreePLRUPolicy(8)
        assert 0 <= plru.victim() < 8

    def test_touched_way_not_immediate_victim(self):
        plru = TreePLRUPolicy(8)
        for way in range(8):
            plru.touch(way)
            assert plru.victim() != way

    def test_reset_points_tree_at_way(self):
        plru = TreePLRUPolicy(8)
        for way in range(8):
            plru.touch(way)
        plru.reset(5)
        assert plru.victim() == 5

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=32))
    def test_plru_never_victimizes_last_touch(self, touches):
        plru = TreePLRUPolicy(4)
        for way in touches:
            plru.touch(way)
        assert plru.victim() != touches[-1]


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LRUPolicy), ("random", RandomPolicy), ("plru", TreePLRUPolicy)],
    )
    def test_factory_builds_each(self, name, cls):
        assert isinstance(make_replacement_policy(name, 8), cls)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ConfigError):
            make_replacement_policy("fifo", 8)
