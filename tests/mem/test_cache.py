"""Cache array tests, including the invisible-lookup property InvisiSpec
relies on (Spec-GetS must not disturb replacement state)."""

import pytest

from repro.coherence.mesi import MESIState
from repro.errors import SimulationError
from repro.mem.cache import CacheArray
from repro.params import CacheParams


def small_cache(ways=2, sets=4, replacement="lru"):
    params = CacheParams(
        size_bytes=64 * ways * sets, line_bytes=64, ways=ways,
        replacement=replacement,
    )
    return CacheArray(params, MESIState.INVALID)


def addr_for_set(cache, set_idx, tag):
    return (tag * cache.num_sets + set_idx) * cache.line_bytes


class TestCacheArray:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.lookup(0x1000) is None
        cache.insert(0x1000, MESIState.EXCLUSIVE)
        entry = cache.lookup(0x1000)
        assert entry is not None
        assert entry.state is MESIState.EXCLUSIVE

    def test_insert_duplicate_raises(self):
        cache = small_cache()
        cache.insert(0x1000, MESIState.SHARED)
        with pytest.raises(SimulationError):
            cache.insert(0x1000, MESIState.SHARED)

    def test_fills_free_ways_before_evicting(self):
        cache = small_cache(ways=2)
        a = addr_for_set(cache, 0, 0)
        b = addr_for_set(cache, 0, 1)
        _, victim_a = cache.insert(a, MESIState.SHARED)
        _, victim_b = cache.insert(b, MESIState.SHARED)
        assert victim_a is None and victim_b is None

    def test_eviction_returns_lru_victim(self):
        cache = small_cache(ways=2)
        a = addr_for_set(cache, 1, 0)
        b = addr_for_set(cache, 1, 1)
        c = addr_for_set(cache, 1, 2)
        cache.insert(a, MESIState.SHARED)
        cache.insert(b, MESIState.SHARED)
        cache.lookup(a)  # a becomes MRU
        _, victim = cache.insert(c, MESIState.SHARED)
        assert victim.line_addr == b

    def test_invisible_lookup_does_not_change_victim(self):
        """A Spec-GetS probe (touch=False) must leave LRU order intact."""
        cache = small_cache(ways=2)
        a = addr_for_set(cache, 2, 0)
        b = addr_for_set(cache, 2, 1)
        c = addr_for_set(cache, 2, 2)
        cache.insert(a, MESIState.SHARED)
        cache.insert(b, MESIState.SHARED)  # a is LRU now
        cache.lookup(a, touch=False)  # invisible: a must stay LRU
        _, victim = cache.insert(c, MESIState.SHARED)
        assert victim.line_addr == a

    def test_invalidate_frees_way(self):
        cache = small_cache(ways=2)
        a = addr_for_set(cache, 0, 0)
        b = addr_for_set(cache, 0, 1)
        c = addr_for_set(cache, 0, 2)
        cache.insert(a, MESIState.SHARED)
        cache.insert(b, MESIState.SHARED)
        assert cache.invalidate(a) is not None
        _, victim = cache.insert(c, MESIState.SHARED)
        assert victim is None  # reused the freed way

    def test_invalidate_absent_returns_none(self):
        cache = small_cache()
        assert cache.invalidate(0x9999_0000) is None

    def test_flush_all_empties(self):
        cache = small_cache()
        cache.insert(0x1000, MESIState.SHARED)
        cache.insert(0x2000, MESIState.MODIFIED)
        flushed = cache.flush_all()
        assert len(flushed) == 2
        assert cache.occupancy == 0

    def test_resident_lines(self):
        cache = small_cache()
        cache.insert(0x1000, MESIState.SHARED)
        cache.insert(0x2000, MESIState.SHARED)
        assert set(cache.resident_lines()) == {0x1000, 0x2000}

    def test_stats_track_hits_misses(self):
        cache = small_cache()
        cache.lookup(0x1000)
        cache.insert(0x1000, MESIState.SHARED)
        cache.lookup(0x1000)
        # The array itself only counts insert-time evictions; hit/miss
        # counters are maintained by the hierarchy.
        assert cache.stat_evictions == 0

    def test_set_mapping_distributes_lines(self):
        cache = small_cache(ways=2, sets=4)
        seen = {cache.set_index(i * 64) for i in range(8)}
        assert seen == {0, 1, 2, 3}

    def test_contains(self):
        cache = small_cache()
        cache.insert(0x40, MESIState.SHARED)
        assert cache.contains(0x40)
        assert not cache.contains(0x80)
