"""Memory image: values, versions, and validation comparison."""

from hypothesis import given, strategies as st

from repro.mem.address import AddressSpace
from repro.mem.memimage import MemoryImage


def make_image():
    return MemoryImage(AddressSpace())


class TestMemoryImage:
    def test_uninitialized_reads_zero(self):
        image = make_image()
        assert image.read(0x1234, 8) == 0

    def test_write_read_roundtrip(self):
        image = make_image()
        image.write(0x1000, 8, 0x1122334455667788)
        assert image.read(0x1000, 8) == 0x1122334455667788

    def test_little_endian_byte_order(self):
        image = make_image()
        image.write(0x1000, 4, 0xAABBCCDD)
        assert image.read_byte(0x1000) == 0xDD
        assert image.read_byte(0x1003) == 0xAA

    def test_partial_overlap_write(self):
        image = make_image()
        image.write(0x1000, 8, 0)
        image.write(0x1004, 2, 0xFFFF)
        assert image.read(0x1000, 8) == 0x0000FFFF00000000

    def test_version_bumps_on_write(self):
        image = make_image()
        line = 0x2000
        v0 = image.line_version(line)
        image.write(line + 8, 8, 7)
        assert image.line_version(line) == v0 + 1

    def test_straddling_write_bumps_both_lines(self):
        image = make_image()
        image.write(0x103C, 8, 1)
        assert image.line_version(0x1000) == 1
        assert image.line_version(0x1040) == 1

    def test_snapshot_captures_bytes_and_version(self):
        image = make_image()
        image.write(0x3000, 8, 0xDEADBEEF)
        data, version = image.snapshot(0x3000, 8)
        assert data == image.read_bytes(0x3000, 8)
        assert version == image.line_version(0x3000)

    def test_matches_value_based(self):
        """ABA writes restore the value; validation passes (Section VI-E4)."""
        image = make_image()
        image.write(0x4000, 8, 111)
        snapshot = image.read_bytes(0x4000, 8)
        image.write(0x4000, 8, 222)
        assert not image.matches(0x4000, 8, snapshot)
        image.write(0x4000, 8, 111)  # ABA
        assert image.matches(0x4000, 8, snapshot)

    def test_write_bytes(self):
        image = make_image()
        image.write_bytes(0x5000, [1, 2, 3])
        assert image.read(0x5000, 3) == 0x030201

    @given(
        addr=st.integers(min_value=0, max_value=1 << 32),
        size=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    def test_roundtrip_any_value(self, addr, size, data):
        value = data.draw(st.integers(min_value=0, max_value=(1 << (8 * size)) - 1))
        image = make_image()
        image.write(addr, size, value)
        assert image.read(addr, size) == value

    @given(st.integers(min_value=0, max_value=1 << 32))
    def test_read_does_not_change_version(self, addr):
        image = make_image()
        image.write(addr, 8, 42)
        before = image.line_version(image.space.line_of(addr))
        image.read(addr, 8)
        image.read_bytes(addr, 8)
        assert image.line_version(image.space.line_of(addr)) == before
