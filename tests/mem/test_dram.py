"""DRAM model tests."""

from repro.mem.dram import DRAMModel


class TestDRAM:
    def test_fixed_latency(self):
        dram = DRAMModel(latency=100, burst_cycles=4)
        assert dram.access(0) == 100

    def test_channel_occupancy_queues_requests(self):
        dram = DRAMModel(latency=100, burst_cycles=4)
        first = dram.access(0)
        second = dram.access(0)
        assert first == 100
        assert second == 104  # queued behind the first burst

    def test_idle_gap_resets_queue(self):
        dram = DRAMModel(latency=100, burst_cycles=4)
        dram.access(0)
        assert dram.access(50) == 150

    def test_queue_cycles_counted(self):
        dram = DRAMModel(latency=100, burst_cycles=4)
        dram.access(0)
        dram.access(0)
        assert dram.stat_queue_cycles == 4

    def test_multi_channel_parallelism(self):
        dram = DRAMModel(latency=100, burst_cycles=4, channels=2)
        a = dram.access(0, line_addr=0)
        b = dram.access(0, line_addr=1)
        assert a == b == 100
