"""Data TLB tests, including the deferred-update property of Section VI-E3."""

from repro.mem.tlb import DataTLB
from repro.params import TLBParams


def make_tlb(entries=4):
    return DataTLB(TLBParams(entries=entries))


class TestDataTLB:
    def test_miss_then_fill_then_hit(self):
        tlb = make_tlb()
        assert not tlb.lookup(5)
        tlb.fill(5)
        assert tlb.lookup(5)
        assert tlb.stat_misses == 1
        assert tlb.stat_hits == 1

    def test_lru_eviction(self):
        tlb = make_tlb(entries=2)
        tlb.fill(1)
        tlb.fill(2)
        tlb.lookup(1)  # 1 becomes MRU
        evicted = tlb.fill(3)
        assert evicted == 2

    def test_invisible_lookup_does_not_touch_lru(self):
        """A USL's TLB hit must not change the replacement order."""
        tlb = make_tlb(entries=2)
        tlb.fill(1)
        tlb.fill(2)  # LRU order: 1, 2
        tlb.lookup(1, update_state=False)  # invisible
        evicted = tlb.fill(3)
        assert evicted == 1  # unchanged order: 1 was still LRU
        assert tlb.stat_deferred_updates == 1

    def test_invisible_lookup_does_not_set_accessed(self):
        tlb = make_tlb()
        tlb.fill(7)
        entry = tlb._map[7]
        entry.accessed = False
        tlb.lookup(7, update_state=False)
        assert not entry.accessed

    def test_touch_applies_deferred_update(self):
        tlb = make_tlb(entries=2)
        tlb.fill(1)
        tlb.fill(2)
        tlb._map[1].accessed = False
        assert tlb.touch(1)
        assert tlb._map[1].accessed
        evicted = tlb.fill(3)
        assert evicted == 2  # touch moved 1 to MRU

    def test_touch_absent_returns_false(self):
        assert not make_tlb().touch(99)

    def test_store_sets_dirty(self):
        tlb = make_tlb()
        tlb.fill(3, is_store=True)
        assert tlb._map[3].dirty

    def test_resident_vpns_order(self):
        tlb = make_tlb()
        tlb.fill(1)
        tlb.fill(2)
        tlb.lookup(1)
        assert tlb.resident_vpns() == [2, 1]

    def test_flush(self):
        tlb = make_tlb()
        tlb.fill(1)
        tlb.flush()
        assert not tlb.contains(1)
