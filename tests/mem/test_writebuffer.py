"""Write buffer: FIFO (TSO) vs relaxed (RC) drain order."""

import pytest

from repro.errors import SimulationError
from repro.mem.address import AddressSpace
from repro.mem.writebuffer import WriteBuffer


class TestFIFOWriteBuffer:
    def test_only_head_drains(self):
        wb = WriteBuffer(4, fifo=True)
        first = wb.push(0x1000, 8, 1, seq=1)
        wb.push(0x2000, 8, 2, seq=2)
        assert wb.drain_candidates() == [first]

    def test_single_outstanding_store(self):
        wb = WriteBuffer(4, fifo=True)
        first = wb.push(0x1000, 8, 1, seq=1)
        wb.push(0x2000, 8, 2, seq=2)
        wb.mark_inflight(first)
        assert wb.drain_candidates() == []

    def test_retire_unblocks_next(self):
        wb = WriteBuffer(4, fifo=True)
        first = wb.push(0x1000, 8, 1, seq=1)
        second = wb.push(0x2000, 8, 2, seq=2)
        wb.mark_inflight(first)
        wb.retire_entry(first)
        assert wb.drain_candidates() == [second]

    def test_overflow_raises(self):
        wb = WriteBuffer(1, fifo=True)
        wb.push(0x1000, 8, 1, seq=1)
        with pytest.raises(SimulationError):
            wb.push(0x2000, 8, 2, seq=2)

    def test_retire_absent_raises(self):
        wb = WriteBuffer(2, fifo=True)
        entry = wb.push(0x1000, 8, 1, seq=1)
        wb.retire_entry(entry)
        with pytest.raises(SimulationError):
            wb.retire_entry(entry)


class TestRelaxedWriteBuffer:
    def test_multiple_candidates(self):
        wb = WriteBuffer(8, fifo=False, max_inflight=4)
        entries = [wb.push(0x1000 * i, 8, i, seq=i) for i in range(1, 4)]
        assert wb.drain_candidates() == entries

    def test_release_waits_for_head(self):
        wb = WriteBuffer(8, fifo=False, max_inflight=4)
        first = wb.push(0x1000, 8, 1, seq=1)
        release = wb.push(0x2000, 8, 2, seq=2, is_release=True)
        assert release not in wb.drain_candidates()
        wb.mark_inflight(first)
        wb.retire_entry(first)
        assert release in wb.drain_candidates()

    def test_max_inflight_respected(self):
        wb = WriteBuffer(8, fifo=False, max_inflight=2)
        entries = [wb.push(0x1000 * i, 8, i, seq=i) for i in range(1, 5)]
        for entry in entries[:2]:
            wb.mark_inflight(entry)
        assert wb.drain_candidates() == []

    def test_same_address_stores_stay_ordered(self):
        """Coherence: even a relaxed buffer may not reorder overlapping
        stores (found by the reference-model differential test)."""
        wb = WriteBuffer(8, fifo=False, max_inflight=4)
        first = wb.push(0x1000, 8, 1, seq=1)
        second = wb.push(0x1000, 8, 2, seq=2)
        third = wb.push(0x2000, 8, 3, seq=3)
        candidates = wb.drain_candidates()
        assert first in candidates
        assert second not in candidates  # must wait for the first
        assert third in candidates  # disjoint address: free to go
        wb.mark_inflight(first)
        assert second not in wb.drain_candidates()  # still blocked
        wb.retire_entry(first)
        assert second in wb.drain_candidates()

    def test_partial_overlap_also_ordered(self):
        wb = WriteBuffer(8, fifo=False, max_inflight=4)
        wb.push(0x1000, 8, 1, seq=1)
        overlapping = wb.push(0x1004, 8, 2, seq=2)
        assert overlapping not in wb.drain_candidates()


class TestForwarding:
    def test_pending_store_to_finds_overlap(self):
        space = AddressSpace()
        wb = WriteBuffer(4, fifo=True)
        wb.push(0x1000, 8, 0xAA, seq=1)
        assert wb.pending_store_to(0x1004, 2, space) is not None
        assert wb.pending_store_to(0x1008, 8, space) is None

    def test_pending_store_returns_youngest(self):
        space = AddressSpace()
        wb = WriteBuffer(4, fifo=True)
        wb.push(0x1000, 8, 1, seq=1)
        young = wb.push(0x1000, 8, 2, seq=2)
        assert wb.pending_store_to(0x1000, 8, space) is young
