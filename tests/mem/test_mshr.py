"""MSHR file tests."""

import pytest

from repro.errors import SimulationError
from repro.mem.mshr import MSHRFile


class TestMSHRFile:
    def test_allocate_and_complete(self):
        mshrs = MSHRFile(4)
        entry = mshrs.allocate(0x1000, allocator_seq=1, speculative=False, cycle=0)
        assert entry is not None
        assert mshrs.lookup(0x1000) is entry
        completed = mshrs.complete(0x1000)
        assert completed is entry
        assert mshrs.lookup(0x1000) is None

    def test_full_returns_none(self):
        mshrs = MSHRFile(2)
        assert mshrs.allocate(0x1000, 1, False, 0)
        assert mshrs.allocate(0x2000, 2, False, 0)
        assert mshrs.allocate(0x3000, 3, False, 0) is None
        assert mshrs.stat_full_stalls == 1

    def test_duplicate_allocation_raises(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x1000, 1, False, 0)
        with pytest.raises(SimulationError):
            mshrs.allocate(0x1000, 2, False, 0)

    def test_merge_attaches_target(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x1000, 1, False, 0)
        target = object()
        entry = mshrs.merge(0x1000, target)
        assert target in entry.targets
        assert mshrs.stat_merges == 1

    def test_complete_absent_raises(self):
        with pytest.raises(SimulationError):
            MSHRFile(4).complete(0x1000)

    def test_discard_is_silent(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x1000, 1, True, 0)
        mshrs.discard(0x1000)
        mshrs.discard(0x1000)  # idempotent
        assert mshrs.lookup(0x1000) is None

    def test_allocator_seq_recorded(self):
        mshrs = MSHRFile(4)
        entry = mshrs.allocate(0x1000, allocator_seq=42, speculative=True, cycle=9)
        assert entry.allocator_seq == 42
        assert entry.speculative
        assert entry.issued_cycle == 9

    def test_outstanding_lines(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x1000, 1, False, 0)
        mshrs.allocate(0x2000, 2, False, 0)
        assert set(mshrs.outstanding_lines()) == {0x1000, 0x2000}
