"""Address arithmetic tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.mem.address import AddressSpace


@pytest.fixture
def space():
    return AddressSpace(line_bytes=64, page_bytes=4096)


class TestAddressSpace:
    def test_line_of_aligns_down(self, space):
        assert space.line_of(0x1000) == 0x1000
        assert space.line_of(0x103F) == 0x1000
        assert space.line_of(0x1040) == 0x1040

    def test_line_index(self, space):
        assert space.line_index(0x1000) == 0x40
        assert space.line_index(0x103F) == 0x40

    def test_offset_in_line(self, space):
        assert space.offset_in_line(0x1000) == 0
        assert space.offset_in_line(0x1039) == 0x39

    def test_page_of(self, space):
        assert space.page_of(0) == 0
        assert space.page_of(4095) == 0
        assert space.page_of(4096) == 1

    def test_same_line(self, space):
        assert space.same_line(0x1000, 0x103F)
        assert not space.same_line(0x1000, 0x1040)

    def test_lines_touched_single(self, space):
        assert space.lines_touched(0x1008, 8) == [0x1000]

    def test_lines_touched_straddle(self, space):
        assert space.lines_touched(0x103C, 8) == [0x1000, 0x1040]

    def test_byte_mask_contiguous(self, space):
        mask = space.byte_mask(0x1008, 4)
        assert mask == 0b1111 << 8

    def test_byte_mask_clipped_at_line_end(self, space):
        mask = space.byte_mask(0x103E, 8)
        assert mask == 0b11 << 62

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            AddressSpace(line_bytes=48)

    def test_rejects_page_smaller_than_line(self):
        with pytest.raises(ConfigError):
            AddressSpace(line_bytes=64, page_bytes=32)

    @given(addr=st.integers(min_value=0, max_value=1 << 48))
    def test_line_of_is_idempotent(self, addr):
        space = AddressSpace()
        line = space.line_of(addr)
        assert space.line_of(line) == line
        assert line <= addr < line + space.line_bytes

    @given(
        addr=st.integers(min_value=0, max_value=1 << 40),
        size=st.integers(min_value=1, max_value=256),
    )
    def test_lines_touched_cover_access(self, addr, size):
        space = AddressSpace()
        lines = space.lines_touched(addr, size)
        assert lines[0] == space.line_of(addr)
        assert lines[-1] == space.line_of(addr + size - 1)
        # Consecutive lines, no gaps.
        for a, b in zip(lines, lines[1:]):
            assert b - a == space.line_bytes
