"""Program serialization and cross-process identity.

The campaign's bit-identity guarantee rests on programs surviving the
parent -> worker hop unchanged: Expr trees and MicroOps must JSON- and
pickle-round-trip, and a rebuilt program must carry the *same uids* so
wrong-path arm keys keep resolving (the stable-uid regression the issue
calls out).
"""

import json
import pickle

import pytest

from repro.cpu import isa
from repro.cpu.isa import (
    Expr,
    ExprError,
    MicroOp,
    OpKind,
    deserialize_program,
    op_from_dict,
    op_to_dict,
    serialize_program,
)
from repro.fuzz.cells import FuzzCellSpec
from repro.fuzz.generator import FuzzProgram, generate_programs


class TestExpr:
    def test_evaluates_like_the_lambda_it_replaces(self):
        expr = Expr(
            ("add", ("const", 0x100),
             ("mul", ("const", 64), ("and", ("reg", "v", 0), ("const", 7))))
        )
        env = {"v": 41}
        assert expr(env) == 0x100 + 64 * (41 & 7)
        assert expr({}) == 0x100  # default kicks in for unwritten regs

    def test_json_round_trip_preserves_value_and_identity(self):
        expr = Expr(("xor", ("reg", "x", 3), ("neg", ("const", 5))))
        back = Expr.from_json(expr.to_json())
        assert back == expr
        assert back({"x": 9}) == expr({"x": 9})

    def test_rejects_malformed_nodes(self):
        with pytest.raises(ExprError):
            Expr(("frobnicate", ("const", 1), ("const", 2)))
        with pytest.raises(ExprError):
            Expr(("const", "not-an-int"))


class TestOpRoundTrip:
    def test_op_round_trip_is_exact(self):
        isa.reset_uids()
        op = MicroOp(
            OpKind.LOAD,
            pc=0x6000,
            addr_fn=Expr(("add", ("const", 0x100), ("reg", "v", 0))),
            size=1,
            deps=(1,),
            dst="v",
            label="transmit",
        )
        data = op_to_dict(op)
        back = op_from_dict(data)
        assert op_to_dict(back) == data
        assert back.uid == op.uid

    def test_plain_lambda_is_rejected_loudly(self):
        isa.reset_uids()
        op = MicroOp(OpKind.LOAD, pc=0, addr_fn=lambda env: 4, size=1)
        with pytest.raises(ExprError):
            op_to_dict(op)


class TestProgramRoundTrip:
    def test_rebuild_is_bit_identical_with_stable_uids(self):
        prog = generate_programs(9, seed=7)[0]
        ops, wrong_paths = prog.build()
        assert serialize_program(ops, wrong_paths) == prog.program
        # arm keys resolve: every wrong-path key is a live main-path uid
        uids = {op.uid for op in ops}
        assert all(uid in uids for uid in wrong_paths)

    def test_rebuild_twice_gives_identical_uids(self):
        prog = generate_programs(9, seed=7)[6]
        first = serialize_program(*prog.build())
        second = serialize_program(*prog.build())
        assert first == second

    def test_fresh_uids_remaps_arm_keys(self):
        prog = generate_programs(9, seed=7)[0]
        isa.reset_uids(1000)
        ops, wrong_paths = deserialize_program(prog.program, fresh_uids=True)
        assert all(op.uid >= 1000 for op in ops)
        uids = {op.uid for op in ops}
        assert all(uid in uids for uid in wrong_paths)

    def test_counter_advances_past_stored_uids(self):
        prog = generate_programs(9, seed=7)[0]
        ops, wrong_paths = prog.build()
        top = max(
            [op.uid for op in ops]
            + [op.uid for arm in wrong_paths.values() for op in arm]
        )
        probe = MicroOp(OpKind.ALU, pc=0)
        assert probe.uid > top


class TestPickleAcrossDispatch:
    """A dispatched program replays bit-identically (worker simulation)."""

    def test_fuzz_program_pickle_round_trip(self):
        prog = generate_programs(9, seed=3)[4]
        clone = pickle.loads(pickle.dumps(prog))
        assert clone.canonical_json() == prog.canonical_json()
        assert serialize_program(*clone.build()) == prog.program

    def test_cell_spec_pickle_round_trip(self):
        progs = generate_programs(4, seed=3)
        spec = FuzzCellSpec(
            cell_id="fuzz:test:b0000",
            programs=tuple(p.canonical_json() for p in progs),
            window=64,
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        rebuilt = FuzzProgram.from_dict(json.loads(clone.programs[2]))
        assert serialize_program(*rebuilt.build()) == progs[2].program
