"""Differential-harness behavior on the known template mechanisms.

These pin the template <-> mechanism contract the campaign's guarantees
rest on: leak templates confirm, the lfence template is dynamically
clean, SSB/exception gadgets are futuristic-only, and the value-killing
gadget is a deterministic precision gap.
"""

import pytest

from repro.fuzz.generator import build_program
from repro.fuzz.harness import (
    AGREE,
    PRECISION,
    differential_check,
)


def _first(template, seed=0, tries=40, exclude_warm_guard=True):
    """The first program of ``template`` (skipping warm_guard draws,
    which legitimately change the dynamics)."""
    for index in range(tries):
        prog = build_program(seed, index)
        if prog.template != template:
            continue
        if exclude_warm_guard and "warm_guard" in prog.mutations:
            continue
        return prog
    raise AssertionError(f"no {template} program in {tries} draws")


def test_bounds_check_leak_confirms_in_both_models():
    result = differential_check(_first("bounds_check"))
    assert result.classification == AGREE
    for model in ("spectre", "futuristic"):
        assert result.per_model[model]["transmit_confirmed"]
        assert not result.per_model[model]["safe_but_leaks"]


def test_lfence_template_is_safe_and_dynamically_clean():
    result = differential_check(_first("bounds_check_fenced"))
    assert result.classification == AGREE
    for model in ("spectre", "futuristic"):
        detail = result.per_model[model]
        assert not detail["transmit_confirmed"]
        assert not detail["safe_but_leaks"]
        assert detail["safe_confirmed"]


def test_ssb_is_futuristic_only():
    result = differential_check(_first("ssb"))
    assert result.classification == AGREE
    assert result.per_model["futuristic"]["transmit_confirmed"]
    assert not result.per_model["spectre"]["transmit_confirmed"]
    assert not result.per_model["spectre"]["safe_but_leaks"]


def test_exception_shadow_is_futuristic_only():
    result = differential_check(_first("exception"))
    assert result.classification == AGREE
    assert result.per_model["futuristic"]["transmit_confirmed"]
    assert not result.per_model["spectre"]["safe_but_leaks"]


def test_indirect_branch_confirms():
    result = differential_check(_first("indirect_branch"))
    assert result.classification == AGREE
    assert result.per_model["futuristic"]["transmit_confirmed"]


def test_masked_dead_is_a_deterministic_precision_gap():
    result = differential_check(_first("masked_dead"))
    assert result.classification == PRECISION
    for model in ("spectre", "futuristic"):
        assert result.per_model[model]["transmit_but_clean"]
        assert not result.per_model[model]["safe_but_leaks"]


def test_weakened_analyzer_produces_soundness_disagreement():
    result = differential_check(
        _first("exception"), weaken="branch_shadows_only"
    )
    assert result.classification == "soundness"
    assert result.per_model["futuristic"]["safe_but_leaks"]
    targets = result.targets("soundness")
    assert all(model == "futuristic" for model, _pc in targets)


def test_unknown_weakening_name_is_rejected():
    with pytest.raises(ValueError, match="branch_shadows_only"):
        differential_check(_first("bounds_check"), weaken="no-such-weakening")
