"""Differential-harness behavior on the known template mechanisms.

These pin the template <-> mechanism contract the campaign's guarantees
rest on: leak templates confirm, the lfence template is dynamically
clean, SSB/exception gadgets are futuristic-only, and the value-killing
gadget — v1's deterministic precision gap — is now proven SAFE by the
value-collapse lattice.
"""

import pytest

from repro.fuzz.generator import build_program
from repro.fuzz.harness import (
    AGREE,
    differential_check,
)


def _first(template, seed=0, tries=40, exclude_warm_guard=True):
    """The first program of ``template`` (skipping warm_guard draws,
    which legitimately change the dynamics)."""
    for index in range(tries):
        prog = build_program(seed, index)
        if prog.template != template:
            continue
        if exclude_warm_guard and "warm_guard" in prog.mutations:
            continue
        return prog
    raise AssertionError(f"no {template} program in {tries} draws")


def test_bounds_check_leak_confirms_in_both_models():
    result = differential_check(_first("bounds_check"))
    assert result.classification == AGREE
    for model in ("spectre", "futuristic"):
        assert result.per_model[model]["transmit_confirmed"]
        assert not result.per_model[model]["safe_but_leaks"]


def test_lfence_template_is_safe_and_dynamically_clean():
    result = differential_check(_first("bounds_check_fenced"))
    assert result.classification == AGREE
    for model in ("spectre", "futuristic"):
        detail = result.per_model[model]
        assert not detail["transmit_confirmed"]
        assert not detail["safe_but_leaks"]
        assert detail["safe_confirmed"]


def test_ssb_is_futuristic_only():
    result = differential_check(_first("ssb"))
    assert result.classification == AGREE
    assert result.per_model["futuristic"]["transmit_confirmed"]
    assert not result.per_model["spectre"]["transmit_confirmed"]
    assert not result.per_model["spectre"]["safe_but_leaks"]


def test_exception_shadow_is_futuristic_only():
    result = differential_check(_first("exception"))
    assert result.classification == AGREE
    assert result.per_model["futuristic"]["transmit_confirmed"]
    assert not result.per_model["spectre"]["safe_but_leaks"]


def test_indirect_branch_confirms():
    result = differential_check(_first("indirect_branch"))
    assert result.classification == AGREE
    assert result.per_model["futuristic"]["transmit_confirmed"]


def test_masked_dead_collapse_closes_the_v1_precision_gap():
    """The mask-to-zero transmit reaches one cache line; the v2 value
    lattice proves it SAFE, and the dynamic runs confirm it is clean
    (this was v1's signature TRANSMIT-but-clean case)."""
    result = differential_check(_first("masked_dead"))
    assert result.classification == AGREE
    for model in ("spectre", "futuristic"):
        assert not result.per_model[model]["transmit_but_clean"]
        assert not result.per_model[model]["safe_but_leaks"]
        assert result.per_model[model]["safe_confirmed"]


def test_masked_dead_carries_a_value_killed_proof():
    from repro.specflow.analyzer import analyze_program

    prog = _first("masked_dead").spec_program()
    rep = analyze_program(prog, model="futuristic")
    proofs = [
        load.proof["kind"]
        for load in rep.loads
        if load.classification == "SAFE" and load.proof is not None
    ]
    assert "value-killed" in proofs


def test_branchy_select_confirms_in_both_models():
    """The path-split template: the transmit address forks on a secret
    bit across cache lines, so v2 must flag it (v1 collapsed to
    UNKNOWN) and the dynamics must confirm the leak."""
    result = differential_check(_first("branchy_select"))
    assert result.classification == AGREE
    for model in ("spectre", "futuristic"):
        assert result.per_model[model]["transmit_confirmed"]
        assert not result.per_model[model]["unknown"]


def test_weakened_analyzer_produces_soundness_disagreement():
    result = differential_check(
        _first("exception"), weaken="branch_shadows_only"
    )
    assert result.classification == "soundness"
    assert result.per_model["futuristic"]["safe_but_leaks"]
    targets = result.targets("soundness")
    assert all(model == "futuristic" for model, _pc in targets)


@pytest.mark.parametrize(
    "weaken,template",
    [
        ("value_collapse_blind", "ssb"),
        ("window_assumes_warm", "exception"),
        ("fork_single_path", "branchy_select"),
    ],
)
def test_v2_sub_analysis_weakenings_are_safe_but_leaks(weaken, template):
    """Each v2 layer's seeded weakening must surface as a soundness
    disagreement (a SAFE verdict the machine contradicts) on its
    documented trip template — the fuzz campaign's guarantee that every
    new sub-analysis stays under differential test."""
    result = differential_check(
        _first(template, exclude_warm_guard=False), weaken=weaken
    )
    assert result.classification == "soundness"
    assert result.per_model["futuristic"]["safe_but_leaks"]


def test_short_window_weakening_shows_as_an_unknown_gap():
    """short_window damages coverage, not verdicts: dynamically leaky
    loads degrade to window-exhausted UNKNOWNs, which the campaign
    tracks through its unknown-gap channel rather than as soundness."""
    for index in range(120):
        prog = build_program(0, index)
        if prog.template != "bounds_check":
            continue
        result = differential_check(prog, weaken="short_window")
        if result.classification != "unknown":
            continue
        reasons = set(result.per_model["futuristic"]["unknown"].values())
        assert reasons == {"window-exhausted"}, reasons
        return
    raise AssertionError(
        "no bounds_check draw degraded to UNKNOWN under short_window"
    )


def test_unknown_weakening_name_is_rejected():
    with pytest.raises(ValueError, match="branch_shadows_only"):
        differential_check(_first("bounds_check"), weaken="no-such-weakening")
