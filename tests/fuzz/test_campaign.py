"""Campaign end-to-end: dispatch, classification, minimization, corpus,
resume, and the bit-identity guarantee (serial vs parallel, any
PYTHONHASHSEED)."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.fuzz import run_campaign
from repro.fuzz.corpus import TriageCorpus
from repro.fuzz.generator import FuzzProgram

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run_cli(out_dir, hashseed, extra=()):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = _SRC
    proc = subprocess.run(
        [sys.executable, "-m", "repro.fuzz",
         "--programs", "12", "--seed", "0", "--out", str(out_dir),
         *extra],
        capture_output=True, text=True, env=env, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr + proc.stdout
    return proc


def _corpus_bytes(out_dir):
    corpus = Path(out_dir) / "corpus"
    return {
        p.name: p.read_bytes() for p in sorted(corpus.glob("*.json"))
    }


class TestCleanCampaign:
    def test_no_soundness_on_the_unmutated_analyzer(self, tmp_path):
        result = run_campaign(
            programs=9, seed=0, out_dir=tmp_path, max_minimize=0
        )
        assert result.exit_code == 0
        assert result.soundness_count == 0
        assert result.summary["by_classification"].get("soundness", 0) == 0
        assert len(result.verdicts) == 9
        assert (tmp_path / "summary.json").exists()
        assert (tmp_path / "journal.json").exists()

    def test_resume_reuses_journaled_verdicts(self, tmp_path):
        first = run_campaign(
            programs=9, seed=0, out_dir=tmp_path, max_minimize=0
        )
        second = run_campaign(
            programs=9, seed=0, out_dir=tmp_path, max_minimize=0,
            resume=True,
        )
        assert second.verdicts == first.verdicts
        assert second.summary == first.summary


class TestSeededBug:
    def test_weakened_analyzer_is_flagged_and_minimized(self, tmp_path):
        result = run_campaign(
            programs=9, seed=0, out_dir=tmp_path,
            weaken="branch_shadows_only", max_minimize=3,
        )
        assert result.exit_code == 1
        assert result.soundness_count >= 1
        soundness_entries = [
            e for e in result.corpus_index if e["kind"] == "soundness"
        ]
        assert soundness_entries
        for entry in soundness_entries:
            # the issue's bar: reproducers shrink to <= 12 ops
            assert entry["ops"] <= 12
            path = tmp_path / "corpus" / f"{entry['hash']}.json"
            stored = TriageCorpus.load_entry(path)
            assert stored["replay"].endswith(f"{entry['hash']}.json")
            # the minimized program is replayable data
            FuzzProgram.from_dict(stored["program"]).build()

    def test_corpus_index_is_the_sorted_triage_journal(self, tmp_path):
        result = run_campaign(
            programs=9, seed=0, out_dir=tmp_path,
            weaken="branch_shadows_only", max_minimize=3,
        )
        index = json.loads((tmp_path / "corpus" / "index.json").read_text())
        assert index == result.corpus_index
        assert [e["hash"] for e in index] == sorted(
            e["hash"] for e in index
        )


class TestReplayCLI:
    def test_replay_confirms_a_corpus_entry(self, tmp_path):
        result = run_campaign(
            programs=9, seed=0, out_dir=tmp_path,
            weaken="branch_shadows_only", max_minimize=1,
        )
        entry = next(
            e for e in result.corpus_index if e["kind"] == "soundness"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC
        proc = subprocess.run(
            [sys.executable, "-m", "repro.fuzz", "replay",
             str(tmp_path / "corpus" / f"{entry['hash']}.json")],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr + proc.stdout
        payload = json.loads(proc.stdout)
        assert payload["reproduced"] is True


class TestBitIdentity:
    def test_identical_across_hashseed_and_job_count(self, tmp_path):
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        _run_cli(serial, hashseed=1)
        _run_cli(parallel, hashseed=424242, extra=["--jobs", "4"])

        assert (
            (serial / "summary.json").read_bytes()
            == (parallel / "summary.json").read_bytes()
        )
        assert _corpus_bytes(serial) == _corpus_bytes(parallel)

        # journaled verdicts (not the wall-clock attempt records) match
        def verdicts(out):
            journal = json.loads((out / "journal.json").read_text())
            return {
                cell: record["metrics"]["programs"]
                for cell, record in journal["cells"].items()
            }

        assert verdicts(serial) == verdicts(parallel)
