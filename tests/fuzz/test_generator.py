"""Generator determinism and template-alphabet invariants."""

import os
import subprocess
import sys
from pathlib import Path

from repro.fuzz.generator import (
    _MASKS,
    _STRIDES,
    LINE,
    TEMPLATE_NAMES,
    FuzzProgram,
    generate_programs,
    mix_seed,
)
from repro.fuzz.harness import SECRETS

_SRC = str(Path(__file__).resolve().parents[2] / "src")

_DUMP_SCRIPT = """
import sys
from repro.fuzz.generator import generate_programs
for p in generate_programs(18, seed=5):
    sys.stdout.write(p.canonical_json() + "\\n")
"""


def test_same_seed_same_programs():
    a = [p.canonical_json() for p in generate_programs(18, seed=0)]
    b = [p.canonical_json() for p in generate_programs(18, seed=0)]
    assert a == b


def test_different_seed_different_programs():
    a = [p.canonical_json() for p in generate_programs(18, seed=0)]
    b = [p.canonical_json() for p in generate_programs(18, seed=1)]
    assert a != b


def test_round_robin_covers_every_template():
    progs = generate_programs(len(TEMPLATE_NAMES), seed=0)
    assert tuple(p.template for p in progs) == TEMPLATE_NAMES


def test_mix_seed_is_hash_free_integer_mixing():
    assert mix_seed(0, 0) != mix_seed(0, 1)
    assert mix_seed(0, 1) != mix_seed(1, 0)
    assert 0 <= mix_seed(123456, 999) < 2**32


def test_every_mask_separates_the_campaign_secrets():
    # the two-secret harness needs distinct transmission lines under
    # every mask/stride the generator can draw
    for mask in _MASKS:
        for stride in _STRIDES:
            lines = {(stride * (s & mask)) // LINE for s in SECRETS}
            assert len(lines) == len(SECRETS), (mask, stride)


def test_dict_round_trip():
    prog = generate_programs(9, seed=11)[5]
    back = FuzzProgram.from_dict(prog.to_dict())
    assert back.canonical_json() == prog.canonical_json()


def test_generation_is_hashseed_independent():
    outs = []
    for hashseed in ("1", "424242"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = _SRC
        proc = subprocess.run(
            [sys.executable, "-c", _DUMP_SCRIPT],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        outs.append(proc.stdout)
    assert outs[0] == outs[1]
