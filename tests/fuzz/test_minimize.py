"""Delta-minimizer mechanics: dep repair, pass vocabulary, budgets."""

from repro.fuzz.generator import build_program, generate_programs
from repro.fuzz.harness import differential_check
from repro.fuzz.minimize import minimize_program


def _has_load_at(prog, pc):
    for op in prog.program["ops"]:
        if op["kind"] == "load" and op["pc"] == pc:
            return True
    for arm in prog.program["wrong_paths"].values():
        for op in arm:
            if op["kind"] == "load" and op["pc"] == pc:
                return True
    return False


def _builds(prog):
    try:
        prog.build()
    except Exception:
        return False
    return True


def test_minimized_programs_still_build():
    prog = generate_programs(9, seed=0)[0]
    pcs = [op["pc"] for op in prog.program["ops"] if op["kind"] == "load"]
    keep = pcs[0]

    minimized, log, checks = minimize_program(
        prog, lambda p: _builds(p) and _has_load_at(p, keep)
    )
    assert _has_load_at(minimized, keep)
    assert minimized.op_count < prog.op_count
    assert minimized.op_count >= 1
    assert checks >= len(log)
    minimized.build()  # dep repair left a structurally valid program


def test_budget_exhaustion_is_logged_never_silent():
    prog = generate_programs(9, seed=0)[0]
    minimized, log, checks = minimize_program(
        # always-true check: every candidate "reproduces", so the
        # minimizer keeps shrinking until the budget stops it
        prog, lambda p: True, max_checks=3,
    )
    assert checks == 3
    assert log[-1] == {"pass": "budget-exhausted", "checks": 3}


def test_minimize_preserves_live_disagreement(tmp_path):
    """E2E on a real precision gap.  v2 closed masked_dead (value
    collapse), so the live gap is a warm-guard bounds check with two
    transmits: their page footprints overlap, which blocks the
    squash-window proof, while dynamically the warm guard still
    squashes both before issue."""
    prog = build_program(0, 380)
    assert prog.template == "bounds_check"
    assert "warm_guard" in prog.mutations
    assert "extra_transmit" in prog.mutations
    base = differential_check(prog)
    (model, pc) = base.targets("precision")[0]
    hex_pc = f"0x{pc:x}"

    def check(candidate):
        result = differential_check(candidate)
        return hex_pc in result.per_model[model]["transmit_but_clean"]

    minimized, log, _checks = minimize_program(prog, check, max_checks=60)
    assert minimized.op_count < prog.op_count
    assert check(minimized)
    assert all(entry.get("ops", 0) <= prog.op_count for entry in log)
