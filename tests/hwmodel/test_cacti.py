"""Hardware cost model tests (Table VII magnitudes)."""

import pytest

from repro.errors import ConfigError
from repro.hwmodel import SRAMModel, estimate_invisispec_overhead


class TestSRAMModel:
    def test_bigger_array_bigger_area(self):
        model = SRAMModel()
        small = model.estimate("s", entries=32, entry_bits=512)
        big = model.estimate("b", entries=128, entry_bits=512)
        assert big.area_mm2 > small.area_mm2

    def test_cam_costs_more_leakage(self):
        model = SRAMModel()
        ram = model.estimate("ram", entries=32, entry_bits=512)
        cam = model.estimate("cam", entries=32, entry_bits=512, tag_bits=54,
                             is_cam=True)
        assert cam.leakage_mw > ram.leakage_mw

    def test_node_scaling(self):
        small_node = SRAMModel(node_nm=16).estimate("x", 32, 512)
        big_node = SRAMModel(node_nm=32).estimate("x", 32, 512)
        assert big_node.area_mm2 > small_node.area_mm2
        assert big_node.read_energy_pj > small_node.read_energy_pj

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            SRAMModel(node_nm=0)
        with pytest.raises(ConfigError):
            SRAMModel().estimate("x", entries=0, entry_bits=512)


class TestTableVII:
    def test_magnitudes_match_paper(self):
        l1_sb, llc_sb = estimate_invisispec_overhead()
        # Paper: 0.0174 / 0.0176 mm^2; 97.1 ps; 4.4/4.3 pJ; 0.56/0.61 mW.
        assert 0.010 <= l1_sb.area_mm2 <= 0.025
        assert 0.010 <= llc_sb.area_mm2 <= 0.025
        assert 80 <= l1_sb.access_time_ps <= 120
        assert 3.0 <= l1_sb.read_energy_pj <= 6.0
        assert 0.3 <= l1_sb.leakage_mw <= 0.9
        assert 0.3 <= llc_sb.leakage_mw <= 0.9

    def test_overhead_is_tiny(self):
        """The paper's point: both buffers add well under 0.05 mm^2/core."""
        total = sum(e.area_mm2 for e in estimate_invisispec_overhead())
        assert total < 0.05

    def test_rows_render(self):
        for estimate in estimate_invisispec_overhead():
            row = estimate.as_row()
            assert row[0] in ("L1-SB", "LLC-SB")
            assert all(isinstance(v, (int, float)) for v in row[1:])
