"""Interrupt unit tests (Section VI-D)."""

from repro.cpu.interrupts import InterruptUnit


class TestInterruptUnit:
    def test_disabled_timer_never_fires(self):
        unit = InterruptUnit(interval=0)
        assert not unit.should_fire(10_000)

    def test_fires_on_schedule(self):
        unit = InterruptUnit(interval=100)
        assert not unit.should_fire(50)
        assert unit.should_fire(100)
        assert not unit.should_fire(150)
        assert unit.should_fire(200)

    def test_disable_window_delays_interrupt(self):
        unit = InterruptUnit(interval=100)
        assert unit.disable_until_head()
        assert not unit.should_fire(100)
        assert unit.pending
        unit.on_head_retired(120)
        assert unit.should_fire(121)

    def test_disable_refused_while_pending(self):
        """Anti-starvation: a pending interrupt blocks a new window."""
        unit = InterruptUnit(interval=100)
        unit.disable_until_head()
        unit.should_fire(100)  # delayed: becomes pending
        unit.on_head_retired(110)  # window closes, interrupt still pending
        assert not unit.disable_until_head()  # refused until it fires
        assert unit.should_fire(111)
        assert unit.disable_until_head()  # allowed again afterwards

    def test_catches_up_after_long_gap(self):
        unit = InterruptUnit(interval=100)
        assert unit.should_fire(500)
        assert unit.next_at > 500

    def test_delayed_stat(self):
        unit = InterruptUnit(interval=10)
        unit.disable_until_head()
        unit.should_fire(10)
        assert unit.stat_delayed == 1
