"""Branch prediction structures: tournament, BTB, RAS."""

from repro.cpu.branch import BTB, ReturnAddressStack, TournamentPredictor


def train(predictor, pc, outcomes):
    mispredicts = 0
    for taken in outcomes:
        predicted, checkpoint = predictor.predict(pc)
        wrong = predicted != taken
        mispredicts += wrong
        predictor.update(pc, taken, checkpoint, wrong)
    return mispredicts


class TestTournamentPredictor:
    def test_learns_always_taken(self):
        predictor = TournamentPredictor()
        train(predictor, 0x400, [True] * 50)
        predicted, _ = predictor.predict(0x400)
        assert predicted

    def test_learns_always_not_taken(self):
        predictor = TournamentPredictor()
        train(predictor, 0x400, [False] * 50)
        predicted, _ = predictor.predict(0x400)
        assert not predicted

    def test_biased_branch_asymptotic_accuracy(self):
        import random

        rng = random.Random(1)
        predictor = TournamentPredictor()
        outcomes = [rng.random() < 0.9 for _ in range(3000)]
        mispredicts = train(predictor, 0x400, outcomes)
        # A 90%-taken random branch: predictor should approach ~10% error.
        assert mispredicts / len(outcomes) < 0.2

    def test_learns_alternating_pattern_via_history(self):
        predictor = TournamentPredictor()
        outcomes = [bool(i % 2) for i in range(2000)]
        mispredicts = train(predictor, 0x404, outcomes)
        # Pattern is fully predictable from history: late error near zero.
        late = train(predictor, 0x404, [bool(i % 2) for i in range(200)])
        assert late < 20

    def test_mistraining_flips_prediction(self):
        """The Spectre primitive: the attacker's calls retrain the branch."""
        predictor = TournamentPredictor()
        train(predictor, 0x7000, [False] * 40)
        predicted, _ = predictor.predict(0x7000)
        assert not predicted
        train(predictor, 0x7000, [True] * 40)
        predicted, _ = predictor.predict(0x7000)
        assert predicted

    def test_squash_restore_rewinds_history(self):
        predictor = TournamentPredictor()
        train(predictor, 0x400, [True] * 20)
        history = predictor.global_history
        _predicted, checkpoint = predictor.predict(0x400)
        assert predictor.global_history != history or True  # shifted
        predictor.squash_restore(checkpoint)
        assert predictor.global_history == history

    def test_accuracy_property(self):
        predictor = TournamentPredictor()
        train(predictor, 0x400, [True] * 100)
        assert 0.0 <= predictor.accuracy <= 1.0


class TestBTB:
    def test_miss_then_hit(self):
        btb = BTB(entries=16)
        assert btb.lookup(0x400) is None
        btb.update(0x400, 0x1234)
        assert btb.lookup(0x400) == 0x1234

    def test_aliasing_eviction(self):
        btb = BTB(entries=16)
        btb.update(0x400, 0x1111)
        btb.update(0x400 + 16 * 4, 0x2222)  # same index, different tag
        assert btb.lookup(0x400) is None
        assert btb.lookup(0x400 + 16 * 4) == 0x2222

    def test_flush(self):
        btb = BTB(entries=16)
        btb.update(0x400, 0x1111)
        btb.flush()
        assert btb.lookup(0x400) is None

    def test_stats(self):
        btb = BTB(entries=16)
        btb.lookup(0x400)
        btb.update(0x400, 1)
        btb.lookup(0x400)
        assert btb.stat_misses == 1
        assert btb.stat_hits == 1


class TestRAS:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(entries=4)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_circular_overwrite(self):
        ras = ReturnAddressStack(entries=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() == 3  # wrapped

    def test_checkpoint_restore(self):
        ras = ReturnAddressStack(entries=4)
        ras.push(0x100)
        checkpoint = ras.checkpoint()
        ras.push(0x200)
        ras.pop()
        ras.pop()
        ras.restore(checkpoint)
        assert ras.pop() == 0x100
