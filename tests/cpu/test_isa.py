"""Micro-op vocabulary tests."""

from repro.cpu import isa
from repro.cpu.isa import MicroOp, OpKind


class TestOpKind:
    def test_memory_kinds(self):
        assert OpKind.LOAD.is_memory
        assert OpKind.STORE.is_memory
        assert OpKind.PREFETCH.is_memory
        assert not OpKind.ALU.is_memory
        assert not OpKind.BRANCH.is_memory

    def test_fence_like_kinds(self):
        for kind in (OpKind.FENCE, OpKind.ACQUIRE, OpKind.RELEASE):
            assert kind.is_fence_like
        assert not OpKind.LOAD.is_fence_like


class TestMicroOp:
    def test_uids_unique_and_monotonic(self):
        ops = [MicroOp(OpKind.ALU) for _ in range(10)]
        uids = [op.uid for op in ops]
        assert len(set(uids)) == 10
        assert uids == sorted(uids)

    def test_repr_mentions_kind_and_addr(self):
        op = MicroOp(OpKind.LOAD, pc=0x10, addr=0x1234, label="access")
        text = repr(op)
        assert "load" in text
        assert "0x1234" in text
        assert "access" in text

    def test_addr_fn_evaluated_against_env(self):
        op = MicroOp(OpKind.LOAD, addr_fn=lambda env: 0x100 + env["x"])
        assert op.addr is None
        assert op.addr_fn({"x": 8}) == 0x108


class TestConstructors:
    def test_load_helper(self):
        op = isa.load(pc=1, addr=0x40, size=4, dst="r1", deps=(2,))
        assert op.kind is OpKind.LOAD
        assert (op.pc, op.addr, op.size, op.dst, op.deps) == (1, 0x40, 4, "r1", (2,))

    def test_store_helper(self):
        op = isa.store(pc=2, addr=0x80, value=7)
        assert op.kind is OpKind.STORE
        assert op.store_value == 7

    def test_branch_helper(self):
        op = isa.branch(pc=3, taken=True, latency=5)
        assert op.kind is OpKind.BRANCH
        assert op.taken
        assert op.latency == 5

    def test_alu_helper_with_compute(self):
        op = isa.alu(pc=4, dst="y", compute_fn=lambda env: 9)
        assert op.compute_fn({}) == 9

    def test_fence_helper(self):
        assert isa.fence(pc=5).kind is OpKind.FENCE
