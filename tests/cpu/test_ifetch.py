"""Real L1-I cache tests."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from conftest import run_ops, simple_load_alu_ops

from repro import SystemParams
from repro.cpu import isa
from repro.cpu.ifetch import InstructionFetchUnit
from repro.network.noc import NoC
from repro.params import NetworkParams


def ifetch_params():
    return SystemParams.for_spec().replace(model_l1i=True)


class TestInstructionFetchUnit:
    def make_unit(self):
        params = SystemParams.for_spec()
        return InstructionFetchUnit(params, NoC(NetworkParams()), 0, 0)

    def test_miss_then_hit(self):
        unit = self.make_unit()
        assert not unit.access(0, 0x1000)
        assert not unit.ready(1)
        assert unit.ready(100)
        assert unit.access(100, 0x1000)
        assert unit.access(100, 0x1020)  # same line

    def test_traffic_accounted(self):
        unit = self.make_unit()
        unit.access(0, 0x1000)
        assert unit.noc.total_bytes == 80

    def test_cancel_abandons_fill(self):
        unit = self.make_unit()
        unit.access(0, 0x1000)
        unit.cancel()
        assert unit.ready(0)
        # The line never landed; re-access misses again.
        assert not unit.access(200, 0x1000)


class TestIFetchIntegration:
    def test_program_completes_with_real_l1i(self):
        result, system = run_ops(
            simple_load_alu_ops(20), params=ifetch_params()
        )
        assert result.instructions == 40
        assert system.cores[0].ifetch.stat_misses > 0
        assert system.cores[0].ifetch.stat_hits > 0

    def test_fetch_misses_slow_the_frontend(self):
        # Spread PCs across many lines so fetch misses dominate.
        ops = [isa.alu(pc=0x1_0000 + 64 * i) for i in range(60)]
        cold, _ = run_ops(list(ops), params=ifetch_params())
        dense = [isa.alu(pc=0x1_0000 + 4 * i) for i in range(60)]
        warm, _ = run_ops(dense, params=ifetch_params())
        assert cold.cycles > warm.cycles

    def test_squash_with_pending_ifetch_recovers(self):
        ops = []
        for i in range(20):
            ops.append(isa.branch(pc=0x2_0000 + 64 * i, taken=(i % 2 == 0)))
            ops.append(isa.alu(pc=0x3_0000 + 64 * i))
        result, _ = run_ops(ops, params=ifetch_params())
        assert result.instructions == len(ops)
