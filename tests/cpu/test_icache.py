"""I-fetch traffic model tests."""

from repro.cpu.icache import ICacheTrafficModel
from repro.network.noc import NoC, TrafficCategory
from repro.params import NetworkParams


def make_model(miss_rate):
    noc = NoC(NetworkParams())
    return ICacheTrafficModel(noc, core_node=0, bank_node=0,
                              miss_rate=miss_rate), noc


class TestICacheTrafficModel:
    def test_zero_rate_is_silent(self):
        model, noc = make_model(0.0)
        model.on_fetch(10_000)
        assert noc.total_bytes == 0

    def test_misses_accumulate_deterministically(self):
        model, _ = make_model(0.01)
        model.on_fetch(1000)
        assert model.stat_misses == 10

    def test_fractional_accumulation_carries(self):
        model, _ = make_model(0.001)
        for _ in range(10):
            model.on_fetch(250)
        assert model.stat_misses == 2  # 2500 * 0.001

    def test_each_miss_is_a_line_transfer(self):
        model, noc = make_model(0.01)
        model.on_fetch(100)
        # One request (8 B) + one data response (72 B) per miss.
        assert noc.total_bytes == 80
        assert noc.bytes_by_category[TrafficCategory.NORMAL] == 80

    def test_same_inputs_same_traffic(self):
        a, noc_a = make_model(0.0037)
        b, noc_b = make_model(0.0037)
        for chunk in (17, 130, 1000, 3):
            a.on_fetch(chunk)
            b.on_fetch(chunk)
        assert noc_a.total_bytes == noc_b.total_bytes
