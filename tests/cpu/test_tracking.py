"""Lazy min-seq tracker tests."""

from repro.cpu.tracking import LazyMinTracker


class FakeEntry:
    def __init__(self, seq):
        self.seq = seq
        self.squashed = False
        self.active = True


class TestLazyMinTracker:
    def test_min_of_active(self):
        tracker = LazyMinTracker(lambda e: e.active)
        entries = [FakeEntry(i) for i in (5, 2, 9)]
        for e in entries:
            tracker.push(e)
        assert tracker.min_seq() == 2

    def test_inactive_head_is_skipped(self):
        tracker = LazyMinTracker(lambda e: e.active)
        a, b = FakeEntry(1), FakeEntry(2)
        tracker.push(a)
        tracker.push(b)
        a.active = False
        assert tracker.min_seq() == 2

    def test_squashed_is_inactive(self):
        tracker = LazyMinTracker(lambda e: e.active)
        a = FakeEntry(1)
        tracker.push(a)
        a.squashed = True
        assert tracker.min_seq() is None

    def test_empty_returns_none(self):
        assert LazyMinTracker(lambda e: True).min_seq() is None

    def test_lazy_deletion_shrinks_heap(self):
        tracker = LazyMinTracker(lambda e: e.active)
        entries = [FakeEntry(i) for i in range(10)]
        for e in entries:
            tracker.push(e)
        for e in entries[:9]:
            e.active = False
        assert tracker.min_seq() == 9
        assert len(tracker) == 1
