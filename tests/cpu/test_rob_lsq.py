"""ROB and LQ/SQ structure tests."""

import pytest

from repro.cpu import isa
from repro.cpu.lsq import (
    LoadQueue,
    STATE_EXPOSURE,
    STATE_VALIDATION,
    StoreQueue,
)
from repro.cpu.rob import ROBEntry, ReorderBuffer
from repro.errors import SimulationError


def entry(seq, kind=isa.OpKind.ALU, pos=None):
    return ROBEntry(isa.MicroOp(kind), seq, pos, False, 0)


class TestReorderBuffer:
    def test_fifo_order(self):
        rob = ReorderBuffer(8)
        entries = [entry(i) for i in range(3)]
        for e in entries:
            rob.push(e)
        assert rob.head() is entries[0]
        assert rob.tail() is entries[2]
        assert rob.pop_head() is entries[0]

    def test_full(self):
        rob = ReorderBuffer(2)
        rob.push(entry(0))
        rob.push(entry(1))
        assert rob.full
        with pytest.raises(SimulationError):
            rob.push(entry(2))

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            ReorderBuffer(2).pop_head()

    def test_squash_after_removes_younger(self):
        rob = ReorderBuffer(8)
        entries = [entry(i) for i in range(5)]
        for e in entries:
            rob.push(e)
        squashed = rob.squash_after(2)
        assert [e.seq for e in squashed] == [4, 3]
        assert all(e.squashed for e in squashed)
        assert rob.tail().seq == 2

    def test_squash_all(self):
        rob = ReorderBuffer(8)
        for i in range(3):
            rob.push(entry(i))
        squashed = rob.squash_after(-1)
        assert len(squashed) == 3
        assert rob.empty

    def test_find(self):
        rob = ReorderBuffer(8)
        target = entry(1)
        rob.push(entry(0))
        rob.push(target)
        assert rob.find(1) is target
        assert rob.find(99) is None


class TestLoadQueue:
    def test_virtual_indices_monotonic(self):
        lq = LoadQueue(4)
        a = lq.allocate(entry(0, isa.OpKind.LOAD), epoch=0)
        b = lq.allocate(entry(1, isa.OpKind.LOAD), epoch=0)
        assert (a.index, b.index) == (0, 1)
        lq.retire_head()
        c = lq.allocate(entry(2, isa.OpKind.LOAD), epoch=0)
        assert c.index == 2

    def test_slot_reuse_after_wrap(self):
        lq = LoadQueue(2)
        lq.allocate(entry(0, isa.OpKind.LOAD), epoch=0)
        lq.allocate(entry(1, isa.OpKind.LOAD), epoch=0)
        assert lq.full
        lq.retire_head()
        c = lq.allocate(entry(2, isa.OpKind.LOAD), epoch=0)
        assert c.index == 2
        assert lq.slot(2) is c

    def test_squash_to_drops_tail(self):
        lq = LoadQueue(4)
        entries = [lq.allocate(entry(i, isa.OpKind.LOAD), epoch=0) for i in range(4)]
        dropped = lq.squash_to(2)
        assert set(d.index for d in dropped) == {2, 3}
        assert len(lq) == 2
        assert lq.slot(2) is None

    def test_loads_to_line(self):
        lq = LoadQueue(4)
        a = lq.allocate(entry(0, isa.OpKind.LOAD), epoch=0)
        b = lq.allocate(entry(1, isa.OpKind.LOAD), epoch=0)
        a.line_addr = 0x1000
        b.line_addr = 0x2000
        assert lq.loads_to_line(0x1000) == [a]

    def test_older_pending_request_only_older_usls(self):
        lq = LoadQueue(8)
        older = lq.allocate(entry(0, isa.OpKind.LOAD), epoch=0)
        mid = lq.allocate(entry(1, isa.OpKind.LOAD), epoch=0)
        newer = lq.allocate(entry(2, isa.OpKind.LOAD), epoch=0)
        for e in (older, mid, newer):
            e.line_addr = 0x1000
            e.issued = True
        older.vstate = STATE_VALIDATION
        mid.vstate = "N"  # normal load: does not fill the SB
        newer.vstate = STATE_EXPOSURE
        # mid ignores N loads and younger USLs; finds only `older`.
        assert lq.older_pending_request(mid, 0x1000) is older
        # the oldest has nothing older.
        assert lq.older_pending_request(older, 0x1000) is None

    def test_retire_empty_raises(self):
        with pytest.raises(SimulationError):
            LoadQueue(2).retire_head()


class TestStoreQueue:
    def test_forwarding_store_full_coverage_only(self):
        sq = StoreQueue(4)
        store = sq.allocate(entry(0, isa.OpKind.STORE))
        store.addr, store.size, store.value = 0x1000, 8, 0xAB
        store.addr_resolved = True
        assert sq.forwarding_store(load_seq=5, addr=0x1002, size=2) is store
        assert sq.forwarding_store(load_seq=5, addr=0x1006, size=4) is None

    def test_forwarding_requires_older_store(self):
        sq = StoreQueue(4)
        store = sq.allocate(entry(7, isa.OpKind.STORE))
        store.addr, store.size = 0x1000, 8
        store.addr_resolved = True
        assert sq.forwarding_store(load_seq=3, addr=0x1000, size=8) is None

    def test_forwarding_picks_youngest_older(self):
        sq = StoreQueue(4)
        old = sq.allocate(entry(1, isa.OpKind.STORE))
        young = sq.allocate(entry(2, isa.OpKind.STORE))
        for s, v in ((old, 1), (young, 2)):
            s.addr, s.size, s.value = 0x1000, 8, v
            s.addr_resolved = True
        assert sq.forwarding_store(load_seq=9, addr=0x1000, size=8) is young

    def test_unresolved_older_than(self):
        sq = StoreQueue(4)
        store = sq.allocate(entry(1, isa.OpKind.STORE))
        assert sq.unresolved_older_than(load_seq=5)
        store.addr_resolved = True
        assert not sq.unresolved_older_than(load_seq=5)
