"""End-to-end single-core pipeline tests with explicit programs."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from conftest import run_ops, simple_load_alu_ops

from repro import ConsistencyModel, Scheme, SystemParams
from repro.cpu import isa
from repro.cpu.isa import MicroOp, OpKind


class TestBasicPipeline:
    def test_alu_program_retires_everything(self):
        ops = [isa.alu(pc=i) for i in range(50)]
        result, _ = run_ops(ops)
        assert result.instructions == 50

    def test_loads_and_alus(self):
        result, _ = run_ops(simple_load_alu_ops(10))
        assert result.instructions == 20

    def test_dependent_chain_serializes(self):
        chained = [isa.alu(pc=i, latency=5, deps=(1,) if i else ()) for i in range(20)]
        parallel = [isa.alu(pc=i, latency=5) for i in range(20)]
        chained_result, _ = run_ops(chained)
        parallel_result, _ = run_ops(parallel)
        assert chained_result.cycles > parallel_result.cycles * 3

    def test_compute_fn_dataflow(self):
        ops = [
            isa.alu(pc=0, dst="a", compute_fn=lambda env: 5),
            isa.alu(pc=1, dst="b", deps=(1,), compute_fn=lambda env: env["a"] * 3),
        ]
        result, system = run_ops(ops)
        assert system.cores[0].env["b"] == 15

    def test_load_reads_initialized_memory(self):
        ops = [isa.load(pc=0, addr=0x9000, size=8, dst="x")]
        result, system = run_ops(ops, memory_init={0x9000: [0xAB, 0xCD]})
        assert system.cores[0].env["x"] == 0xCDAB

    def test_max_instructions_truncates(self):
        ops = [isa.alu(pc=i) for i in range(100)]
        result, _ = run_ops(ops, max_instructions=30)
        assert result.instructions == 30


class TestStores:
    def test_store_reaches_memory(self):
        ops = [isa.store(pc=0, addr=0x5000, size=8, value=0x77)]
        result, system = run_ops(ops)
        assert system.image.read(0x5000, 8) == 0x77

    def test_store_to_load_forwarding(self):
        ops = [
            isa.store(pc=0, addr=0x5000, size=8, value=42),
            isa.load(pc=1, addr=0x5000, size=8, dst="x"),
        ]
        result, system = run_ops(ops)
        assert system.cores[0].env["x"] == 42
        assert result.count("core.store_forwards") == 1

    def test_stores_drain_in_order_under_tso(self):
        ops = [
            isa.store(pc=i, addr=0x5000 + 8 * i, size=8, value=i)
            for i in range(10)
        ]
        result, system = run_ops(ops, consistency=ConsistencyModel.TSO)
        for i in range(10):
            assert system.image.read(0x5000 + 8 * i, 8) == i

    def test_store_load_alias_squash(self):
        """A load bypasses an unresolved older store to the same address
        and is squashed when the store resolves (the SSB mechanism)."""
        slow = isa.load(pc=0, addr=0xA000, size=8, dst="p")
        store = MicroOp(
            OpKind.STORE, pc=1, size=8, store_value=1,
            addr_fn=lambda env: 0xB000, deps=(1,),
        )
        load = isa.load(pc=2, addr=0xB000, size=8, dst="x")
        result, system = run_ops([slow, store, load])
        assert result.count("core.store_load_alias_squashes") >= 1
        # Architecturally the load must see the store's value.
        assert system.cores[0].env["x"] == 1


class TestBranches:
    def _branch_program(self, taken_pattern):
        ops = []
        for i, taken in enumerate(taken_pattern):
            ops.append(isa.alu(pc=0x100 + i))
            ops.append(isa.branch(pc=0x500, taken=taken))
        return ops

    def test_predictable_branches_rarely_squash(self):
        # Warmup mispredicts only: the global history must fill with ones
        # (~12 branches) before every component predicts taken.
        result, _ = run_ops(self._branch_program([True] * 60))
        assert result.count("core.squashes.branch") <= 14
        # And the tail is clean: a longer run adds almost no squashes.
        longer, _ = run_ops(self._branch_program([True] * 200))
        assert (
            longer.count("core.squashes.branch")
            <= result.count("core.squashes.branch") + 2
        )

    def test_alternating_branches_learned(self):
        result, _ = run_ops(self._branch_program([bool(i % 2) for i in range(80)]))
        # The tournament predictor learns the alternation quickly.
        assert result.count("core.squashes.branch") <= 20

    def test_mispredicted_branch_squashes_and_replays(self):
        # A branch the predictor cannot know: single surprise not-taken
        # after training taken.
        pattern = [True] * 30 + [False] + [True] * 5
        result, _ = run_ops(self._branch_program(pattern))
        assert result.count("core.squashes.branch") >= 1
        assert result.instructions == 2 * len(pattern)

    def test_wrong_path_ops_never_retire(self):
        branch = isa.branch(pc=0x500, taken=False)
        wrong = [isa.load(pc=0x600, addr=0xC000, size=8)]
        # Train the predictor to take this branch so it mispredicts.
        train = []
        for _ in range(30):
            train.append(isa.branch(pc=0x500, taken=True))
        ops = train + [branch, isa.alu(pc=0x700)]
        result, system = run_ops(ops, wrong_paths={branch.uid: wrong})
        assert result.instructions == len(ops)

    def test_transient_loads_pollute_cache_in_base(self):
        branch = isa.branch(pc=0x500, taken=False)
        wrong = [isa.load(pc=0x600, addr=0xC000, size=8)]
        train = [isa.branch(pc=0x500, taken=True) for _ in range(30)]
        # Delay resolution so the wrong path executes.
        slow = isa.load(pc=0x10, addr=0xD000, size=8, dst="d")
        branch.deps = (1,)
        ops = train + [slow, branch]
        result, system = run_ops(
            ops, scheme=Scheme.BASE, wrong_paths={branch.uid: wrong}
        )
        line = system.space.line_of(0xC000)
        assert system.hierarchy.l1s[0].contains(line)  # the leak

    def test_transient_loads_invisible_under_invisispec(self):
        branch = isa.branch(pc=0x500, taken=False)
        wrong = [isa.load(pc=0x600, addr=0xC000, size=8)]
        train = [isa.branch(pc=0x500, taken=True) for _ in range(30)]
        slow = isa.load(pc=0x10, addr=0xD000, size=8, dst="d")
        branch.deps = (1,)
        ops = train + [slow, branch]
        result, system = run_ops(
            ops, scheme=Scheme.IS_SPECTRE, wrong_paths={branch.uid: wrong}
        )
        line = system.space.line_of(0xC000)
        assert not system.hierarchy.l1s[0].contains(line)
        bank = system.hierarchy.bank_of(line)
        assert not system.hierarchy.l2[bank].contains(line)


class TestFences:
    def test_fence_spectre_inserts_fences(self):
        ops = []
        for i in range(20):
            ops.append(isa.branch(pc=0x500, taken=True))
            ops.append(isa.load(pc=0x100, addr=0x1000 + 64 * i, size=8))
        base, _ = run_ops(list(ops), scheme=Scheme.BASE)
        fenced, _ = run_ops(list(ops), scheme=Scheme.FENCE_SPECTRE)
        assert fenced.cycles > base.cycles

    def test_fence_future_slower_than_fence_spectre(self):
        ops = simple_load_alu_ops(25)
        fe_sp, _ = run_ops(list(ops), scheme=Scheme.FENCE_SPECTRE)
        fe_fu, _ = run_ops(list(ops), scheme=Scheme.FENCE_FUTURE)
        assert fe_fu.cycles >= fe_sp.cycles

    def test_explicit_fence_orders_execution(self):
        ops = [
            isa.load(pc=0, addr=0xE000, size=8),
            isa.fence(pc=1),
            isa.load(pc=2, addr=0xE040, size=8),
        ]
        result, _ = run_ops(ops)
        assert result.instructions == 3


class TestExceptions:
    def test_exception_squashes_younger_and_retires(self):
        ops = [
            isa.alu(pc=0),
            MicroOp(OpKind.EXCEPTION, pc=1),
            isa.alu(pc=2),
            isa.alu(pc=3),
        ]
        result, _ = run_ops(ops)
        assert result.count("core.exceptions") == 1
        assert result.instructions == 4  # younger ops re-fetched and retired

    def test_exception_wrong_path_arm_is_transient(self):
        fault = MicroOp(OpKind.EXCEPTION, pc=1, deps=(1,))
        transient = [isa.load(pc=0x600, addr=0xC4C0, size=8)]
        slow = isa.load(pc=0, addr=0xF000, size=8, dst="d")
        ops = [slow, fault, isa.alu(pc=2)]
        result, system = run_ops(ops, wrong_paths={fault.uid: transient})
        assert result.instructions == 3
        # Transient op executed (cache polluted under Base) but not retired.
        assert system.hierarchy.l1s[0].contains(system.space.line_of(0xC4C0))


class TestInterrupts:
    def test_timer_interrupt_squashes_and_recovers(self):
        params = SystemParams.for_spec().replace(
            core=SystemParams().core.__class__(interrupt_interval=200),
        )
        ops = simple_load_alu_ops(40, base=0x2000)
        result, _ = run_ops(ops, params=params)
        assert result.instructions == 80
        assert result.count("core.squashes.interrupt") >= 1
