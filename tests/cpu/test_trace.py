"""Trace source and replay stream tests."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu import isa
from repro.cpu.trace import InteractiveTrace, ProgramTrace, ReplayStream
from repro.errors import WorkloadError


def ops(n):
    return [isa.alu(pc=i) for i in range(n)]


class TestProgramTrace:
    def test_sequential_delivery(self):
        program = ops(3)
        trace = ProgramTrace(program)
        assert [trace.next_op() for _ in range(3)] == program
        assert trace.next_op() is None

    def test_wrong_path_arm(self):
        branch = isa.branch(pc=0x10, taken=False)
        arm = ops(2)
        trace = ProgramTrace([branch], wrong_paths={branch.uid: arm})
        assert trace.wrong_path_op(branch, 0) is arm[0]
        assert trace.wrong_path_op(branch, 1) is arm[1]
        assert trace.wrong_path_op(branch, 2) is None

    def test_no_wrong_path_returns_none(self):
        branch = isa.branch(pc=0x10)
        trace = ProgramTrace([branch])
        assert trace.wrong_path_op(branch, 0) is None


class TestReplayStream:
    def test_fetch_assigns_positions(self):
        stream = ReplayStream(ProgramTrace(ops(3)))
        assert stream.fetch()[0] == 0
        assert stream.fetch()[0] == 1

    def test_rewind_replays_identical_ops(self):
        stream = ReplayStream(ProgramTrace(ops(5)))
        first = [stream.fetch() for _ in range(4)]
        stream.rewind_to(1)
        replayed = [stream.fetch() for _ in range(3)]
        assert [op for _, op in replayed] == [op for _, op in first[1:]]

    def test_retire_frees_and_blocks_rewind(self):
        stream = ReplayStream(ProgramTrace(ops(4)))
        stream.fetch()
        stream.fetch()
        stream.retire(0)
        with pytest.raises(WorkloadError):
            stream.rewind_to(0)

    def test_retire_out_of_order_raises(self):
        stream = ReplayStream(ProgramTrace(ops(4)))
        stream.fetch()
        stream.fetch()
        with pytest.raises(WorkloadError):
            stream.retire(1)

    def test_exhausted_after_source_ends(self):
        stream = ReplayStream(ProgramTrace(ops(1)))
        stream.fetch()
        assert stream.fetch() is None
        assert stream.exhausted

    def test_exhausted_false_when_replay_pending(self):
        stream = ReplayStream(ProgramTrace(ops(2)))
        stream.fetch()
        stream.fetch()
        assert stream.fetch() is None
        stream.rewind_to(1)
        assert not stream.exhausted
        assert stream.fetch()[0] == 1

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=20))
    def test_rewind_always_replays_same_uid(self, rewinds):
        stream = ReplayStream(ProgramTrace(ops(10)))
        seen = {}
        pos_limit = 0
        for target in rewinds:
            # fetch a few
            for _ in range(3):
                item = stream.fetch()
                if item is None:
                    break
                pos, op = item
                if pos in seen:
                    assert seen[pos] is op
                seen[pos] = op
                pos_limit = max(pos_limit, pos)
            stream.rewind_to(min(target, pos_limit))


class TestInteractiveTrace:
    def test_feed_extends(self):
        trace = InteractiveTrace()
        assert trace.next_op() is None
        trace.feed(ops(2))
        assert trace.next_op() is not None
        assert trace.next_op() is not None
        assert trace.next_op() is None
        trace.feed(ops(1))
        assert trace.next_op() is not None

    def test_reopen_via_replay(self):
        trace = InteractiveTrace()
        stream = ReplayStream(trace)
        assert stream.fetch() is None
        assert stream.exhausted
        trace.feed(ops(1))
        stream.reopen()
        assert not stream.exhausted
        assert stream.fetch() is not None
