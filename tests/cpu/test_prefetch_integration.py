"""Hardware-prefetcher integration: visible-only training (Section VI-B)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import dataclasses

from conftest import run_ops

from repro import Scheme, SystemParams
from repro.cpu import isa


def prefetch_params(degree=2):
    base = SystemParams.for_spec()
    return base.replace(core=dataclasses.replace(base.core, prefetch_degree=degree))


def streaming_ops(n=30, base=0x2_0000):
    """A perfectly strided load stream from one PC."""
    return [isa.load(pc=0x100, addr=base + 64 * i, size=8) for i in range(n)]


class TestPrefetcherIntegration:
    def test_disabled_by_default(self):
        result, system = run_ops(streaming_ops())
        assert system.cores[0].prefetcher is None
        assert result.count("core.hw_prefetches_issued") == 0

    def test_streaming_triggers_prefetches(self):
        result, _ = run_ops(streaming_ops(), params=prefetch_params())
        assert result.count("core.hw_prefetches_issued") > 0

    def test_prefetched_lines_land_in_cache(self):
        result, system = run_ops(streaming_ops(40), params=prefetch_params())
        # Far end of the stream was prefetched ahead of demand.
        hits = result.count("hierarchy.l1_hits.load")
        assert hits > 0

    def test_random_stream_stays_quiet(self):
        ops = [
            isa.load(pc=0x100, addr=0x2_0000 + 64 * ((i * 37) % 97), size=8)
            for i in range(30)
        ]
        result, _ = run_ops(ops, params=prefetch_params())
        assert result.count("core.hw_prefetches_issued") == 0

    def test_transient_loads_never_train_under_invisispec(self):
        """A squashed wrong path full of strided loads must leave no
        prefetch footprint under IS (Section VI-B)."""
        train = [isa.branch(pc=0x500, taken=True) for _ in range(30)]
        slow = isa.load(pc=0x10, addr=0xF000, size=8, dst="d")
        branch = isa.branch(pc=0x500, taken=False, deps=(1,))
        wrong = [
            isa.load(pc=0x700, addr=0x8_0000 + 64 * i, size=8) for i in range(8)
        ]
        ops = train + [slow, branch]
        result, system = run_ops(
            ops,
            scheme=Scheme.IS_FUTURE,
            params=prefetch_params(),
            wrong_paths={branch.uid: wrong},
        )
        # No prefetch was issued for the transient stride.
        prefetched_region = [
            line
            for line in system.hierarchy.l1s[0].resident_lines()
            if 0x8_0000 <= line < 0x9_0000
        ]
        assert prefetched_region == []

    def test_transient_loads_do_train_in_base(self):
        """The contrast: the insecure baseline prefetches down the wrong
        path, leaving an even larger footprint."""
        train = [isa.branch(pc=0x500, taken=True) for _ in range(30)]
        slow = isa.load(pc=0x10, addr=0xF000, size=8, dst="d")
        branch = isa.branch(pc=0x500, taken=False, deps=(1,))
        wrong = [
            isa.load(pc=0x700, addr=0x8_0000 + 64 * i, size=8) for i in range(8)
        ]
        ops = train + [slow, branch]
        result, system = run_ops(
            ops,
            scheme=Scheme.BASE,
            params=prefetch_params(),
            wrong_paths={branch.uid: wrong},
        )
        touched = [
            line
            for line in system.hierarchy.l1s[0].resident_lines()
            if 0x8_0000 <= line < 0x9_0000
        ]
        assert len(touched) > 0
