"""Squash/replay edge cases in the pipeline."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from conftest import run_ops

from repro import Scheme
from repro.cpu import isa
from repro.cpu.isa import MicroOp, OpKind


def trained_mispredict(wrong_arm, extra_tail=()):
    """30 taken branches, then a surprise not-taken with ``wrong_arm``."""
    train = [isa.branch(pc=0x500, taken=True) for _ in range(30)]
    slow = isa.load(pc=0x10, addr=0xF000, size=8, dst="d")
    branch = isa.branch(pc=0x500, taken=False, deps=(1,))
    ops = train + [slow, branch] + list(extra_tail)
    return ops, {branch.uid: list(wrong_arm)}


class TestNestedWrongPath:
    def test_wrong_path_branches_do_not_redirect(self):
        """A mispredicted branch inside a wrong path must not retrain the
        frontend or squash anything."""
        wrong = [
            isa.branch(pc=0x900, taken=True),
            isa.load(pc=0x904, addr=0xC000, size=8),
            isa.branch(pc=0x908, taken=False),
            isa.alu(pc=0x90C),
        ]
        ops, arms = trained_mispredict(wrong, extra_tail=[isa.alu(pc=0x700)])
        result, _ = run_ops(ops, wrong_paths=arms)
        assert result.instructions == len(ops)

    def test_wrong_path_exhaustion_idles_frontend(self):
        """A short wrong-path arm simply runs out; the core waits for the
        branch to resolve and then recovers."""
        ops, arms = trained_mispredict([isa.alu(pc=0x900)],
                                       extra_tail=[isa.alu(pc=0x700)] * 5)
        result, _ = run_ops(ops, wrong_paths=arms)
        assert result.instructions == len(ops)


class TestSquashDuringMemory:
    def test_inflight_load_response_after_squash_is_ignored(self):
        """A DRAM response landing after its load was squashed must not
        corrupt the replayed load."""
        wrong = [isa.load(pc=0x900, addr=0xC000, size=8, dst="w")]
        tail = [isa.load(pc=0x700, addr=0xE000, size=8, dst="x")]
        ops, arms = trained_mispredict(wrong, extra_tail=tail)
        result, system = run_ops(
            ops, wrong_paths=arms, memory_init={0xE000: [5]}
        )
        assert system.cores[0].env["x"] == 5
        assert result.instructions == len(ops)

    def test_squashed_store_never_reaches_memory(self):
        wrong = [
            MicroOp(OpKind.STORE, pc=0x900, addr=0xC800, size=8,
                    store_value=0xBAD),
        ]
        ops, arms = trained_mispredict(wrong)
        result, system = run_ops(ops, wrong_paths=arms)
        assert system.image.read(0xC800, 8) == 0  # never performed

    def test_replay_preserves_memory_semantics(self):
        """A consistency-style squash replays the load; the architected
        value is the final memory value."""
        ops = [
            isa.store(pc=0x100, addr=0x5000, size=8, value=7),
            isa.load(pc=0x104, addr=0x5000, size=8, dst="x"),
            isa.alu(pc=0x108, deps=(1,)),
        ]
        result, system = run_ops(ops)
        assert system.cores[0].env["x"] == 7


class TestEpochDiscipline:
    def test_epoch_increments_per_squash(self):
        wrong = [isa.load(pc=0x900, addr=0xC000, size=8)]
        ops, arms = trained_mispredict(wrong)
        result, system = run_ops(ops, wrong_paths=arms, scheme=Scheme.IS_FUTURE)
        core = system.cores[0]
        squashes = sum(
            result.count(f"core.squashes.{r}")
            for r in ("branch", "consistency", "validation_fail",
                      "store_alias", "interrupt", "exception")
        )
        assert core.epoch == squashes
        assert squashes >= 1

    def test_lq_sq_empty_after_completion(self):
        wrong = [isa.load(pc=0x900, addr=0xC000, size=8)]
        ops, arms = trained_mispredict(
            wrong,
            extra_tail=[isa.store(pc=0x700, addr=0x6000, size=8, value=1)],
        )
        _result, system = run_ops(ops, wrong_paths=arms)
        core = system.cores[0]
        assert len(core.lq) == 0
        assert len(core.sq) == 0
        assert core.rob.empty


class TestRetireOrdering:
    def test_instructions_retire_in_stream_order(self):
        """Replay bookkeeping guarantees in-order retirement positions."""
        ops = []
        for i in range(15):
            ops.append(isa.branch(pc=0x500, taken=bool(i % 3)))
            ops.append(isa.load(pc=0x20, addr=0x1000 + 64 * i, size=8))
            ops.append(isa.alu(pc=0x30, deps=(1,)))
        result, system = run_ops(ops)
        assert result.instructions == len(ops)
        assert system.cores[0].replay.retire_pos == len(ops)
