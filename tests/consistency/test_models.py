"""TSO and RC policy tests."""

import pytest

from repro.configs import ConsistencyModel
from repro.consistency import RCPolicy, TSOPolicy, make_consistency_policy
from repro.errors import ConfigError


class TestFactory:
    def test_builds_tso(self):
        assert isinstance(
            make_consistency_policy(ConsistencyModel.TSO), TSOPolicy
        )

    def test_builds_rc(self):
        assert isinstance(make_consistency_policy(ConsistencyModel.RC), RCPolicy)

    def test_rejects_unknown(self):
        with pytest.raises(ConfigError):
            make_consistency_policy("SC")


class TestWriteBufferDiscipline:
    def test_tso_is_fifo(self):
        assert TSOPolicy.fifo_write_buffer

    def test_rc_is_relaxed(self):
        assert not RCPolicy.fifo_write_buffer


class FakeCore:
    def __init__(self, sync_seq=None):
        self._sync_seq = sync_seq

    def min_incomplete_sync_seq(self):
        return self._sync_seq


class FakeLoad:
    def __init__(self, seq):
        self.seq = seq


class TestBaselineSquashRules:
    def test_tso_always_squashes_on_invalidation(self):
        assert TSOPolicy().squash_on_invalidation(None, FakeLoad(5))

    def test_rc_squashes_only_under_older_acquire(self):
        policy = RCPolicy()
        assert not policy.squash_on_invalidation(FakeCore(None), FakeLoad(5))
        assert policy.squash_on_invalidation(FakeCore(2), FakeLoad(5))
        assert not policy.squash_on_invalidation(FakeCore(9), FakeLoad(5))


class TestRCValidationRule:
    def test_validation_only_under_older_sync(self):
        policy = RCPolicy()
        assert not policy.usl_needs_validation(FakeCore(None), FakeLoad(5), True)
        assert policy.usl_needs_validation(FakeCore(1), FakeLoad(5), True)
