"""Multiprocessor litmus tests.

Executable versions of the orderings the paper's appendix reasons about:
under TSO, no interleaving may expose an observable load-load reordering —
on the baseline (enforced by invalidation squashes) *and* under InvisiSpec
(enforced by validations/exposures and early squashes), which is exactly
the theorem the appendix proves.

Each litmus scans a range of writer delays so the racing window slides
across the reader's speculative window.
"""

import pytest

from repro import (
    ConsistencyModel,
    ProcessorConfig,
    Scheme,
    SystemParams,
)
from repro.cpu.isa import MicroOp, OpKind
from repro.cpu.trace import ProgramTrace
from repro.system import System

DATA = 0x7200_0000
FLAG = 0x7300_0000
SLOW = 0x1600_0000  # reader-private DRAM miss used to delay one load

ALL_SCHEMES = (
    Scheme.BASE,
    Scheme.IS_SPECTRE,
    Scheme.IS_FUTURE,
)


def run_two_cores(reader_ops, writer_ops, scheme, consistency,
                  warm_reader=()):
    """Run a 2-core litmus; returns the reader core (for env inspection)."""
    warm = [
        MicroOp(OpKind.LOAD, pc=0x50 + 4 * i, addr=addr, size=8)
        for i, addr in enumerate(warm_reader)
    ]
    system = System(
        params=SystemParams(num_cores=2),
        config=ProcessorConfig(scheme=scheme, consistency=consistency),
        traces=[ProgramTrace(warm + reader_ops), ProgramTrace(writer_ops)],
    )
    system.run(max_cycles=2_000_000)
    # Every litmus run must also leave the machine coherent.
    from repro.coherence.checker import check_all

    check_all(system.hierarchy)
    return system


def message_passing_reader():
    """r1 = flag (delayed); r2 = data (issues early, may bypass r1)."""
    return [
        MicroOp(OpKind.LOAD, pc=0x100, addr=SLOW, size=8, dst="slow"),
        MicroOp(OpKind.LOAD, pc=0x104, addr=FLAG, size=8, dst="r1",
                deps=(1,)),
        MicroOp(OpKind.LOAD, pc=0x108, addr=DATA, size=8, dst="r2"),
    ]


def message_passing_writer(delay):
    """data = 1; flag = 1 (in order, after `delay` cycles of work)."""
    return [
        MicroOp(OpKind.ALU, pc=0x200, latency=max(delay, 1)),
        MicroOp(OpKind.STORE, pc=0x204, addr=DATA, size=8, store_value=1,
                deps=(1,)),
        MicroOp(OpKind.STORE, pc=0x208, addr=FLAG, size=8, store_value=1),
    ]


#: Writer delays scanning the race window across the reader's execution.
DELAYS = (1, 20, 60, 100, 140, 200, 300)


class TestMessagePassingTSO:
    """TSO forbids r1=1 (new flag) with r2=0 (old data)."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_no_observable_reordering(self, scheme):
        for delay in DELAYS:
            system = run_two_cores(
                message_passing_reader(),
                message_passing_writer(delay),
                scheme,
                ConsistencyModel.TSO,
                warm_reader=(DATA,),  # data hits; flag misses: max reorder
            )
            env = system.cores[0].env
            forbidden = env.get("r1") == 1 and env.get("r2") == 0
            assert not forbidden, (
                f"TSO violation under {scheme.value} at delay={delay}: "
                f"r1={env.get('r1')} r2={env.get('r2')}"
            )

    def test_enforcement_machinery_engages(self):
        """Somewhere in the delay scan, the enforcement fires: baseline
        invalidation squashes, or InvisiSpec validations/early squashes."""
        base_squashes = 0
        invisi_actions = 0
        for delay in DELAYS:
            base = run_two_cores(
                message_passing_reader(), message_passing_writer(delay),
                Scheme.BASE, ConsistencyModel.TSO, warm_reader=(DATA,),
            )
            base_squashes += base.counters["core.squashes.consistency"]
            invisi = run_two_cores(
                message_passing_reader(), message_passing_writer(delay),
                Scheme.IS_FUTURE, ConsistencyModel.TSO, warm_reader=(DATA,),
            )
            invisi_actions += invisi.counters["invisispec.validations"]
            invisi_actions += invisi.counters[
                "invisispec.early_squash_invalidation"
            ]
        assert invisi_actions > 0
        # The baseline path may or may not squash depending on timing, but
        # InvisiSpec must have validated its speculative loads.


class TestMessagePassingRCWithSync:
    """RC forbids the reordering when an acquire separates the loads."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_acquire_orders_loads(self, scheme):
        for delay in DELAYS:
            reader = [
                MicroOp(OpKind.LOAD, pc=0x100, addr=SLOW, size=8, dst="slow"),
                MicroOp(OpKind.LOAD, pc=0x104, addr=FLAG, size=8, dst="r1",
                        deps=(1,)),
                MicroOp(OpKind.ACQUIRE, pc=0x106),
                MicroOp(OpKind.LOAD, pc=0x108, addr=DATA, size=8, dst="r2"),
            ]
            system = run_two_cores(
                reader,
                message_passing_writer(delay),
                scheme,
                ConsistencyModel.RC,
                warm_reader=(DATA,),
            )
            env = system.cores[0].env
            forbidden = env.get("r1") == 1 and env.get("r2") == 0
            assert not forbidden, (
                f"RC+acquire violation under {scheme.value} at delay={delay}"
            )


class TestCoherentReadRead:
    """Same-address load-load: a younger read must never return an older
    value than an older read (TSO)."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_corr(self, scheme):
        for delay in DELAYS:
            reader = [
                MicroOp(OpKind.LOAD, pc=0x100, addr=SLOW, size=8, dst="slow"),
                MicroOp(OpKind.LOAD, pc=0x104, addr=DATA, size=8, dst="r1",
                        deps=(1,)),
                MicroOp(OpKind.LOAD, pc=0x108, addr=DATA, size=8, dst="r2"),
            ]
            writer = [
                MicroOp(OpKind.ALU, pc=0x200, latency=max(delay, 1)),
                MicroOp(OpKind.STORE, pc=0x204, addr=DATA, size=8,
                        store_value=1, deps=(1,)),
            ]
            system = run_two_cores(
                reader, writer, scheme, ConsistencyModel.TSO,
                warm_reader=(DATA,),
            )
            env = system.cores[0].env
            forbidden = env.get("r1") == 1 and env.get("r2") == 0
            assert not forbidden, (
                f"CoRR violation under {scheme.value} at delay={delay}"
            )


class TestIRIW:
    """Independent reads of independent writes (4 cores): TSO's store
    atomicity forbids the two readers observing the writes in opposite
    orders."""

    @pytest.mark.parametrize("scheme", (Scheme.BASE, Scheme.IS_FUTURE))
    def test_readers_agree_on_write_order(self, scheme):
        X, Y = DATA, FLAG
        for delay in (1, 40, 120):
            def reader(first, second, tag):
                return [
                    MicroOp(OpKind.LOAD, pc=0x100, addr=SLOW + 64 * tag,
                            size=8, dst="slow"),
                    MicroOp(OpKind.LOAD, pc=0x104, addr=first, size=8,
                            dst="a", deps=(1,)),
                    MicroOp(OpKind.LOAD, pc=0x108, addr=second, size=8,
                            dst="b"),
                ]

            writer_x = [
                MicroOp(OpKind.ALU, pc=0x200, latency=delay),
                MicroOp(OpKind.STORE, pc=0x204, addr=X, size=8,
                        store_value=1, deps=(1,)),
            ]
            writer_y = [
                MicroOp(OpKind.ALU, pc=0x300, latency=delay + 15),
                MicroOp(OpKind.STORE, pc=0x304, addr=Y, size=8,
                        store_value=1, deps=(1,)),
            ]
            system = System(
                params=SystemParams(num_cores=4),
                config=ProcessorConfig(scheme=scheme,
                                       consistency=ConsistencyModel.TSO),
                traces=[
                    ProgramTrace(reader(X, Y, 0)),
                    ProgramTrace(reader(Y, X, 1)),
                    ProgramTrace(writer_x),
                    ProgramTrace(writer_y),
                ],
            )
            system.run(max_cycles=2_000_000)
            env0 = system.cores[0].env  # read x then y
            env1 = system.cores[1].env  # read y then x
            r0_sees_x_not_y = env0.get("a") == 1 and env0.get("b") == 0
            r1_sees_y_not_x = env1.get("a") == 1 and env1.get("b") == 0
            assert not (r0_sees_x_not_y and r1_sees_y_not_x), (
                f"IRIW violation under {scheme.value} at delay={delay}"
            )


class TestStoreBuffering:
    """SB: r1=0 and r2=0 is *allowed* under TSO (store->load reordering);
    the stores must still both land in memory."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_stores_become_visible(self, scheme):
        X, Y = DATA, FLAG
        core0 = [
            MicroOp(OpKind.STORE, pc=0x100, addr=X, size=8, store_value=1),
            MicroOp(OpKind.LOAD, pc=0x104, addr=Y, size=8, dst="r1"),
        ]
        core1 = [
            MicroOp(OpKind.STORE, pc=0x200, addr=Y, size=8, store_value=1),
            MicroOp(OpKind.LOAD, pc=0x204, addr=X, size=8, dst="r2"),
        ]
        system = System(
            params=SystemParams(num_cores=2),
            config=ProcessorConfig(scheme=scheme,
                                   consistency=ConsistencyModel.TSO),
            traces=[ProgramTrace(core0), ProgramTrace(core1)],
        )
        system.run(max_cycles=2_000_000)
        assert system.image.read(X, 8) == 1
        assert system.image.read(Y, 8) == 1
