"""Processor configuration (Table V) tests."""

import pytest

from repro import (
    ALL_SCHEMES,
    ConfigError,
    ConsistencyModel,
    ProcessorConfig,
    Scheme,
    config_matrix,
)


class TestScheme:
    def test_five_schemes_in_paper_order(self):
        assert [s.value for s in ALL_SCHEMES] == [
            "Base", "Fe-Sp", "IS-Sp", "Fe-Fu", "IS-Fu",
        ]

    def test_invisispec_flags(self):
        assert Scheme.IS_SPECTRE.is_invisispec
        assert Scheme.IS_FUTURE.is_invisispec
        assert not Scheme.BASE.is_invisispec
        assert not Scheme.FENCE_SPECTRE.is_invisispec

    def test_fence_flags(self):
        assert Scheme.FENCE_SPECTRE.is_fence
        assert Scheme.FENCE_FUTURE.is_fence
        assert not Scheme.IS_SPECTRE.is_fence

    def test_attack_models(self):
        assert Scheme.BASE.attack_model is None
        assert Scheme.FENCE_SPECTRE.attack_model == "spectre"
        assert Scheme.IS_SPECTRE.attack_model == "spectre"
        assert Scheme.FENCE_FUTURE.attack_model == "futuristic"
        assert Scheme.IS_FUTURE.attack_model == "futuristic"


class TestProcessorConfig:
    def test_defaults(self):
        config = ProcessorConfig()
        assert config.scheme is Scheme.BASE
        assert config.consistency is ConsistencyModel.TSO
        assert config.llc_sb_enabled
        assert config.val_to_exp_optimization
        assert config.early_squash
        assert config.base_squash_on_l1_eviction

    def test_name_combines_scheme_and_consistency(self):
        config = ProcessorConfig(
            scheme=Scheme.IS_FUTURE, consistency=ConsistencyModel.RC
        )
        assert config.name == "IS-Fu/RC"

    def test_rejects_non_scheme(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(scheme="base")

    def test_rejects_non_consistency(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(consistency="TSO")

    def test_config_matrix_covers_all_schemes(self):
        matrix = config_matrix()
        assert [c.scheme for c in matrix] == list(ALL_SCHEMES)
        assert all(c.consistency is ConsistencyModel.TSO for c in matrix)

    def test_config_matrix_rc(self):
        matrix = config_matrix(ConsistencyModel.RC)
        assert all(c.consistency is ConsistencyModel.RC for c in matrix)

    def test_frozen(self):
        config = ProcessorConfig()
        with pytest.raises(AttributeError):
            config.scheme = Scheme.IS_FUTURE
