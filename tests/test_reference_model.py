"""Differential testing against an architectural reference model.

The out-of-order simulator may reorder, speculate, squash and replay
however it likes — but the *architectural* outcome of a single-threaded
program (final memory contents and the value each retired load obtained)
must equal a trivial in-order interpreter's.  Hypothesis generates random
programs; every Table V scheme must agree with the reference.
"""

import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import run_ops

from repro import ConsistencyModel, Scheme
from repro.cpu.isa import MicroOp, OpKind

#: A small address pool encourages store/load interactions (forwarding,
#: alias squashes, replays).
ADDRS = [0x9000 + 8 * i for i in range(12)]


@st.composite
def programs(draw):
    """A random single-threaded program over the small address pool."""
    length = draw(st.integers(min_value=4, max_value=40))
    ops = []
    n_loads = 0
    for i in range(length):
        kind = draw(st.sampled_from(["load", "store", "alu", "branch",
                                     "fence"]))
        if kind == "load":
            addr = draw(st.sampled_from(ADDRS))
            ops.append(
                MicroOp(OpKind.LOAD, pc=0x100 + 4 * i, addr=addr, size=8,
                        dst=f"r{n_loads}")
            )
            n_loads += 1
        elif kind == "store":
            addr = draw(st.sampled_from(ADDRS))
            value = draw(st.integers(min_value=0, max_value=0xFFFF))
            ops.append(
                MicroOp(OpKind.STORE, pc=0x200 + 4 * i, addr=addr, size=8,
                        store_value=value)
            )
        elif kind == "branch":
            taken = draw(st.booleans())
            pc = 0x500 + 4 * draw(st.integers(min_value=0, max_value=3))
            ops.append(MicroOp(OpKind.BRANCH, pc=pc, taken=taken, latency=2))
        elif kind == "fence":
            ops.append(MicroOp(OpKind.FENCE, pc=0x300 + 4 * i))
        else:
            deps = (1,) if ops and draw(st.booleans()) else ()
            ops.append(
                MicroOp(OpKind.ALU, pc=0x400 + 4 * i, deps=deps,
                        latency=draw(st.integers(min_value=1, max_value=4)))
            )
    return ops


def reference_execute(ops):
    """In-order architectural interpreter."""
    memory = {}
    registers = {}
    for op in ops:
        if op.kind is OpKind.LOAD:
            registers[op.dst] = memory.get(op.addr, 0)
        elif op.kind is OpKind.STORE:
            memory[op.addr] = op.store_value
    return memory, registers


SCHEMES = list(Scheme)


@settings(max_examples=25, deadline=None)
@given(ops=programs(), scheme=st.sampled_from(SCHEMES))
def test_architectural_equivalence_tso(ops, scheme):
    memory, registers = reference_execute(ops)
    result, system = run_ops(
        [MicroOp(op.kind, pc=op.pc, addr=op.addr, size=op.size,
                 dst=op.dst, store_value=op.store_value, deps=op.deps,
                 taken=op.taken, latency=op.latency) for op in ops],
        scheme=scheme,
        consistency=ConsistencyModel.TSO,
    )
    assert result.instructions == len(ops)
    for addr, value in memory.items():
        assert system.image.read(addr, 8) == value, f"memory at 0x{addr:x}"
    for reg, value in registers.items():
        assert system.cores[0].env.get(reg) == value, f"register {reg}"


@settings(max_examples=15, deadline=None)
@given(ops=programs())
def test_architectural_equivalence_rc(ops):
    memory, registers = reference_execute(ops)
    result, system = run_ops(
        [MicroOp(op.kind, pc=op.pc, addr=op.addr, size=op.size,
                 dst=op.dst, store_value=op.store_value, deps=op.deps,
                 taken=op.taken, latency=op.latency) for op in ops],
        scheme=Scheme.IS_FUTURE,
        consistency=ConsistencyModel.RC,
    )
    assert result.instructions == len(ops)
    for addr, value in memory.items():
        assert system.image.read(addr, 8) == value
    for reg, value in registers.items():
        assert system.cores[0].env.get(reg) == value
