"""Trace-log facility tests."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from conftest import make_system, simple_load_alu_ops

from repro import Scheme
from repro.sim.tracelog import TraceLog


class TestTraceLogUnit:
    def test_record_and_iterate(self):
        log = TraceLog()
        log.record(10, 0, "dispatch", "seq=0")
        log.record(11, 0, "retire", "seq=0")
        assert len(log) == 2
        assert [e[2] for e in log.events()] == ["dispatch", "retire"]

    def test_kind_filter_at_record_time(self):
        log = TraceLog(kinds={"squash"})
        log.record(1, 0, "dispatch", "")
        log.record(2, 0, "squash", "branch")
        assert len(log) == 1

    def test_ring_buffer_caps_and_counts_drops(self):
        log = TraceLog(capacity=3)
        for i in range(5):
            log.record(i, 0, "dispatch", "")
        assert len(log) == 3
        assert log.dropped == 2
        assert [e[0] for e in log.events()] == [2, 3, 4]

    def test_counts_histogram(self):
        log = TraceLog()
        log.record(1, 0, "dispatch", "")
        log.record(2, 0, "dispatch", "")
        log.record(3, 0, "retire", "")
        assert log.counts() == {"dispatch": 2, "retire": 1}

    def test_format_filters_core(self):
        log = TraceLog()
        log.record(1, 0, "dispatch", "a")
        log.record(2, 1, "dispatch", "b")
        lines = log.format(core_id=1)
        assert len(lines) == 1
        assert "core1" in lines[0]

    def test_clear(self):
        log = TraceLog()
        log.record(1, 0, "x", "")
        log.clear()
        assert len(log) == 0


class TestTraceLogIntegration:
    def test_pipeline_events_recorded(self):
        log = TraceLog()
        system = make_system(simple_load_alu_ops(5), tracelog=log)
        system.run(max_cycles=100_000)
        counts = log.counts()
        assert counts["dispatch"] == 10
        assert counts["retire"] == 10

    def test_invisispec_events_recorded(self):
        log = TraceLog()
        system = make_system(
            simple_load_alu_ops(10), scheme=Scheme.IS_FUTURE, tracelog=log
        )
        system.run(max_cycles=100_000)
        counts = log.counts()
        assert counts.get("validate", 0) + counts.get("expose", 0) > 0

    def test_squash_events_recorded(self):
        from repro.cpu import isa

        log = TraceLog(kinds={"squash"})
        ops = []
        for i in range(40):
            ops.append(isa.branch(pc=0x500, taken=(i % 2 == 0)))
        system = make_system(ops, tracelog=log)
        system.run(max_cycles=100_000)
        assert len(log) > 0
        assert all(e[2] == "squash" for e in log.events())
