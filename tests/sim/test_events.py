"""Event queue determinism and ordering."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_fires_in_cycle_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5, lambda: fired.append(5))
        queue.schedule(2, lambda: fired.append(2))
        queue.schedule(9, lambda: fired.append(9))
        queue.run_until(10)
        assert fired == [2, 5, 9]

    def test_same_cycle_fires_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for tag in range(10):
            queue.schedule(3, lambda t=tag: fired.append(t))
        queue.run_until(3)
        assert fired == list(range(10))

    def test_run_until_is_inclusive(self):
        queue = EventQueue()
        fired = []
        queue.schedule(4, lambda: fired.append("a"))
        queue.run_until(4)
        assert fired == ["a"]

    def test_later_events_stay_pending(self):
        queue = EventQueue()
        fired = []
        queue.schedule(4, lambda: fired.append("a"))
        queue.schedule(6, lambda: fired.append("b"))
        queue.run_until(5)
        assert fired == ["a"]
        assert queue.next_cycle() == 6

    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1, lambda: fired.append("x"))
        event.cancel()
        queue.run_until(5)
        assert fired == []

    def test_cancelled_head_skipped_by_next_cycle(self):
        queue = EventQueue()
        first = queue.schedule(1, lambda: None)
        queue.schedule(7, lambda: None)
        first.cancel()
        assert queue.next_cycle() == 7

    def test_next_cycle_empty_is_none(self):
        assert EventQueue().next_cycle() is None

    def test_run_at_rejects_missed_events(self):
        queue = EventQueue()
        queue.schedule(1, lambda: None)
        with pytest.raises(SimulationError):
            queue.run_at(5)

    def test_event_scheduled_during_firing_same_cycle_runs(self):
        queue = EventQueue()
        fired = []

        def outer():
            fired.append("outer")
            queue.schedule(2, lambda: fired.append("inner"))

        queue.schedule(2, outer)
        queue.run_until(2)
        assert fired == ["outer", "inner"]

    def test_len_counts_pending(self):
        queue = EventQueue()
        queue.schedule(1, lambda: None)
        queue.schedule(2, lambda: None)
        assert len(queue) == 2
