"""Simulation kernel: tick protocol, fast-forward, deadlock detection."""

import pytest

from repro.errors import DeadlockError
from repro.sim.kernel import SimKernel


class CountdownComponent:
    """Active for n ticks, then done."""

    def __init__(self, n):
        self.remaining = n
        self.ticks = 0

    def tick(self):
        self.ticks += 1
        if self.remaining <= 0:
            return "done"
        self.remaining -= 1
        return "active"


class EventWaiter:
    """Waits for its event to fire, then finishes."""

    def __init__(self, kernel, at_cycle):
        self.fired = False
        kernel.schedule_at(at_cycle, self._fire)

    def _fire(self):
        self.fired = True

    def tick(self):
        return "done" if self.fired else "waiting"


class TestSimKernel:
    def test_runs_components_to_done(self):
        kernel = SimKernel()
        comp = CountdownComponent(5)
        kernel.register(comp)
        kernel.run()
        assert comp.remaining == 0

    def test_advances_one_cycle_while_active(self):
        kernel = SimKernel()
        kernel.register(CountdownComponent(7))
        final = kernel.run()
        assert final == 7

    def test_fast_forwards_to_next_event_when_waiting(self):
        kernel = SimKernel()
        waiter = EventWaiter(kernel, 1000)
        kernel.register(waiter)
        final = kernel.run()
        assert waiter.fired
        assert final == 1000  # jumped, not crawled

    def test_deadlock_detected_without_events(self):
        kernel = SimKernel()

        class Stuck:
            def tick(self):
                return "waiting"

        kernel.register(Stuck())
        with pytest.raises(DeadlockError):
            kernel.run()

    def test_max_cycles_enforced(self):
        kernel = SimKernel()
        kernel.register(CountdownComponent(1_000_000))
        with pytest.raises(DeadlockError):
            kernel.run(max_cycles=50)

    def test_schedule_negative_delay_clamps_to_now(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule(-5, lambda: fired.append(True))
        kernel.register(CountdownComponent(1))
        kernel.run()
        assert fired == [True]

    def test_drains_events_after_components_finish(self):
        kernel = SimKernel()
        fired = []
        kernel.register(CountdownComponent(1))
        kernel.schedule_at(500, lambda: fired.append(True))
        final = kernel.run()
        assert fired == [True]
        assert final >= 500
