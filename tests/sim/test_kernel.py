"""Simulation kernel: tick protocol, fast-forward, deadlock detection."""

import pytest

from repro.errors import DeadlockError, SimTimeoutError
from repro.sim.kernel import SimKernel


class CountdownComponent:
    """Active for n ticks, then done."""

    def __init__(self, n):
        self.remaining = n
        self.ticks = 0

    def tick(self):
        self.ticks += 1
        if self.remaining <= 0:
            return "done"
        self.remaining -= 1
        return "active"


class EventWaiter:
    """Waits for its event to fire, then finishes."""

    def __init__(self, kernel, at_cycle):
        self.fired = False
        kernel.schedule_at(at_cycle, self._fire)

    def _fire(self):
        self.fired = True

    def tick(self):
        return "done" if self.fired else "waiting"


class TestSimKernel:
    def test_runs_components_to_done(self):
        kernel = SimKernel()
        comp = CountdownComponent(5)
        kernel.register(comp)
        kernel.run()
        assert comp.remaining == 0

    def test_advances_one_cycle_while_active(self):
        kernel = SimKernel()
        kernel.register(CountdownComponent(7))
        final = kernel.run()
        assert final == 7

    def test_fast_forwards_to_next_event_when_waiting(self):
        kernel = SimKernel()
        waiter = EventWaiter(kernel, 1000)
        kernel.register(waiter)
        final = kernel.run()
        assert waiter.fired
        assert final == 1000  # jumped, not crawled

    def test_deadlock_detected_without_events(self):
        kernel = SimKernel()

        class Stuck:
            def tick(self):
                return "waiting"

        kernel.register(Stuck())
        with pytest.raises(DeadlockError):
            kernel.run()

    def test_max_cycles_enforced(self):
        kernel = SimKernel()
        kernel.register(CountdownComponent(1_000_000))
        with pytest.raises(DeadlockError):
            kernel.run(max_cycles=50)

    def test_max_cycles_raises_timeout_not_plain_deadlock(self):
        # Budget exhaustion is a SimTimeoutError; a still-progressing run
        # must be distinguishable from a genuine deadlock.
        kernel = SimKernel()
        kernel.register(CountdownComponent(1_000_000))
        with pytest.raises(SimTimeoutError):
            kernel.run(max_cycles=50)

    def test_true_deadlock_is_not_a_timeout(self):
        kernel = SimKernel()

        class Stuck:
            def tick(self):
                return "waiting"

        kernel.register(Stuck())
        with pytest.raises(DeadlockError) as excinfo:
            kernel.run()
        assert not isinstance(excinfo.value, SimTimeoutError)

    def test_schedule_negative_delay_clamps_to_now(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule(-5, lambda: fired.append(True))
        kernel.register(CountdownComponent(1))
        kernel.run()
        assert fired == [True]

    def test_drains_events_after_components_finish(self):
        kernel = SimKernel()
        fired = []
        kernel.register(CountdownComponent(1))
        kernel.schedule_at(500, lambda: fired.append(True))
        final = kernel.run()
        assert fired == [True]
        assert final >= 500


class TestEdgeCases:
    """Fast-forward/deadlock boundaries the reliability layer leans on."""

    def test_deadlock_grace_boundary_rescued_by_late_event(self):
        # A component may sit "waiting" with an empty queue for exactly
        # DEADLOCK_GRACE cycles; an event scheduled inside the grace window
        # must rescue the run instead of tripping the detector.
        kernel = SimKernel()

        class LateScheduler:
            """Waits with an empty queue, schedules its wake-up just in time."""

            def __init__(self):
                self.stalled = 0
                self.fired = False

            def _fire(self):
                self.fired = True

            def tick(self):
                if self.fired:
                    return "done"
                self.stalled += 1
                if self.stalled == SimKernel.DEADLOCK_GRACE:
                    kernel.schedule(1, self._fire)
                return "waiting"

        comp = LateScheduler()
        kernel.register(comp)
        final = kernel.run()
        assert comp.fired
        assert final <= SimKernel.DEADLOCK_GRACE + 2

    def test_deadlock_fires_just_past_grace(self):
        kernel = SimKernel()

        class Stuck:
            def __init__(self):
                self.stalls = 0

            def tick(self):
                self.stalls += 1
                return "waiting"

        comp = Stuck()
        kernel.register(comp)
        with pytest.raises(DeadlockError) as excinfo:
            kernel.run()
        # Detection happens the cycle after the grace allowance is spent.
        assert excinfo.value.cycle == SimKernel.DEADLOCK_GRACE
        assert not isinstance(excinfo.value, SimTimeoutError)

    def test_straggler_events_fire_in_order_after_all_done(self):
        # Events landing after every component is done (delayed
        # invalidations, exposure completions) must all drain, in cycle
        # order, before run() returns.
        kernel = SimKernel()
        fired = []
        kernel.register(CountdownComponent(1))
        kernel.schedule_at(700, lambda: fired.append(700))
        kernel.schedule_at(300, lambda: fired.append(300))
        kernel.schedule_at(500, lambda: fired.append(500))
        final = kernel.run()
        assert fired == [300, 500, 700]
        assert final >= 700

    def test_straggler_event_may_reactivate_component(self):
        # A drained straggler can hand a component new work; the kernel must
        # resume ticking it rather than treating "all_done" as final.
        kernel = SimKernel()

        class Reactivated:
            def __init__(self):
                self.phase = "first"

            def _more_work(self):
                self.phase = "again"

            def tick(self):
                if self.phase == "first":
                    self.phase = "idle"
                    return "active"
                if self.phase == "again":
                    self.phase = "finished"
                    return "active"
                return "done"

        comp = Reactivated()
        kernel.register(comp)
        kernel.schedule_at(100, comp._more_work)
        kernel.run()
        assert comp.phase == "finished"

    def test_schedule_at_past_cycle_clamps_to_now(self):
        # schedule_at with a cycle already in the past must clamp to "now"
        # rather than corrupting the event queue (run_at would raise on a
        # missed event).
        kernel = SimKernel()
        fired = []

        class Scheduler:
            def __init__(self):
                self.done = False

            def tick(self):
                if kernel.cycle == 3 and not self.done:
                    self.done = True
                    kernel.schedule_at(0, lambda: fired.append(kernel.cycle))
                    return "active"
                return "done" if self.done else "active"

        kernel.register(Scheduler())
        kernel.run()
        assert fired and fired[0] >= 3

    def test_schedule_negative_delay_still_fires(self):
        kernel = SimKernel()
        fired = []
        kernel.register(CountdownComponent(2))
        kernel.schedule(-100, lambda: fired.append(kernel.cycle))
        kernel.run()
        assert fired == [0]
