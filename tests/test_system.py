"""System assembly, RunResult accounting, and warmup tests."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import run_ops, simple_load_alu_ops

from repro import ConfigError, ProcessorConfig, Scheme, SystemParams
from repro.cpu.trace import ProgramTrace
from repro.system import System
from repro.workloads import SPEC_PROFILES, SyntheticTrace


class TestSystemConstruction:
    def test_rejects_trace_count_mismatch(self):
        with pytest.raises(ConfigError):
            System(
                params=SystemParams(num_cores=2),
                config=ProcessorConfig(),
                traces=[ProgramTrace([])],
            )

    def test_rejects_wrong_types(self):
        with pytest.raises(ConfigError):
            System(params="nope", config=ProcessorConfig(), traces=[])

    def test_llc_sbs_wired_only_for_invisispec(self):
        base = System(
            params=SystemParams.for_spec(),
            config=ProcessorConfig(scheme=Scheme.BASE),
            traces=[ProgramTrace([])],
        )
        invisi = System(
            params=SystemParams.for_spec(),
            config=ProcessorConfig(scheme=Scheme.IS_FUTURE),
            traces=[ProgramTrace([])],
        )
        assert base.hierarchy.llc_sbs is None
        assert invisi.hierarchy.llc_sbs is not None

    def test_llc_sb_ablation_unwires(self):
        system = System(
            params=SystemParams.for_spec(),
            config=ProcessorConfig(scheme=Scheme.IS_FUTURE,
                                   llc_sb_enabled=False),
            traces=[ProgramTrace([])],
        )
        assert system.hierarchy.llc_sbs is None

    def test_memory_init(self):
        system = System(
            params=SystemParams.for_spec(),
            config=ProcessorConfig(),
            traces=[ProgramTrace([])],
            memory_init={0x100: [1, 2, 3], 0x200: 7},
        )
        assert system.image.read(0x100, 3) == 0x030201
        assert system.image.read(0x200, 1) == 7


class TestRunResult:
    def test_basic_accounting(self):
        result, _ = run_ops(simple_load_alu_ops(10))
        assert result.instructions == 20
        assert result.cycles > 0
        assert 0 < result.ipc < 8
        assert result.traffic_bytes > 0

    def test_traffic_breakdown_sums_to_total(self):
        result, _ = run_ops(simple_load_alu_ops(10), scheme=Scheme.IS_FUTURE)
        split = result.traffic_breakdown
        assert sum(split.values()) == result.traffic_bytes


class TestWarmup:
    def _run(self, warmup):
        profile = SPEC_PROFILES["hmmer"]
        system = System(
            params=SystemParams.for_spec(),
            config=ProcessorConfig(),
            traces=[SyntheticTrace(profile, seed=1)],
            max_instructions=2000,
            warmup_instructions=warmup,
        )
        return system.run()

    def test_warmup_excluded_from_measurement(self):
        cold = self._run(warmup=0)
        warm = self._run(warmup=2000)
        assert warm.instructions == cold.instructions == 2000
        # Warm measurement sees fewer misses per instruction.
        cold_mpki = cold.count("hierarchy.l1_misses.load") / 2.0
        warm_mpki = warm.count("hierarchy.l1_misses.load") / 2.0
        assert warm_mpki < cold_mpki

    def test_measured_cycles_smaller_than_total(self):
        warm = self._run(warmup=1000)
        assert warm.cycles < warm.total_cycles

    def test_count_is_delta(self):
        warm = self._run(warmup=1000)
        total = warm.counters.get("core.retired_instructions")
        assert warm.count("core.retired_instructions") == total - 1000
