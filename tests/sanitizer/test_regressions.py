"""The sanitizer catches seeded bugs that end-to-end results would miss.

Two regression classes from the paper's own threat analysis:

* a speculative load that leaks into observer-visible cache state
  (re-enabling the pre-InvisiSpec fill path for USLs) — the visibility
  theorem's negation;
* a dropped invalidation whose ack is still counted — a silent SWMR /
  directory-agreement break that completes with wrong behavior instead of
  deadlocking.
"""

import pytest

from repro.configs import ConsistencyModel, ProcessorConfig, Scheme
from repro.coherence.hierarchy import CacheHierarchy
from repro.errors import (
    CoherenceViolation,
    InvariantViolation,
    SanitizerError,
    VisibilityViolation,
)
from repro.reliability.faults import FaultSchedule
from repro.runner import run_parsec, run_spec


@pytest.fixture
def leaky_usl_fills(monkeypatch):
    """Re-enable the insecure baseline fill path for invisible requests:
    a Spec-GetS additionally lands its line in the L2, as it would on a
    processor without the speculative buffer."""
    orig = CacheHierarchy._memory_path

    def leaky(self, req, line, bank, t_dir, cat):
        if req.kind.invisible:
            self._fill_l2(bank, line, self.kernel.cycle, cat)
        return orig(self, req, line, bank, t_dir, cat)

    monkeypatch.setattr(CacheHierarchy, "_memory_path", leaky)


class TestVisibilityRegression:
    @pytest.mark.parametrize("scheme", (Scheme.IS_SPECTRE, Scheme.IS_FUTURE))
    def test_usl_fill_into_l2_is_caught(self, leaky_usl_fills, scheme):
        config = ProcessorConfig(scheme=scheme)
        with pytest.raises(VisibilityViolation) as excinfo:
            run_spec("mcf", config, instructions=2000, sanitize="strict")
        violation = excinfo.value
        # The report names the offending line, core, and state diff.
        assert violation.invariant == "visibility"
        assert violation.line_addr is not None
        assert violation.core_id is not None
        assert "l2" in str(violation)
        assert violation.trace  # event window around the violation

    def test_violation_is_classified(self, leaky_usl_fills):
        config = ProcessorConfig(scheme=Scheme.IS_FUTURE)
        with pytest.raises(InvariantViolation) as excinfo:
            run_spec("mcf", config, instructions=2000, sanitize="strict")
        assert isinstance(excinfo.value, SanitizerError)
        record = excinfo.value.to_dict()
        assert record["invariant"] == "visibility"
        assert record["error_class"] == "VisibilityViolation"
        assert record["cycle"] is not None

    def test_without_sanitizer_the_bug_is_silent(self, leaky_usl_fills):
        """The control: the seeded leak does not perturb results enough
        for any existing detector to notice — the run just completes."""
        config = ProcessorConfig(scheme=Scheme.IS_FUTURE)
        result = run_spec("mcf", config, instructions=2000)
        assert result.instructions > 0


class TestDroppedInvalidation:
    SCHEDULE = ["inv.drop:nth=1"]

    def test_swmr_break_is_caught(self):
        config = ProcessorConfig(scheme=Scheme.BASE)
        with pytest.raises(CoherenceViolation) as excinfo:
            run_parsec(
                "fluidanimate", config, instructions=800, sanitize="strict",
                faults=FaultSchedule.parse(self.SCHEDULE).injector(),
            )
        violation = excinfo.value
        assert violation.invariant == "coherence"
        assert violation.line_addr is not None
        # The message names both sides of the disagreement.
        assert "0x" in str(violation)

    def test_without_sanitizer_the_run_completes_silently(self):
        """inv.drop, unlike inv.ack_drop, is a *silent* wrong-behavior
        fault: no deadlock, no timeout — exactly the class of bug only a
        runtime invariant monitor can surface."""
        config = ProcessorConfig(scheme=Scheme.BASE)
        result = run_parsec(
            "fluidanimate", config, instructions=800,
            faults=FaultSchedule.parse(self.SCHEDULE).injector(),
        )
        assert result.instructions > 0

    def test_under_invisispec_too(self):
        config = ProcessorConfig(
            scheme=Scheme.IS_FUTURE, consistency=ConsistencyModel.TSO
        )
        with pytest.raises(CoherenceViolation):
            run_parsec(
                "fluidanimate", config, instructions=800, sanitize="strict",
                faults=FaultSchedule.parse(self.SCHEDULE).injector(),
            )
