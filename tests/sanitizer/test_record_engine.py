"""Record mode and the reliability-engine integration.

A record-mode sanitizer lets the run finish, stamps the full violation
report on the result, and the engine turns that into a failed cell —
journaled, never retried, counted against ``--max-failures``.
"""

import os

import pytest

from repro.configs import ProcessorConfig, Scheme
from repro.errors import ConfigError, SanitizerError, VisibilityViolation
from repro.reliability import (
    FaultSchedule,
    RetryPolicy,
    RunEngine,
    RunJournal,
)
from repro.runner import run_parsec, run_spec
from repro.sanitizer import Sanitizer, make_sanitizer

CFG = ProcessorConfig(scheme=Scheme.BASE)
DROP_INV = FaultSchedule.parse(["inv.drop:nth=1"])


def drop_inv_cell(seed, max_cycles, watchdog, faults):
    return run_parsec(
        "fluidanimate", CFG, instructions=800, seed=seed, sanitize="record",
        faults=faults, max_cycles=max_cycles, watchdog=watchdog,
    )


class TestRecordMode:
    def test_run_finishes_and_report_collects(self):
        result = run_parsec(
            "fluidanimate", CFG, instructions=800, sanitize="record",
            faults=DROP_INV.injector(),
        )
        report = result.sanitizer_report
        assert report["mode"] == "record"
        assert report["violation_count"] >= 1
        first = report["violations"][0]
        assert first["invariant"] == "coherence"
        assert first["line"] is not None
        assert first["trace"]  # event window survives serialization

    def test_clean_run_reports_empty(self):
        result = run_spec("mcf", CFG, instructions=1000, sanitize="record")
        assert result.sanitizer_report["violations"] == []


class TestEngineIntegration:
    def test_violation_fails_cell_and_lands_in_journal(self, tmp_path):
        journal = RunJournal(os.path.join(tmp_path, "j.json"), experiment="t")
        engine = RunEngine(
            journal=journal,
            policy=RetryPolicy(max_attempts=3),
            fault_schedule=DROP_INV,
        )
        outcome = engine.run_cell("t:drop", drop_inv_cell, base_seed=0)
        assert outcome.status == "failed"
        assert outcome.error_class == "CoherenceViolation"
        assert "invariant violation" in outcome.error_message
        # Not retried: an invariant break is a bug, not a transient.
        assert len(outcome.attempts) == 1
        record = journal.get("t:drop")
        assert record["status"] == "failed"
        violations = record["attempts"][0]["sanitizer"]["violations"]
        assert violations and violations[0]["invariant"] == "coherence"
        # Counts toward the failure budget.
        assert len(engine.failures) == 1
        assert engine.budget_exceeded

    def test_strict_violation_is_not_retried_either(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.is_retryable(VisibilityViolation("x"))
        assert not policy.is_retryable(SanitizerError("x"))

    def test_clean_cell_stays_ok(self, tmp_path):
        journal = RunJournal(os.path.join(tmp_path, "j.json"), experiment="t")
        engine = RunEngine(journal=journal)

        def clean_cell(seed, max_cycles, watchdog, faults):
            return run_spec(
                "mcf", CFG, instructions=1000, seed=seed, sanitize="record",
                max_cycles=max_cycles, watchdog=watchdog, faults=faults,
            )

        outcome = engine.run_cell("t:clean", clean_cell, base_seed=0)
        assert outcome.status == "ok"
        record = journal.get("t:clean")
        assert record["attempts"][0]["sanitizer"]["violation_count"] == 0


class TestMakeSanitizer:
    def test_coercions(self):
        assert make_sanitizer(None) is None
        assert make_sanitizer("strict").mode == "strict"
        assert make_sanitizer("record").mode == "record"
        assert make_sanitizer("fail_fast").mode == "strict"
        assert make_sanitizer(True).mode == "strict"
        existing = Sanitizer(mode="record")
        assert make_sanitizer(existing) is existing

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            make_sanitizer("chatty")
