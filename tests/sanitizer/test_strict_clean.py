"""Strict-mode sanitizer is silent on correct executions.

The sanitizer's value hinges on zero false positives: every check family
(visibility fingerprints, incremental coherence, structural sweeps, golden
differential loads) must run — and report nothing — across the paper's
whole behavior space: every scheme, both consistency models, single- and
multi-core, and the Spectre PoCs where InvisiSpec's invisibility claim is
the very thing under test.
"""

import pytest

from repro.configs import ConsistencyModel, ProcessorConfig, Scheme
from repro.cpu.isa import MicroOp, OpKind
from repro.cpu.trace import ProgramTrace
from repro.params import SystemParams
from repro.runner import run_parsec, run_spec
from repro.security.cross_core import run_cross_core_attack
from repro.security.spectre_v1 import SpectreV1Attack
from repro.system import System

IS_SCHEMES = (Scheme.IS_SPECTRE, Scheme.IS_FUTURE)


def assert_clean(report):
    assert report["violations"] == []
    assert report["violation_count"] == 0


class TestSpecClean:
    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_all_schemes_tso(self, scheme):
        config = ProcessorConfig(scheme=scheme, consistency=ConsistencyModel.TSO)
        result = run_spec("mcf", config, instructions=2000, sanitize="strict")
        report = result.sanitizer_report
        assert_clean(report)
        # The monitor must actually have exercised its check families.
        assert report["checks"]["coherence_line"] > 0
        assert report["checks"]["consistency"] > 0
        assert report["golden"]["loads_checked"] > 0
        if scheme in IS_SCHEMES:
            assert report["checks"]["visibility"] > 0
            assert report["checks"]["usl_window"] > 0

    @pytest.mark.parametrize("scheme", IS_SCHEMES)
    def test_invisispec_rc(self, scheme):
        config = ProcessorConfig(scheme=scheme, consistency=ConsistencyModel.RC)
        result = run_spec("mcf", config, instructions=2000, sanitize="strict")
        assert_clean(result.sanitizer_report)
        assert result.sanitizer_report["checks"]["visibility"] > 0


class TestParsecClean:
    @pytest.mark.parametrize("scheme", (Scheme.BASE,) + IS_SCHEMES)
    def test_multicore_tso(self, scheme):
        config = ProcessorConfig(scheme=scheme, consistency=ConsistencyModel.TSO)
        result = run_parsec(
            "fluidanimate", config, instructions=600, sanitize="strict"
        )
        report = result.sanitizer_report
        assert_clean(report)
        assert report["checks"]["coherence_line"] > 0

    def test_multicore_rc(self):
        config = ProcessorConfig(
            scheme=Scheme.IS_FUTURE, consistency=ConsistencyModel.RC
        )
        result = run_parsec(
            "fluidanimate", config, instructions=600, sanitize="strict"
        )
        assert_clean(result.sanitizer_report)


class TestAttacksClean:
    """The Spectre PoCs stress exactly the paths the sanitizer watches:
    a clean strict run here *is* the visibility theorem, checked live."""

    @pytest.mark.parametrize("scheme", IS_SCHEMES)
    def test_spectre_v1_under_invisispec(self, scheme):
        attack = SpectreV1Attack(
            ProcessorConfig(scheme=scheme), sanitize="strict"
        )
        attack.plant_secret(84)
        attack.train()
        attack.attack_once()
        report = attack.context.sanitizer.report()
        assert_clean(report)
        assert report["checks"]["visibility"] > 0

    def test_cross_core_under_invisispec(self):
        config = ProcessorConfig(scheme=Scheme.IS_FUTURE)
        _latencies, recovered = run_cross_core_attack(
            config, secret=7, sanitize="strict"
        )
        assert recovered is None  # defense holds; sanitizer silent


class TestLitmusClean:
    """A racing message-passing litmus under the sanitizer: the writer's
    invalidations land mid-speculation on the reader, exercising the
    in-flight-invalidation accounting."""

    DATA = 0x7200_0000
    FLAG = 0x7300_0000

    def _reader(self):
        return [
            MicroOp(OpKind.LOAD, pc=0x100, addr=self.FLAG, size=8, dst="r1"),
            MicroOp(OpKind.LOAD, pc=0x104, addr=self.DATA, size=8, dst="r2"),
        ]

    def _writer(self, delay):
        return [
            MicroOp(OpKind.ALU, pc=0x200, latency=max(delay, 1)),
            MicroOp(OpKind.STORE, pc=0x204, addr=self.DATA, size=8,
                    store_value=1, deps=(1,)),
            MicroOp(OpKind.STORE, pc=0x208, addr=self.FLAG, size=8,
                    store_value=1),
        ]

    @pytest.mark.parametrize("scheme", (Scheme.BASE,) + IS_SCHEMES)
    @pytest.mark.parametrize("delay", (1, 60, 200))
    def test_message_passing(self, scheme, delay):
        system = System(
            params=SystemParams(num_cores=2),
            config=ProcessorConfig(
                scheme=scheme, consistency=ConsistencyModel.TSO
            ),
            traces=[
                ProgramTrace(self._reader()),
                ProgramTrace(self._writer(delay)),
            ],
            sanitizer="strict",
        )
        result = system.run(max_cycles=2_000_000)
        assert_clean(result.sanitizer_report)
        assert result.sanitizer_report["checks"]["quiesce"] == 1
