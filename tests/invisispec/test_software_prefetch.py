"""Software-prefetch support (Section VI-B).

A software prefetch under InvisiSpec is a two-step USL: an invisible
prefetch into the SB, then an *exposure* at the visibility point (prefetches
never need memory-consistency validation).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from conftest import run_ops

from repro import Scheme
from repro.cpu import isa
from repro.cpu.isa import MicroOp, OpKind


def prefetch_program(n=6):
    """Warm TLB, then prefetches in a trained branch's shadow, then the
    demand loads that consume them."""
    ops = [isa.branch(pc=0x500, taken=True) for _ in range(30)]
    ops.append(isa.fence(pc=0xC))
    ops.append(isa.load(pc=0x8, addr=0x2800, size=8))  # warm the page
    ops.append(isa.load(pc=0x10, addr=0xF0000, size=8, dst="d"))
    ops.append(isa.branch(pc=0x500, taken=True, deps=(1,)))
    for i in range(n):
        ops.append(
            MicroOp(OpKind.PREFETCH, pc=0x20 + 4 * i, addr=0x2000 + 64 * i,
                    size=8)
        )
    for i in range(n):
        ops.append(isa.load(pc=0x40 + 4 * i, addr=0x2000 + 64 * i, size=8))
    return ops


class TestSoftwarePrefetchUnderInvisiSpec:
    def test_prefetches_use_exposures_not_validations(self):
        result, _ = run_ops(prefetch_program(), scheme=Scheme.IS_SPECTRE)
        assert result.count("invisispec.exposures") > 0

    def test_program_retires_fully(self):
        ops = prefetch_program()
        result, system = run_ops(ops, scheme=Scheme.IS_FUTURE)
        assert result.instructions == len(ops)
        assert len(system.cores[0].lq) == 0

    def test_speculative_prefetch_invisible_when_squashed(self):
        """A prefetch on the wrong path must leave no cache footprint."""
        train = [isa.branch(pc=0x500, taken=True) for _ in range(30)]
        slow = isa.load(pc=0x10, addr=0xF0000, size=8, dst="d")
        branch = isa.branch(pc=0x500, taken=False, deps=(1,))
        wrong = [MicroOp(OpKind.PREFETCH, pc=0x600, addr=0xCCC0, size=8)]
        ops = train + [slow, branch]
        result, system = run_ops(
            ops, scheme=Scheme.IS_FUTURE, wrong_paths={branch.uid: wrong}
        )
        line = system.space.line_of(0xCCC0)
        assert not system.hierarchy.l1s[0].contains(line)
        bank = system.hierarchy.bank_of(line)
        assert not system.hierarchy.l2[bank].contains(line)

    def test_wrong_path_prefetch_pollutes_in_base(self):
        train = [isa.branch(pc=0x500, taken=True) for _ in range(30)]
        slow = isa.load(pc=0x10, addr=0xF0000, size=8, dst="d")
        branch = isa.branch(pc=0x500, taken=False, deps=(1,))
        wrong = [MicroOp(OpKind.PREFETCH, pc=0x600, addr=0xCDC0, size=8)]
        ops = train + [slow, branch]
        result, system = run_ops(
            ops, scheme=Scheme.BASE, wrong_paths={branch.uid: wrong}
        )
        assert system.hierarchy.l1s[0].contains(system.space.line_of(0xCDC0))
