"""Scheme policy unit tests."""

import pytest

from repro.configs import Scheme
from repro.errors import ConfigError
from repro.invisispec.policy import (
    FenceFuturePolicy,
    FenceSpectrePolicy,
    ISFuturePolicy,
    ISSpectrePolicy,
    SchemePolicy,
    make_scheme_policy,
)


class TestFactory:
    @pytest.mark.parametrize(
        "scheme,cls",
        [
            (Scheme.BASE, SchemePolicy),
            (Scheme.FENCE_SPECTRE, FenceSpectrePolicy),
            (Scheme.FENCE_FUTURE, FenceFuturePolicy),
            (Scheme.IS_SPECTRE, ISSpectrePolicy),
            (Scheme.IS_FUTURE, ISFuturePolicy),
        ],
    )
    def test_builds_each_scheme(self, scheme, cls):
        assert type(make_scheme_policy(scheme)) is cls

    def test_rejects_unknown(self):
        with pytest.raises(ConfigError):
            make_scheme_policy("nonsense")


class TestPolicyFlags:
    def test_base_is_permissive(self):
        policy = SchemePolicy()
        assert not policy.uses_invisispec
        assert not policy.inserts_fence_after_branch
        assert not policy.inserts_fence_before_load
        assert policy.load_is_safe(None, None)
        assert policy.visible_now(None, None)

    def test_fence_spectre_fences_branches(self):
        policy = FenceSpectrePolicy()
        assert policy.inserts_fence_after_branch
        assert not policy.inserts_fence_before_load

    def test_fence_future_fences_loads(self):
        policy = FenceFuturePolicy()
        assert policy.inserts_fence_before_load

    def test_is_future_serializes_validations(self):
        assert ISFuturePolicy().validation_blocks_overlap
        assert not ISSpectrePolicy().validation_blocks_overlap


class FakeCore:
    """Just enough core for the policy predicates."""

    def __init__(self, branch_seq=None):
        self._branch_seq = branch_seq

    def min_unresolved_branch_seq(self):
        return self._branch_seq


class FakeEntry:
    def __init__(self, seq):
        self.seq = seq


class FutureFakeCore:
    """The five Section VIII probes plus the interrupt window."""

    def __init__(self, blockers=(), head_seq=None, allow_interrupt=True):
        self._blockers = dict(blockers)
        self._head_seq = head_seq
        self._allow = allow_interrupt
        self.protection_requests = []

        class _Rob:
            def __init__(inner):
                inner._head_seq = head_seq

            def head(inner):
                if inner._head_seq is None:
                    return None
                return FakeEntry(inner._head_seq)

        self.rob = _Rob()

    def _probe(self, name):
        def probe():
            return self._blockers.get(name)

        return probe

    def __getattr__(self, name):
        if name.startswith("min_"):
            return self._probe(name)
        raise AttributeError(name)

    def request_interrupt_protection(self, seq):
        self.protection_requests.append(seq)
        return self._allow


class TestISFutureVisibility:
    def test_visible_at_rob_head(self):
        policy = ISFuturePolicy()
        core = FutureFakeCore(head_seq=5)
        assert policy.visible_now(core, FakeEntry(5))

    def test_blocked_by_any_older_condition(self):
        policy = ISFuturePolicy()
        for probe in (
            "min_unresolved_branch_seq",
            "min_exceptable_seq",
            "min_uncommitted_store_seq",
            "min_unvalidated_load_seq",
            "min_incomplete_fence_seq",
        ):
            core = FutureFakeCore(blockers={probe: 3}, head_seq=0)
            assert not policy.visible_now(core, FakeEntry(5)), probe

    def test_non_squashable_requests_interrupt_window(self):
        policy = ISFuturePolicy()
        core = FutureFakeCore(head_seq=0)
        assert policy.visible_now(core, FakeEntry(5))
        assert core.protection_requests == [5]

    def test_refused_interrupt_window_blocks_visibility(self):
        policy = ISFuturePolicy()
        core = FutureFakeCore(head_seq=0, allow_interrupt=False)
        assert not policy.visible_now(core, FakeEntry(5))

    def test_younger_conditions_do_not_block(self):
        policy = ISFuturePolicy()
        core = FutureFakeCore(
            blockers={"min_unresolved_branch_seq": 9}, head_seq=0
        )
        assert policy.visible_now(core, FakeEntry(5))


class TestISSpectreClassification:
    def test_safe_without_older_branch(self):
        policy = ISSpectrePolicy()
        assert policy.load_is_safe(FakeCore(branch_seq=None), FakeEntry(5))

    def test_unsafe_behind_unresolved_branch(self):
        policy = ISSpectrePolicy()
        assert not policy.load_is_safe(FakeCore(branch_seq=3), FakeEntry(5))

    def test_safe_if_branch_is_younger(self):
        policy = ISSpectrePolicy()
        assert policy.load_is_safe(FakeCore(branch_seq=9), FakeEntry(5))

    def test_visibility_mirrors_safety(self):
        policy = ISSpectrePolicy()
        assert policy.visible_now(FakeCore(branch_seq=None), FakeEntry(5))
        assert not policy.visible_now(FakeCore(branch_seq=2), FakeEntry(5))
