"""Speculative Buffer tests (Section VI-A + the Section VII invariants)."""

import pytest

from repro.errors import SimulationError
from repro.invisispec.sb import SpeculativeBuffer


LINE = tuple(range(64))


class TestSpeculativeBuffer:
    def test_allocate_resets_slot(self):
        sb = SpeculativeBuffer(4)
        sb.allocate(0)
        sb.fill(0, 0x1000, LINE, version=1, address_mask=0xFF)
        slot = sb.allocate(4)  # same physical slot (4 % 4 == 0)
        assert not slot.valid or slot.data is None

    def test_fill_and_read(self):
        sb = SpeculativeBuffer(4)
        sb.allocate(1)
        slot = sb.fill(1, 0x1000, LINE, version=3, address_mask=0xF0)
        assert slot.valid
        assert slot.data == LINE
        assert slot.version == 3
        assert sb.read_bytes(1, 4, 4) == (4, 5, 6, 7)

    def test_fill_for_reassigned_slot_dropped(self):
        """A squashed USL's late fill must not land in the recycled slot."""
        sb = SpeculativeBuffer(4)
        sb.allocate(1)
        sb.allocate(5)  # slot 1 recycled for LQ index 5
        result = sb.fill(1, 0x1000, LINE, version=1, address_mask=1)
        assert result is None
        assert sb.entry(5).data is None

    def test_copy_old_to_new(self):
        sb = SpeculativeBuffer(8)
        sb.allocate(2)
        sb.fill(2, 0x1000, LINE, version=1, address_mask=0xFF)
        sb.allocate(5)
        dst = sb.copy(2, 5, address_mask=0xF00)
        assert dst.data == LINE
        assert dst.lq_index == 5

    def test_copy_from_younger_is_forbidden(self):
        """Section VII: a load may never reuse a younger USL's data."""
        sb = SpeculativeBuffer(8)
        sb.allocate(5)
        sb.fill(5, 0x1000, LINE, version=1, address_mask=0xFF)
        sb.allocate(2)
        with pytest.raises(SimulationError):
            sb.copy(5, 2, address_mask=1)

    def test_copy_from_invalid_raises(self):
        sb = SpeculativeBuffer(8)
        sb.allocate(1)
        sb.allocate(2)
        with pytest.raises(SimulationError):
            sb.copy(1, 2, address_mask=1)

    def test_invalidate_on_squash(self):
        sb = SpeculativeBuffer(4)
        sb.allocate(1)
        sb.fill(1, 0x1000, LINE, version=1, address_mask=1)
        sb.invalidate(1)
        assert not sb.entry(1).valid

    def test_invalidate_ignores_reassigned_slot(self):
        sb = SpeculativeBuffer(4)
        sb.allocate(5)
        sb.fill(5, 0x1000, LINE, version=1, address_mask=1)
        sb.invalidate(1)  # stale index for the same physical slot
        assert sb.entry(5).valid

    def test_store_forward_bytes_survive_fill(self):
        """Section VI-A2: the Spec-GetS response must not overwrite bytes
        forwarded from an older store."""
        sb = SpeculativeBuffer(4)
        sb.allocate(0)
        sb.forward_from_store(0, 0x1000, offset=8, value_bytes=[0xAA, 0xBB])
        fresh = tuple([0] * 64)
        slot = sb.fill(0, 0x1000, fresh, version=2, address_mask=0x3 << 8)
        assert slot.data[8] == 0xAA
        assert slot.data[9] == 0xBB
        assert slot.data[10] == 0

    def test_read_invalid_raises(self):
        sb = SpeculativeBuffer(4)
        with pytest.raises(SimulationError):
            sb.read_bytes(0, 0, 8)

    def test_valid_entries(self):
        sb = SpeculativeBuffer(4)
        sb.allocate(0)
        sb.fill(0, 0x1000, LINE, version=1, address_mask=1)
        assert len(sb.valid_entries()) == 1
