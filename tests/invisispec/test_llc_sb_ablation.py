"""LLC-SB ablation behaviour end to end."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from conftest import run_ops, simple_load_alu_ops

from repro import ConsistencyModel, ProcessorConfig, Scheme, SystemParams
from repro.cpu.trace import ProgramTrace
from repro.system import System


def run_with(llc_sb_enabled):
    ops = simple_load_alu_ops(40, base=0x5_0000)
    system = System(
        params=SystemParams.for_spec(),
        config=ProcessorConfig(
            scheme=Scheme.IS_FUTURE,
            consistency=ConsistencyModel.TSO,
            llc_sb_enabled=llc_sb_enabled,
        ),
        traces=[ProgramTrace(ops)],
    )
    return system.run(max_cycles=500_000)


class TestLLCSBAblation:
    def test_disabling_llc_sb_costs_dram_accesses(self):
        with_sb = run_with(True)
        without_sb = run_with(False)
        assert without_sb.count("dram.accesses") > with_sb.count(
            "dram.accesses"
        )

    def test_disabling_llc_sb_never_helps_latency(self):
        with_sb = run_with(True)
        without_sb = run_with(False)
        assert without_sb.cycles >= with_sb.cycles * 0.95

    def test_no_llc_sb_hits_when_disabled(self):
        without_sb = run_with(False)
        assert without_sb.count("invisispec.llc_sb_hits") == 0
