"""Validation/exposure issue-ordering rules (Section V-D) and the
validation-to-exposure / early-squash optimizations (Section V-C)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from conftest import run_ops, simple_load_alu_ops

from repro import (
    ConsistencyModel,
    ProcessorConfig,
    Scheme,
    SystemParams,
)
from repro.cpu import isa
from repro.cpu.trace import ProgramTrace
from repro.system import System


def shadowed_loads(n, base=0x3_0000, stride=64):
    """Warm TLB, then n loads in the shadow of a slow trained branch."""
    ops = [isa.branch(pc=0x500, taken=True) for _ in range(30)]
    ops.append(isa.fence(pc=0xC))
    # Touch every page the shadow loads will use.
    for page_addr in range(base, base + n * stride + 4096, 4096):
        ops.append(isa.load(pc=0x8, addr=page_addr, size=8))
    ops.append(isa.load(pc=0x10, addr=0xF0000, size=8, dst="d"))
    ops.append(isa.branch(pc=0x500, taken=True, deps=(1,)))
    for i in range(n):
        ops.append(isa.load(pc=0x20 + 4 * i, addr=base + stride * i, size=8))
    return ops


class TestValToExpOptimization:
    def test_optimization_creates_exposures_under_tso(self):
        ops = shadowed_loads(8)
        with_opt, _ = run_ops(list(ops), scheme=Scheme.IS_FUTURE)
        without_system = System(
            params=SystemParams.for_spec(),
            config=ProcessorConfig(
                scheme=Scheme.IS_FUTURE, val_to_exp_optimization=False
            ),
            traces=[ProgramTrace(list(ops))],
        )
        without = without_system.run(max_cycles=500_000)
        # Disabling Section V-C1 can only shift exposures to validations.
        assert without.count("invisispec.exposures") <= with_opt.count(
            "invisispec.exposures"
        )
        assert without.count("invisispec.validations") >= with_opt.count(
            "invisispec.validations"
        )


class TestProgramOrderInitiation:
    def test_visibility_transactions_cover_all_usls(self):
        ops = shadowed_loads(10)
        result, system = run_ops(ops, scheme=Scheme.IS_SPECTRE)
        usls = result.count("invisispec.usls")
        visible = (
            result.count("invisispec.validations")
            + result.count("invisispec.exposures")
        )
        squashed = result.count("core.squashed_ops")
        # Every USL either became visible or was squashed.
        assert visible >= usls - squashed
        assert len(system.cores[0].lq) == 0


class TestEarlySquash:
    @staticmethod
    def _racing_system(early_squash):
        """Core 1 writes the line core 0 is speculatively reading."""
        reader = []
        reader.extend(isa.branch(pc=0x500, taken=True) for _ in range(30))
        reader.append(isa.fence(pc=0xC))
        reader.append(isa.load(pc=0x8, addr=0x7400_0000, size=8))  # warm TLB
        for i in range(12):
            reader.append(isa.load(pc=0x10, addr=0x1F000 + 64 * i, size=8,
                                   dst="d"))
            reader.append(isa.branch(pc=0x500, taken=True, deps=(1,)))
            reader.append(isa.load(pc=0x20, addr=0x7400_0000, size=8))
        writer = []
        for i in range(12):
            writer.append(isa.alu(pc=0x200, latency=120,
                                  deps=(2,) if i else ()))
            writer.append(isa.store(pc=0x204, addr=0x7400_0000, size=8,
                                    value=i + 1))
        system = System(
            params=SystemParams(num_cores=2),
            config=ProcessorConfig(
                scheme=Scheme.IS_FUTURE,
                consistency=ConsistencyModel.TSO,
                early_squash=early_squash,
            ),
            traces=[ProgramTrace(reader), ProgramTrace(writer)],
        )
        result = system.run(max_cycles=2_000_000)
        return result

    def test_early_squash_preempts_validation_failures(self):
        with_early = self._racing_system(early_squash=True)
        without_early = self._racing_system(early_squash=False)
        total_with = (
            with_early.count("invisispec.early_squash_invalidation")
            + with_early.count("invisispec.validation_failures")
        )
        total_without = without_early.count("invisispec.validation_failures")
        # The race is caught either way; without the optimization it is
        # caught late, as validation failures only.
        assert without_early.count("invisispec.early_squash_invalidation") == 0
        if total_with and total_without:
            assert with_early.count("invisispec.early_squash_invalidation") > 0


class TestOverlapRules:
    def test_is_future_validation_blocks_later_visibility(self):
        """With an in-flight validation, later val/exp must wait: the
        engine's per-tick issue count under IS-Fu never exceeds one
        validation's worth when validations dominate."""
        ops = shadowed_loads(12)
        result, _ = run_ops(ops, scheme=Scheme.IS_FUTURE,
                            consistency=ConsistencyModel.TSO)
        # Sanity: there were validations to serialize.
        assert result.count("invisispec.validations") > 0

    def test_is_spectre_all_overlap(self):
        ops = shadowed_loads(12)
        sp, _ = run_ops(list(ops), scheme=Scheme.IS_SPECTRE)
        fu, _ = run_ops(list(ops), scheme=Scheme.IS_FUTURE)
        # Overlapped visibility (IS-Sp) never loses to serialized (IS-Fu).
        assert sp.cycles <= fu.cycles * 1.2
