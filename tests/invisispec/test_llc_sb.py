"""LLC Speculative Buffer tests (Sections V-F and VI-C)."""

from repro.invisispec.llc_sb import LLCSpeculativeBuffer


class TestLLCSpeculativeBuffer:
    def test_insert_and_match(self):
        sb = LLCSpeculativeBuffer(8)
        assert sb.insert(3, 0x1000, epoch=5)
        assert sb.match(3, 0x1000, epoch=5)

    def test_match_requires_same_epoch(self):
        """Squash/reissue race: a request from a different epoch must not
        consume the entry (Section VI-C)."""
        sb = LLCSpeculativeBuffer(8)
        sb.insert(3, 0x1000, epoch=5)
        assert not sb.match(3, 0x1000, epoch=6)
        assert not sb.match(3, 0x1000, epoch=4)

    def test_match_requires_same_address(self):
        sb = LLCSpeculativeBuffer(8)
        sb.insert(3, 0x1000, epoch=5)
        assert not sb.match(3, 0x2000, epoch=5)

    def test_stale_insert_dropped(self):
        """An insert from an older epoch than the slot's holder is stale."""
        sb = LLCSpeculativeBuffer(8)
        sb.insert(3, 0x2000, epoch=7)
        assert not sb.insert(3, 0x1000, epoch=5)
        assert sb.match(3, 0x2000, epoch=7)
        assert sb.stat_stale_drops == 1

    def test_newer_epoch_overwrites(self):
        sb = LLCSpeculativeBuffer(8)
        sb.insert(3, 0x1000, epoch=5)
        assert sb.insert(3, 0x2000, epoch=9)
        assert sb.match(3, 0x2000, epoch=9)

    def test_invalidate_line_everywhere(self):
        sb = LLCSpeculativeBuffer(8)
        sb.insert(1, 0x1000, epoch=1)
        sb.insert(2, 0x1000, epoch=1)
        sb.insert(3, 0x3000, epoch=1)
        sb.invalidate_line(0x1000)
        assert sb.valid_lines() == [0x3000]
        assert sb.stat_line_invalidations == 2

    def test_slot_wraps_by_capacity(self):
        sb = LLCSpeculativeBuffer(4)
        sb.insert(1, 0x1000, epoch=1)
        sb.insert(5, 0x2000, epoch=2)  # same physical slot
        assert not sb.match(1, 0x1000, epoch=1)
        assert sb.match(5, 0x2000, epoch=2)

    def test_stats(self):
        sb = LLCSpeculativeBuffer(4)
        sb.insert(0, 0x1000, epoch=0)
        sb.match(0, 0x1000, epoch=0)
        sb.match(0, 0x9000, epoch=0)
        assert sb.stat_hits == 1
        assert sb.stat_misses == 1
