"""The Section VII security-analysis invariants, tested end to end.

A transient (squashed) USL — the transmitter — must not be able to speed up
or slow down a later, retiring load — the receiver — through any InvisiSpec
structure.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from conftest import run_ops

from repro import ProcessorConfig, Scheme
from repro.cpu import isa
from repro.security.channel import AttackContext


def _transient_setup(target_addr):
    """A mispredicted branch whose wrong path loads ``target_addr``."""
    train = [isa.branch(pc=0x500, taken=True) for _ in range(30)]
    slow = isa.load(pc=0x10, addr=0xF000, size=8, dst="d")
    branch = isa.branch(pc=0x500, taken=False, deps=(1,))
    wrong = [isa.load(pc=0x600, addr=target_addr, size=8)]
    return train + [slow, branch], {branch.uid: wrong}


class TestNoSpeedUp:
    @staticmethod
    def _probe_after_transient(scheme):
        target = 0xC8C0
        ops, wrong = _transient_setup(target)
        context = AttackContext(ProcessorConfig(scheme=scheme))
        context.run_ops(0, ops, wrong)
        return context.probe_latency(0, target)

    def test_transmitter_speeds_up_receiver_only_in_base(self):
        base_latency = self._probe_after_transient(Scheme.BASE)
        is_latency = self._probe_after_transient(Scheme.IS_SPECTRE)
        assert base_latency <= 40  # the classic leak
        assert is_latency >= 100  # InvisiSpec: full memory latency

    def test_is_future_also_blocks(self):
        assert self._probe_after_transient(Scheme.IS_FUTURE) >= 100


class TestSquashedStateUnusable:
    def test_sb_entry_of_squashed_usl_is_reset(self):
        target = 0xD9C0
        ops, wrong = _transient_setup(target)
        result, system = run_ops(ops, scheme=Scheme.IS_SPECTRE,
                                 wrong_paths=wrong)
        core = system.cores[0]
        line = system.space.line_of(target)
        assert all(
            entry.line_addr != line for entry in core.sb.valid_entries()
        )

    def test_llc_sb_entry_stale_after_epoch_bump(self):
        """After a squash the core's epoch advances, so leftovers in the
        LLC-SB can never match a later load's (index, epoch)."""
        target = 0xDAC0
        ops, wrong = _transient_setup(target)
        result, system = run_ops(ops, scheme=Scheme.IS_SPECTRE,
                                 wrong_paths=wrong)
        core = system.cores[0]
        line = system.space.line_of(target)
        for slot in core.llc_sb._slots:
            if slot.valid and slot.line_addr == line:
                assert slot.epoch < core.epoch

    def test_no_cache_or_directory_footprint(self):
        target = 0xDBC0
        ops, wrong = _transient_setup(target)
        result, system = run_ops(ops, scheme=Scheme.IS_FUTURE,
                                 wrong_paths=wrong)
        line = system.space.line_of(target)
        hierarchy = system.hierarchy
        assert not hierarchy.l1s[0].contains(line)
        bank = hierarchy.bank_of(line)
        assert not hierarchy.l2[bank].contains(line)
        assert hierarchy.dirs[bank].entry(line) is None

    def test_tlb_untouched_by_transient_load(self):
        target = 0x55_0000  # fresh page
        ops, wrong = _transient_setup(target)
        result, system = run_ops(ops, scheme=Scheme.IS_SPECTRE,
                                 wrong_paths=wrong)
        vpn = system.space.page_of(target)
        assert not system.cores[0].tlb.contains(vpn)
