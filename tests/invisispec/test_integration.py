"""End-to-end InvisiSpec behaviour on the full pipeline."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from conftest import run_ops, simple_load_alu_ops

from repro import ConsistencyModel, Scheme
from repro.cpu import isa


class TestUSLLifecycle:
    def test_usls_classified_and_made_visible(self):
        # Delay branch resolution so the loads behind it are USLs.
        ops = []
        for i in range(20):
            ops.append(isa.load(pc=0x10, addr=0xD000 + 64 * i, size=8, dst="d"))
            ops.append(isa.branch(pc=0x500, taken=True, deps=(1,)))
            ops.append(isa.load(pc=0x20, addr=0x1000 + 64 * i, size=8))
        result, _ = run_ops(ops, scheme=Scheme.IS_SPECTRE)
        assert result.count("invisispec.usls") > 0
        visible = (
            result.count("invisispec.validations")
            + result.count("invisispec.exposures")
        )
        assert visible > 0
        assert result.instructions == len(ops)

    def test_tso_mostly_validations(self):
        result, _ = run_ops(
            simple_load_alu_ops(40),
            scheme=Scheme.IS_FUTURE,
            consistency=ConsistencyModel.TSO,
        )
        vals = result.count("invisispec.validations")
        exps = result.count("invisispec.exposures")
        assert vals + exps > 0
        assert vals >= exps  # Section V-C: TSO forces validations

    def test_rc_practically_all_exposures(self):
        result, _ = run_ops(
            simple_load_alu_ops(40),
            scheme=Scheme.IS_FUTURE,
            consistency=ConsistencyModel.RC,
        )
        vals = result.count("invisispec.validations")
        exps = result.count("invisispec.exposures")
        assert exps > 0
        assert vals == 0  # no older acquires anywhere

    def test_every_usl_becomes_visible_or_squashed(self):
        result, system = run_ops(
            simple_load_alu_ops(30), scheme=Scheme.IS_FUTURE
        )
        # At completion the LQ is empty: nothing left invisible.
        assert len(system.cores[0].lq) == 0
        assert result.instructions == 60

    def test_validation_failures_zero_single_core(self):
        result, _ = run_ops(simple_load_alu_ops(40), scheme=Scheme.IS_FUTURE)
        assert result.count("invisispec.validation_failures") == 0

    def test_same_line_usls_share_one_spec_gets(self):
        """Section V-E: a later USL to the same line copies the SB entry."""
        ops = []
        # Train the branch taken, so the shadow loads are fetched down the
        # (correct) predicted path while the branch is unresolved.
        ops.extend(isa.branch(pc=0x500, taken=True) for _ in range(30))
        # Drain speculation, then warm the page's TLB entry architecturally
        # (a cold page would defer the USLs instead of filling the SB).
        ops.append(isa.fence(pc=0x0C))
        ops.append(isa.load(pc=0x08, addr=0x1800, size=8))
        # Keep the loads speculative behind a slow branch.
        ops.append(isa.load(pc=0x10, addr=0xF000, size=8, dst="d"))
        ops.append(isa.branch(pc=0x500, taken=True, deps=(1,)))
        for i in range(4):
            ops.append(isa.load(pc=0x20 + i, addr=0x1000 + 8 * i, size=8))
        result, _ = run_ops(ops, scheme=Scheme.IS_SPECTRE)
        assert (
            result.count("invisispec.sb_hits")
            + result.count("invisispec.sb_merge_waits")
        ) >= 1

    def test_usl_value_comes_from_sb_line(self):
        ops = [
            isa.load(pc=0x10, addr=0xF000, size=8, dst="d"),
            isa.branch(pc=0x500, taken=True, deps=(1,)),
            isa.load(pc=0x20, addr=0x2004, size=4, dst="x"),
        ]
        result, system = run_ops(
            ops,
            scheme=Scheme.IS_SPECTRE,
            memory_init={0x2004: [0x11, 0x22, 0x33, 0x44]},
        )
        assert system.cores[0].env["x"] == 0x44332211

    def test_deferred_tlb_walks_counted(self):
        # Fresh pages touched speculatively: the walks defer to visibility.
        ops = []
        for i in range(12):
            ops.append(isa.load(pc=0x10, addr=0xF000 + 64 * i, size=8, dst="d"))
            ops.append(isa.branch(pc=0x500, taken=True, deps=(1,)))
            ops.append(isa.load(pc=0x20, addr=0x40_0000 + 4096 * i, size=8))
        result, _ = run_ops(ops, scheme=Scheme.IS_SPECTRE)
        assert result.count("invisispec.tlb_deferred") > 0
        assert result.instructions == len(ops)


class TestExposureRetire:
    def test_exposure_allows_retire_before_completion(self):
        """Section V-A4: exposures never stall the pipeline."""
        result, _ = run_ops(
            simple_load_alu_ops(40),
            scheme=Scheme.IS_FUTURE,
            consistency=ConsistencyModel.RC,
        )
        assert result.count("invisispec.validation_stall_cycles") == 0


class TestSchemeComparison:
    def test_invisispec_much_faster_than_fences(self):
        ops = simple_load_alu_ops(60)
        is_fu, _ = run_ops(list(ops), scheme=Scheme.IS_FUTURE)
        fe_fu, _ = run_ops(list(ops), scheme=Scheme.FENCE_FUTURE)
        assert is_fu.cycles < fe_fu.cycles

    def test_is_spectre_overhead_below_is_future(self):
        ops = simple_load_alu_ops(60)
        is_sp, _ = run_ops(list(ops), scheme=Scheme.IS_SPECTRE)
        is_fu, _ = run_ops(list(ops), scheme=Scheme.IS_FUTURE)
        assert is_sp.cycles <= is_fu.cycles * 1.1
