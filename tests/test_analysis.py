"""Derived-metric tests."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import run_ops, simple_load_alu_ops

from repro import Scheme
from repro import analysis
from repro.cpu import isa


class TestAnalysis:
    def test_summarize_keys(self):
        result, _ = run_ops(simple_load_alu_ops(20), scheme=Scheme.IS_FUTURE)
        summary = analysis.summarize(result)
        for key in ("ipc", "l1_mpki", "squashes_per_million",
                    "usl_fraction", "validation_l1_hit_fraction"):
            assert key in summary

    def test_mpki_counts_misses(self):
        # 20 distinct lines, all cold: 20 L1 misses over 40 instructions.
        result, _ = run_ops(simple_load_alu_ops(20))
        assert analysis.mpki(result) == 1000.0 * 20 / 40

    def test_mpki_low_when_warm(self):
        # Same line 20 times: one primary cold miss (plus possibly a
        # bypassed out-of-order sibling); merged secondaries don't count.
        ops = [isa.load(pc=0x10, addr=0x1000, size=8) for _ in range(20)]
        result, _ = run_ops(ops)
        assert analysis.mpki(result) <= 1000.0 * 3 / 20
        assert result.count("hierarchy.mshr_merges") > 0

    def test_branch_rate_bounds(self):
        ops = [isa.branch(pc=0x500, taken=True) for _ in range(50)]
        result, _ = run_ops(ops)
        rate = analysis.branch_mispredict_rate(result)
        assert 0.0 <= rate <= 1.0

    def test_squash_breakdown_sums_to_one(self):
        ops = [isa.branch(pc=0x500, taken=bool(i % 2 == 0 and i % 3 == 0))
               for i in range(60)]
        result, _ = run_ops(ops)
        breakdown = analysis.squash_breakdown(result)
        if breakdown:
            assert abs(sum(breakdown.values()) - 1.0) < 1e-9

    def test_no_squashes_empty_breakdown(self):
        result, _ = run_ops([isa.alu(pc=1) for _ in range(10)])
        assert analysis.squash_breakdown(result) == {}

    def test_usl_fraction_zero_for_base(self):
        result, _ = run_ops(simple_load_alu_ops(10), scheme=Scheme.BASE)
        assert analysis.usl_fraction(result) == 0.0

    def test_visibility_split_sums_to_one_when_present(self):
        result, _ = run_ops(simple_load_alu_ops(30), scheme=Scheme.IS_FUTURE)
        split = analysis.visibility_split(result)
        if any(split):
            assert abs(sum(split) - 1.0) < 1e-9

    def test_traffic_per_ki_positive(self):
        result, _ = run_ops(simple_load_alu_ops(10))
        assert analysis.traffic_per_kiloinstruction(result) > 0
