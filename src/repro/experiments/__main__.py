"""Command-line entry point for the experiment harness.

Examples::

    python -m repro.experiments figure4 --quick
    python -m repro.experiments figure4 --instructions 10000
    python -m repro.experiments table6 --apps sjeng,libquantum
    python -m repro.experiments all --quick
"""

from __future__ import annotations

import argparse
import sys

from . import ALL_EXPERIMENTS


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the InvisiSpec paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="measured instructions per run (default: harness default)",
    )
    parser.add_argument(
        "--apps",
        type=str,
        default=None,
        help="comma-separated app subset",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload generator seed"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small representative app subset instead of the full suite",
    )
    parser.add_argument(
        "--no-rc",
        action="store_true",
        help="skip the RC-average rows (halves runtime)",
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="for `report`: write the markdown to this path",
    )
    args = parser.parse_args(argv)

    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    kwargs = {"seed": args.seed, "quick": args.quick}
    if args.instructions is not None:
        kwargs["instructions"] = args.instructions
    if args.apps:
        kwargs["apps"] = args.apps.split(",")
    if args.no_rc:
        kwargs["include_rc"] = False

    if args.out is not None:
        kwargs["out"] = args.out

    for name in names:
        runner = ALL_EXPERIMENTS[name]
        supported = runner.__code__.co_varnames[: runner.__code__.co_argcount]
        call_kwargs = dict(kwargs)
        for optional in ("apps", "include_rc", "instructions", "out"):
            if optional in call_kwargs and optional not in supported:
                del call_kwargs[optional]
        result = runner(**call_kwargs)
        print(result if isinstance(result, str) else result.text)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
