"""Command-line entry point for the experiment harness.

Examples::

    python -m repro.experiments figure4 --quick
    python -m repro.experiments figure4 --instructions 10000
    python -m repro.experiments table6 --apps sjeng,libquantum
    python -m repro.experiments all --quick

Reliability (see ``docs/RELIABILITY.md``)::

    # journal each cell; a failed cell becomes a gap, not an abort
    python -m repro.experiments figure4 --quick

    # re-attempt only the failed cells of the previous invocation
    python -m repro.experiments figure4 --quick --resume

    # deterministic fault injection into one matching cell
    python -m repro.experiments figure4 --quick \
        --fault mshr.stuck:nth=3 --fault-cells 'spec:mcf:IS-Sp:*'

    # fan the sweep out over 4 supervised worker processes
    python -m repro.experiments figure4 --quick --jobs 4 --max-rss 2G

The process exits non-zero only when the number of failed cells exceeds
``--max-failures`` (default 0: any failure that survives retries fails the
invocation, after the full experiment has still been rendered).
"""

from __future__ import annotations

import argparse
import os
import sys

from ..errors import ConfigError
from ..reliability import (
    FaultSchedule,
    RetryPolicy,
    RunEngine,
    RunJournal,
    Supervisor,
)
from . import ALL_EXPERIMENTS

#: Generous per-cell cycle budget: an order of magnitude above the slowest
#: legitimate full-suite cell, so only runaway runs and injected drops trip.
DEFAULT_MAX_CYCLES = 50_000_000

_SIZE_SUFFIXES = {"K": 2**10, "M": 2**20, "G": 2**30}


def parse_size(text):
    """``512M`` / ``2G`` / ``1048576`` -> bytes."""
    text = text.strip()
    suffix = text[-1:].upper()
    if suffix in _SIZE_SUFFIXES:
        return int(float(text[:-1]) * _SIZE_SUFFIXES[suffix])
    return int(text)


def build_engine(args, experiment, schedule):
    """One engine (and journal) per experiment invocation."""
    journal = None
    if not args.no_journal:
        journal = RunJournal(
            os.path.join(args.journal_dir, f"{experiment}.json"),
            experiment=experiment,
        )
    supervisor = None
    if args.jobs > 1:
        supervisor = Supervisor(
            jobs=args.jobs,
            max_rss=args.max_rss,
            heartbeat_timeout=args.heartbeat,
        )
    return RunEngine(
        journal=journal,
        policy=RetryPolicy(max_attempts=args.retries + 1),
        max_cycles=args.max_cycles,
        wall_clock_s=args.wall_clock,
        resume=args.resume,
        fault_schedule=schedule,
        fault_cells=args.fault_cells,
        failure_budget=args.max_failures,
        supervisor=supervisor,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the InvisiSpec paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="measured instructions per run (default: harness default)",
    )
    parser.add_argument(
        "--apps",
        type=str,
        default=None,
        help="comma-separated app subset",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload generator seed"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small representative app subset instead of the full suite",
    )
    parser.add_argument(
        "--no-rc",
        action="store_true",
        help="skip the RC-average rows (halves runtime)",
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="for `report`: write the markdown to this path",
    )

    reliability = parser.add_argument_group("reliability")
    reliability.add_argument(
        "--resume",
        action="store_true",
        help="serve journal-completed cells from the journal; re-run only "
        "missing/failed ones",
    )
    reliability.add_argument(
        "--journal-dir",
        type=str,
        default=os.path.join("results", "journal"),
        help="directory for per-experiment run journals "
        "(default: results/journal)",
    )
    reliability.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the run journal (cells still retry and degrade)",
    )
    reliability.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per failed cell, each with a bumped seed and grown "
        "cycle budget (default: 1)",
    )
    reliability.add_argument(
        "--max-cycles",
        type=int,
        default=DEFAULT_MAX_CYCLES,
        help="per-cell cycle budget; exceeded -> SimTimeoutError "
        f"(default: {DEFAULT_MAX_CYCLES})",
    )
    reliability.add_argument(
        "--wall-clock",
        type=float,
        default=None,
        help="per-cell wall-clock budget in seconds (default: off)",
    )
    reliability.add_argument(
        "--max-failures",
        type=int,
        default=0,
        help="failure budget: exit non-zero only when more cells than this "
        "fail (default: 0)",
    )
    reliability.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="SITE[:k=v,...]",
        help="inject a fault, e.g. mshr.stuck:nth=3 or "
        "dram.stall:nth=2,extra=5000; repeatable",
    )
    reliability.add_argument(
        "--fault-cells",
        type=str,
        default="*",
        metavar="GLOB",
        help="glob of cell ids the fault schedule applies to "
        "(default: every cell)",
    )
    reliability.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="RNG seed for probabilistic fault specs",
    )
    reliability.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run cells on N crash-isolated worker processes under the "
        "sweep supervisor (default: 1 = in-process serial); results, "
        "journals and figures are identical either way",
    )
    reliability.add_argument(
        "--max-rss",
        type=parse_size,
        default=None,
        metavar="BYTES",
        help="per-worker memory ceiling (suffixes K/M/G), enforced via "
        "RLIMIT_AS in the worker and RSS polling in the supervisor; "
        "only meaningful with --jobs > 1",
    )
    reliability.add_argument(
        "--heartbeat",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="worker liveness deadline: a busy worker that reports no "
        "simulated progress for this long is killed and its cell "
        "retried (default: 60)",
    )
    reliability.add_argument(
        "--sanitize",
        nargs="?",
        const="strict",
        choices=("strict", "record"),
        default=None,
        help="run every cell under the runtime invariant sanitizer "
        "(see docs/SANITIZER.md): 'strict' fails fast on the first "
        "violation, 'record' finishes the run and journals the report; "
        "bare --sanitize means strict",
    )
    args = parser.parse_args(argv)

    schedule = None
    if args.fault:
        try:
            schedule = FaultSchedule.parse(args.fault, seed=args.fault_seed)
        except ConfigError as error:
            parser.error(str(error))

    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [
        args.experiment
    ]
    kwargs = {"seed": args.seed, "quick": args.quick}
    if args.instructions is not None:
        kwargs["instructions"] = args.instructions
    if args.apps:
        kwargs["apps"] = args.apps.split(",")
    if args.no_rc:
        kwargs["include_rc"] = False

    if args.out is not None:
        kwargs["out"] = args.out
    if args.sanitize is not None:
        kwargs["sanitize"] = args.sanitize

    total_failures = 0
    for name in names:
        runner = ALL_EXPERIMENTS[name]
        supported = runner.__code__.co_varnames[: runner.__code__.co_argcount]
        call_kwargs = dict(kwargs)
        engine = None
        if "engine" in supported:
            engine = build_engine(args, name, schedule)
            call_kwargs["engine"] = engine
        for optional in ("apps", "include_rc", "instructions", "out", "sanitize"):
            if optional in call_kwargs and optional not in supported:
                del call_kwargs[optional]
        try:
            result = runner(**call_kwargs)
        except KeyboardInterrupt:
            # A supervised parallel sweep drained on SIGINT/SIGTERM (or the
            # user interrupted a serial one).  Completed cells are already
            # journaled; resume from there.
            done = len(engine.outcomes) if engine is not None else 0
            print(
                f"\n[reliability] interrupted: {done} cell(s) journaled; "
                f"re-run with --resume to continue",
                file=sys.stderr,
            )
            return 130
        print(result if isinstance(result, str) else result.text)
        if engine is not None and engine.failures:
            total_failures += len(engine.failures)
            print(
                f"[reliability] {len(engine.failures)} cell(s) failed "
                f"(rendered as gaps):"
            )
            for outcome in engine.failures:
                label = (
                    " [quarantined]" if outcome.status == "poisoned" else ""
                )
                print(
                    f"  {outcome.cell_id}{label}: {outcome.error_class}: "
                    f"{outcome.error_message}"
                )
        print()
    return 1 if total_failures > args.max_failures else 0


if __name__ == "__main__":
    sys.exit(main())
