"""Table VI: characterization of InvisiSpec's operation under TSO.

Per application (and suite average), for IS-Spectre and IS-Future:

* the split of visibility transactions into exposures, L1-hit validations
  and L1-miss validations;
* squashes per million instructions and the squash-reason breakdown
  (branch misprediction / consistency violation / validation failure);
* the L1-SB hit rate (Section V-E reuse) and the LLC-SB hit rate.
"""

from __future__ import annotations

from ..configs import ConsistencyModel, ProcessorConfig, Scheme
from ..reliability import CellSpec, is_ok
from ..runner import run_parsec, run_spec
from .common import GAP, ExperimentResult, arithmetic_mean, default_apps

_SQUASH_REASONS = {
    "branch": ("core.squashes.branch",),
    "consistency": (
        "core.squashes.consistency",
        "core.squashes.store_alias",
        "core.squashes.interrupt",
        "core.squashes.exception",
    ),
    "validation": ("core.squashes.validation_fail",),
}


def characterize(result):
    """Extract one scheme's Table VI column set from a RunResult."""
    exposures = result.count("invisispec.exposures")
    val_hit = result.count("invisispec.validations_l1_hit")
    val_miss = result.count("invisispec.validations_l1_miss")
    total_visibility = max(exposures + val_hit + val_miss, 1)

    squashes = {
        name: sum(result.count(counter) for counter in counters)
        for name, counters in _SQUASH_REASONS.items()
    }
    total_squashes = sum(squashes.values())
    instructions = max(result.instructions, 1)

    sb_hits = result.count("invisispec.sb_hits")
    sb_misses = result.count("invisispec.sb_misses")
    llc_hits = result.count("invisispec.llc_sb_hits")
    llc_misses = result.count("invisispec.llc_sb_misses")

    return {
        "exposures_pct": 100.0 * exposures / total_visibility,
        "val_l1_hit_pct": 100.0 * val_hit / total_visibility,
        "val_l1_miss_pct": 100.0 * val_miss / total_visibility,
        "squashes_per_m": 1e6 * total_squashes / instructions,
        "squash_branch_pct": 100.0 * squashes["branch"] / max(total_squashes, 1),
        "squash_consistency_pct": 100.0
        * squashes["consistency"]
        / max(total_squashes, 1),
        "squash_validation_pct": 100.0
        * squashes["validation"]
        / max(total_squashes, 1),
        "l1_sb_hit_rate_pct": 100.0 * sb_hits / max(sb_hits + sb_misses, 1),
        "llc_sb_hit_rate_pct": 100.0 * llc_hits / max(llc_hits + llc_misses, 1),
    }


_COLUMNS = [
    ("exposures_pct", "%Exp"),
    ("val_l1_hit_pct", "%L1hitVal"),
    ("val_l1_miss_pct", "%L1missVal"),
    ("squashes_per_m", "Squash/1M"),
    ("squash_branch_pct", "%Branch"),
    ("squash_consistency_pct", "%Consist"),
    ("squash_validation_pct", "%ValFail"),
    ("l1_sb_hit_rate_pct", "L1SB-hit%"),
    ("llc_sb_hit_rate_pct", "LLCSB-hit%"),
]


def run(
    spec_apps=("sjeng", "libquantum", "omnetpp"),
    parsec_apps=("bodytrack", "fluidanimate", "swaptions"),
    instructions=None,
    seed=0,
    quick=False,
    average_over=None,
    engine=None,
    **_ignored,
):
    """Regenerate Table VI (IS-Sp and IS-Fu under TSO).

    ``average_over`` optionally names the app set used for the two average
    rows (defaults to the highlighted apps themselves, to keep the default
    harness fast; pass the full suites for the paper's exact averages).
    With ``engine``, a failed cell renders as a row of gaps and is dropped
    from the averages.
    """
    rows = []
    per_app = {}
    spec_list = default_apps("spec", spec_apps, quick)
    parsec_list = default_apps("parsec", parsec_apps, quick)

    # All cells of the table, batched through the engine in one call so
    # ``--jobs N`` can fan them out over the supervisor's worker pool.
    results = {}
    if engine is not None:
        cells = [
            CellSpec(
                suite, app, scheme, ConsistencyModel.TSO,
                seed=seed, instructions=instructions,
            )
            for suite, apps in (("spec", spec_list), ("parsec", parsec_list))
            for app in apps
            for scheme in (Scheme.IS_SPECTRE, Scheme.IS_FUTURE)
        ]
        for spec, outcome in zip(cells, engine.run_specs(cells)):
            results[(spec.suite, spec.app, spec.scheme)] = (
                outcome.result if outcome.ok else outcome.failure()
            )

    def run_cell(suite, app, scheme, runner):
        if engine is not None:
            return results[(suite, app, scheme)]
        config = ProcessorConfig(
            scheme=scheme, consistency=ConsistencyModel.TSO
        )
        kwargs = {} if instructions is None else {"instructions": instructions}
        return runner(app, config, seed=seed, **kwargs)

    def add_rows(suite, apps, runner):
        stats = {}
        for app in apps:
            app_stats = {}
            for scheme in (Scheme.IS_SPECTRE, Scheme.IS_FUTURE):
                result = run_cell(suite.lower(), app, scheme, runner)
                app_stats[scheme] = (
                    characterize(result) if is_ok(result) else None
                )
            stats[app] = app_stats
            for scheme in (Scheme.IS_SPECTRE, Scheme.IS_FUTURE):
                cell_stats = app_stats[scheme]
                rows.append(
                    [f"{app} ({scheme.value})"]
                    + [
                        round(cell_stats[key], 1) if cell_stats else GAP
                        for key, _ in _COLUMNS
                    ]
                )
        for scheme in (Scheme.IS_SPECTRE, Scheme.IS_FUTURE):
            rows.append(
                [f"{suite}-average ({scheme.value})"]
                + [
                    round(
                        arithmetic_mean(
                            [
                                stats[a][scheme][key]
                                for a in apps
                                if stats[a][scheme] is not None
                            ]
                        ),
                        1,
                    )
                    for key, _ in _COLUMNS
                ]
            )
        per_app.update(stats)

    add_rows("SPEC", spec_list, run_spec)
    add_rows("PARSEC", parsec_list, run_parsec)

    headers = ["app (scheme)"] + [label for _, label in _COLUMNS]
    notes = (
        "Paper highlights: most squashes are branch mispredictions; "
        "validation failures are practically zero; L1-SB hit rates are low "
        "(~2%) while LLC-SB hit rates are ~99%+; libquantum has ~86% "
        "L1-miss validations (streaming)."
    )
    return ExperimentResult(
        "table6",
        "Table VI: InvisiSpec characterization under TSO",
        headers,
        rows,
        notes=notes,
        extras={"per_app": per_app},
    )
