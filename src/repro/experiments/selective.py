"""Analysis-guided selective protection: the specflow loop closed.

``Scheme.SELECTIVE`` (IS-Sel) routes only the loads the speculative
taint analysis could not prove harmless — the TRANSMIT and UNKNOWN PCs
of :mod:`repro.specflow` — through the InvisiSpec USL path, with full
IS-Future semantics on every protected PC.  Everything the analysis
proved SAFE issues down the conventional fast path.

The experiment regenerates the Figure 4 comparison with IS-Sel as a
sixth bar, and re-runs every attack PoC under IS-Sel.  Acceptance:

* every PoC stays defeated (the protected set contains each PoC's
  transmitter, so its line never leaves the speculative buffer);
* the SPEC overhead of IS-Sel is at most IS-Spectre's (the workload
  programs analyze all-SAFE, so selective protection leaves the hot
  path untouched while IS-Spectre still pays USL costs on every
  branch-shadowed load).
"""

from __future__ import annotations

from ..configs import ConsistencyModel, ProcessorConfig, Scheme
from ..runner import run_spec
from ..specflow import analyze_program, all_programs, protected_pcs
from .common import (
    ExperimentResult,
    default_apps,
    geometric_mean,
    normalized,
)

#: the schemes compared in the IS-Sel bar chart
_SCHEMES = (Scheme.BASE, Scheme.IS_SPECTRE, Scheme.IS_FUTURE,
            Scheme.SELECTIVE)


def compute_protected_pcs(seed=0, window=64, precision="full"):
    """The union of every program's non-SAFE PCs under the futuristic
    model — the PC set an IS-Sel deployment would ship.  ``precision``
    selects the specflow domain: ``"full"`` (v2) or ``"taint"`` (the v1
    pure-taint baseline the precision comparison is made against)."""
    pcs = set()
    for prog in all_programs(seed=seed):
        report = analyze_program(
            prog, model="futuristic", window=window, precision=precision
        )
        pcs |= protected_pcs(report)
    return frozenset(pcs)


def _poc_matrix(config):
    """Run every attack PoC under ``config``; {name: defeated}."""
    from ..security.cross_core import run_cross_core_attack
    from ..security.exception_attacks import VARIANTS, run_exception_attack
    from ..security.meltdown_style import run_meltdown_style_attack
    from ..security.spectre_v1 import run_spectre_v1
    from ..security.ssb import run_ssb_attack

    defeated = {}
    _lat, rec = run_spectre_v1(config, secret=84)
    defeated["spectre_v1"] = rec != 84
    _lat, rec = run_meltdown_style_attack(config, secret=199)
    defeated["meltdown_style"] = rec != 199
    _lat, rec = run_ssb_attack(config, secret=113)
    defeated["ssb"] = rec != 113
    _lat, rec = run_cross_core_attack(config, secret=37)
    defeated["cross_core"] = rec != 37
    for variant in sorted(VARIANTS):
        _lat, rec = run_exception_attack(config, variant=variant, secret=177)
        defeated[f"exception_{variant}"] = rec != 177
    return defeated


def run(apps=None, instructions=None, seed=0, quick=False):
    """Returns an :class:`ExperimentResult` whose rows are
    ``[app, Base, IS-Sp, IS-Fu, IS-Sel]`` (cycles normalized to Base),
    with the geometric-mean row and the PoC-defeat matrix in the notes.

    The shipped protected set comes from specflow v2 (full precision);
    the v1 pure-taint set is recomputed alongside it so the precision
    win lands in the output: v2 must protect a strict subset of v1's
    PCs while the PoC matrix stays all-defeated.
    """
    protected = compute_protected_pcs(seed=seed)
    protected_v1 = compute_protected_pcs(seed=seed, precision="taint")
    apps = default_apps("spec", apps, quick)
    kwargs = {} if instructions is None else {"instructions": instructions}

    results = {}
    for app in apps:
        per_scheme = {}
        for scheme in _SCHEMES:
            config = ProcessorConfig(
                scheme=scheme,
                consistency=ConsistencyModel.TSO,
                protected_pcs=protected if scheme is Scheme.SELECTIVE
                else frozenset(),
            )
            per_scheme[scheme] = run_spec(app, config, seed=seed, **kwargs)
        results[app] = per_scheme

    headers = ["app"] + [s.value for s in _SCHEMES]
    rows = []
    norms = {scheme: [] for scheme in _SCHEMES}
    for app in apps:
        norm = normalized(results[app], lambda r: r.cycles)
        for scheme in _SCHEMES:
            norms[scheme].append(norm[scheme])
        rows.append([app] + [round(norm[s], 3) for s in _SCHEMES])
    means = {s: geometric_mean(norms[s]) for s in _SCHEMES}
    rows.append(["geomean"] + [round(means[s], 3) for s in _SCHEMES])

    sel_config = ProcessorConfig(
        scheme=Scheme.SELECTIVE, protected_pcs=protected
    )
    defeated = _poc_matrix(sel_config)

    poc_lines = "\n".join(
        f"  {name}: {'defeated' if ok else 'LEAKED'}"
        for name, ok in sorted(defeated.items())
    )
    sel_ok = means[Scheme.SELECTIVE] <= means[Scheme.IS_SPECTRE] + 1e-9
    subset_ok = protected < protected_v1
    saved = sorted(f"0x{pc:x}" for pc in protected_v1 - protected)
    subset_verdict = (
        "strict subset" if subset_ok else "NOT a strict subset (FAIL)"
    )
    notes = (
        f"Protected PCs (specflow v2, futuristic model): "
        f"{sorted(f'0x{pc:x}' for pc in protected)}\n"
        f"Precision vs v1 (pure taint): v2 protects {len(protected)} "
        f"PCs, v1 protects {len(protected_v1)} ({subset_verdict}); "
        f"v2 discharges {saved}\n"
        f"Acceptance: IS-Sel geomean {means[Scheme.SELECTIVE]:.3f} "
        f"{'<=' if sel_ok else '> (FAIL)'} IS-Sp geomean "
        f"{means[Scheme.IS_SPECTRE]:.3f}\n"
        f"Attack PoCs under IS-Sel:\n{poc_lines}"
    )
    return ExperimentResult(
        "selective",
        "Selective protection: specflow-guided IS-Sel vs. full schemes",
        headers,
        rows,
        notes=notes,
        extras={
            "results": results,
            "protected_pcs": protected,
            "protected_pcs_v1": protected_v1,
            "defeated": defeated,
            "geomeans": means,
        },
    )
