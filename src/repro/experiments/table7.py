"""Table VII: per-core hardware overhead of InvisiSpec.

Area, access time, dynamic energies and leakage of the two added per-core
structures (L1-SB and LLC-SB) from the CACTI-style analytical model at
16 nm.
"""

from __future__ import annotations

from ..hwmodel import estimate_invisispec_overhead
from ..params import SystemParams
from .common import ExperimentResult

_PAPER = {
    "L1-SB": [0.0174, 97.1, 4.4, 4.3, 0.56],
    "LLC-SB": [0.0176, 97.1, 4.4, 4.3, 0.61],
}


def run(params=None, node_nm=16.0, **_ignored):
    """Regenerate Table VII."""
    if params is None:
        params = SystemParams()
    estimates = estimate_invisispec_overhead(params, node_nm=node_nm)
    headers = [
        "metric",
        "L1-SB",
        "LLC-SB",
        "paper L1-SB",
        "paper LLC-SB",
    ]
    metric_names = [
        "Area (mm^2)",
        "Access time (ps)",
        "Dynamic read energy (pJ)",
        "Dynamic write energy (pJ)",
        "Leakage power (mW)",
    ]
    by_name = {e.name: e.as_row()[1:] for e in estimates}
    precisions = [4, 1, 1, 1, 2]
    rows = []
    for i, metric in enumerate(metric_names):
        fmt = f"{{:.{precisions[i]}f}}"
        rows.append(
            [
                metric,
                fmt.format(by_name["L1-SB"][i]),
                fmt.format(by_name["LLC-SB"][i]),
                fmt.format(_PAPER["L1-SB"][i]),
                fmt.format(_PAPER["LLC-SB"][i]),
            ]
        )
    notes = (
        "Paper values from CACTI 5 at 16 nm; both structures are tiny "
        "(~0.02 mm^2, sub-100 ps, single-digit pJ, sub-mW leakage)."
    )
    return ExperimentResult(
        "table7",
        "Table VII: per-core hardware overhead of InvisiSpec",
        headers,
        rows,
        notes=notes,
        extras={"estimates": estimates},
    )
