"""Shared experiment plumbing: sweeps, normalization, result records.

Fault tolerance: when a :class:`~repro.reliability.RunEngine` is passed to
:func:`sweep`, each app x scheme cell runs as an isolated unit of work with
watchdog/retry/journal semantics, and a cell that exhausts its retries
yields a :class:`~repro.reliability.CellFailure` instead of raising.  The
normalization helpers then propagate ``None`` for anything touching a
failed cell, and the figure/table modules render those as the
:data:`GAP` marker rather than aborting the experiment.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from ..configs import ALL_SCHEMES, ConsistencyModel, ProcessorConfig, Scheme
from ..reliability import CellSpec, is_ok
from ..runner import run_parsec, run_spec
from ..stats.report import format_grouped_bars, format_table
from ..workloads import parsec_names, spec_names

#: Rendered in place of a value that depends on a failed cell.
GAP = "×"


def gap_round(value, digits=3):
    """``round(value, digits)``, or the gap marker when the cell failed."""
    return GAP if value is None else round(value, digits)


def mean_available(values):
    """Arithmetic mean over the non-gap values (None entries dropped)."""
    present = [v for v in values if v is not None]
    return arithmetic_mean(present)


@dataclass
class ExperimentResult:
    """Rows plus a rendered text report for one experiment."""

    experiment_id: str
    title: str
    headers: list
    rows: list
    notes: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def text(self):
        body = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            body += "\n\n" + self.notes
        return body

    def row_for(self, label):
        for row in self.rows:
            if row and row[0] == label:
                return row
        return None

    def bars(self, columns=None, width=40):
        """ASCII bar rendering of the numeric columns (the paper's figures
        are grouped bar charts; this is the terminal equivalent).

        ``columns`` selects header names to plot; defaults to every column
        whose cells are all numeric.
        """
        if not self.rows:
            return ""
        if columns is None:
            columns = [
                header
                for i, header in enumerate(self.headers[1:], start=1)
                if all(
                    isinstance(row[i], (int, float))
                    for row in self.rows
                    if len(row) > i and row[i] != ""
                )
            ]
        indices = {h: self.headers.index(h) for h in columns}
        labels = [row[0] for row in self.rows]
        series = {
            name: [
                row[idx] if len(row) > idx and row[idx] != "" else None
                for row in self.rows
            ]
            for name, idx in indices.items()
        }
        return format_grouped_bars(labels, series, title=self.title,
                                   width=width)

    def to_dict(self):
        """JSON-serializable record (extras are dropped — they hold live
        RunResult objects)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
        }

    def save_json(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)

    @classmethod
    def load_json(cls, path):
        with open(path) as handle:
            data = json.load(handle)
        return cls(
            data["experiment_id"],
            data["title"],
            data["headers"],
            data["rows"],
            notes=data.get("notes", ""),
        )


def sweep(
    suite,
    apps,
    consistency=ConsistencyModel.TSO,
    instructions=None,
    seed=0,
    schemes=ALL_SCHEMES,
    engine=None,
    sanitize=None,
):
    """Run each app under each scheme; returns {app: {scheme: RunResult}}.

    With an ``engine`` (:class:`~repro.reliability.RunEngine`), each cell
    gets watchdog/retry/journal treatment and a cell that still fails maps
    to a :class:`~repro.reliability.CellFailure` value instead of raising;
    on ``--resume`` the engine serves completed cells from the journal
    without re-simulating.  Without an engine, behavior is the classic
    fail-fast direct run.

    ``sanitize`` turns on the runtime invariant sanitizer for every cell:
    ``"strict"`` raises at the first violation (with an engine, the cell
    fails without retry), ``"record"`` lets cells finish but lands their
    violation report in the journal and fails the cell.
    """
    runner = run_spec if suite == "spec" else run_parsec
    if engine is None:
        results = {}
        for app in apps:
            per_scheme = {}
            for scheme in schemes:
                config = ProcessorConfig(
                    scheme=scheme, consistency=consistency
                )
                kwargs = (
                    {} if instructions is None
                    else {"instructions": instructions}
                )
                if sanitize is not None:
                    kwargs["sanitize"] = sanitize
                per_scheme[scheme] = runner(app, config, seed=seed, **kwargs)
            results[app] = per_scheme
        return results

    # Engine path: describe the whole sweep as pickle-safe CellSpecs and
    # dispatch the batch in one call, so ``--jobs N`` can fan the cells out
    # over the supervisor's worker pool.  Cell order (and thus dispatch
    # order, seeds, and journal contents) is identical to the serial loop.
    specs = [
        CellSpec(
            suite, app, scheme, consistency,
            seed=seed, instructions=instructions, sanitize=sanitize,
        )
        for app in apps
        for scheme in schemes
    ]
    outcomes = engine.run_specs(specs)
    results = {app: {} for app in apps}
    for spec, outcome in zip(specs, outcomes):
        results[spec.app][spec.scheme] = (
            outcome.result if outcome.ok else outcome.failure()
        )
    return results


def default_apps(suite, apps=None, quick=False):
    """Resolve an app list; ``quick`` picks a small representative subset."""
    if apps:
        return list(apps)
    if suite == "spec":
        if quick:
            return ["mcf", "sjeng", "libquantum", "omnetpp", "hmmer", "GemsFDTD"]
        return spec_names()
    if quick:
        return ["blackscholes", "fluidanimate", "swaptions"]
    return parsec_names()


def normalized(results_by_scheme, metric):
    """Each scheme's metric normalized to Base.

    Failed cells (and every scheme, when Base itself failed) normalize to
    ``None`` — the rendered gap — instead of raising.
    """
    base = results_by_scheme.get(Scheme.BASE)
    base_value = metric(base) if is_ok(base) else None
    return {
        scheme: (
            metric(result) / max(base_value, 1e-12)
            if base_value is not None and is_ok(result)
            else None
        )
        for scheme, result in results_by_scheme.items()
    }


def geometric_mean(values):
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values):
    return sum(values) / len(values) if values else 0.0


def mean_std(values):
    """(mean, sample standard deviation)."""
    if not values:
        return 0.0, 0.0
    mean = arithmetic_mean(values)
    if len(values) < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, math.sqrt(variance)


def multi_seed_overhead(
    app,
    scheme,
    suite="spec",
    consistency=ConsistencyModel.TSO,
    instructions=None,
    seeds=(0, 1, 2),
):
    """Normalized execution time of ``scheme`` over Base across seeds.

    Our instruction windows are short, so the synthetic-workload seed is a
    real source of variance; this gives a mean +/- std for one bar of
    Figure 4/7.
    """
    runner = run_spec if suite == "spec" else run_parsec
    overheads = []
    for seed in seeds:
        kwargs = {} if instructions is None else {"instructions": instructions}
        base = runner(
            app, ProcessorConfig(scheme=Scheme.BASE, consistency=consistency),
            seed=seed, **kwargs,
        )
        other = runner(
            app, ProcessorConfig(scheme=scheme, consistency=consistency),
            seed=seed, **kwargs,
        )
        overheads.append(other.cycles / max(base.cycles, 1))
    return mean_std(overheads)
