"""Figure 5: access latency measured by the Spectre v1 attacker.

Median per-line reload latency over the attack trials, for the insecure
baseline and for InvisiSpec-Spectre, with the secret V = 84.  Under Base
only line 84 is fast; under IS-Sp every line misses — the transient loads
never touched the cache hierarchy.
"""

from __future__ import annotations

from ..configs import ProcessorConfig, Scheme
from ..security.spectre_v1 import NUM_VALUES, run_spectre_v1
from .common import ExperimentResult


def run(secret=84, trials=3, seed=0, sample_every=8, **_ignored):
    """Regenerate Figure 5; rows sample every ``sample_every`` indices (the
    full 256-point series is in ``extras``)."""
    base_lat, base_guess = run_spectre_v1(
        ProcessorConfig(scheme=Scheme.BASE), secret=secret, trials=trials,
        seed=seed,
    )
    issp_lat, issp_guess = run_spectre_v1(
        ProcessorConfig(scheme=Scheme.IS_SPECTRE), secret=secret,
        trials=trials, seed=seed,
    )

    headers = ["array index", "Base latency (cycles)", "IS-Sp latency (cycles)"]
    indices = sorted(set(range(0, NUM_VALUES, sample_every)) | {secret})
    rows = [[i, base_lat[i], issp_lat[i]] for i in indices]

    notes = (
        f"Secret value is {secret}.  Base recovers {base_guess!r}; "
        f"IS-Sp recovers {issp_guess!r}.  In the paper only the secret's "
        "line hits (<40 cycles) under Base while every access goes to "
        "memory (>150 cycles) under IS-Sp."
    )
    return ExperimentResult(
        "figure5",
        "Figure 5: Spectre v1 PoC access latencies",
        headers,
        rows,
        notes=notes,
        extras={
            "base": base_lat,
            "is_sp": issp_lat,
            "base_guess": base_guess,
            "is_sp_guess": issp_guess,
            "secret": secret,
        },
    )
