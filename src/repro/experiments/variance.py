"""Seed-variance study.

The paper's runs are long enough that workload variance is negligible; our
windows are short, so the synthetic-workload seed matters.  This experiment
quantifies it: the IS overheads across seeds, as mean +/- sample standard
deviation, for a representative app set.  It is the error bar to keep in
mind when reading the reproduced figures.
"""

from __future__ import annotations

from ..configs import Scheme
from .common import ExperimentResult, multi_seed_overhead


def run(apps=("mcf", "sjeng", "libquantum", "hmmer"), instructions=2500,
        seeds=(0, 1, 2), quick=False, **_ignored):
    """Overhead mean +/- std across seeds for IS-Sp and IS-Fu."""
    if quick:
        apps = apps[:2]
        seeds = seeds[:2]
    headers = ["app", "IS-Sp mean", "IS-Sp std", "IS-Fu mean", "IS-Fu std"]
    rows = []
    for app in apps:
        sp_mean, sp_std = multi_seed_overhead(
            app, Scheme.IS_SPECTRE, instructions=instructions, seeds=seeds
        )
        fu_mean, fu_std = multi_seed_overhead(
            app, Scheme.IS_FUTURE, instructions=instructions, seeds=seeds
        )
        rows.append(
            [app, round(sp_mean, 3), round(sp_std, 3),
             round(fu_mean, 3), round(fu_std, 3)]
        )
    notes = (
        f"{len(seeds)} seeds x {instructions} measured instructions.  "
        "Standard deviations of a few percent are expected at this scale; "
        "the scheme orderings in Figures 4/7 are stable across seeds."
    )
    return ExperimentResult(
        "variance", "Seed variance of the InvisiSpec overheads",
        headers, rows, notes=notes,
    )
