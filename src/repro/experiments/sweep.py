"""Parameter-sensitivity sweeps (beyond the paper: the "improving
InvisiSpec" directions its conclusion sketches).

InvisiSpec's costs are structural — a second access per USL, serialized
validations, LQ entries held until visibility — so they shift with the
machine's parameters.  These sweeps quantify how the IS-Future overhead
responds to:

* ``rob``   — reorder-buffer depth (more outstanding speculation);
* ``lq``    — load-queue/SB size (how many USLs can be in flight);
* ``dram``  — memory latency (cost of the doubled memory-sourced access);
* ``l1``    — L1 capacity (validation L1-hit fraction).
"""

from __future__ import annotations

import dataclasses

from ..configs import ProcessorConfig, Scheme
from ..params import CacheParams, SystemParams
from ..runner import run_spec
from .common import ExperimentResult


def _with_core(params, **core_overrides):
    return params.replace(core=dataclasses.replace(params.core, **core_overrides))


SWEEPS = {
    "rob": [
        ("ROB=64", lambda p: _with_core(p, rob_entries=64)),
        ("ROB=128", lambda p: _with_core(p, rob_entries=128)),
        ("ROB=192", lambda p: p),
        ("ROB=384", lambda p: _with_core(p, rob_entries=384)),
    ],
    "lq": [
        ("LQ=16", lambda p: _with_core(p, load_queue_entries=16)),
        ("LQ=32", lambda p: p),
        ("LQ=64", lambda p: _with_core(p, load_queue_entries=64)),
    ],
    "dram": [
        ("DRAM=50", lambda p: p.replace(dram_latency=50)),
        ("DRAM=100", lambda p: p),
        ("DRAM=200", lambda p: p.replace(dram_latency=200)),
        ("DRAM=400", lambda p: p.replace(dram_latency=400)),
    ],
    "l1": [
        (
            "L1=32KB",
            lambda p: p.replace(
                l1d=CacheParams(size_bytes=32 * 1024, ways=8, ports=3)
            ),
        ),
        ("L1=64KB", lambda p: p),
        (
            "L1=128KB",
            lambda p: p.replace(
                l1d=CacheParams(size_bytes=128 * 1024, ways=8, ports=3)
            ),
        ),
    ],
}


def run(app="mcf", dimensions=("rob", "lq", "dram", "l1"), instructions=3000,
        seed=0, **_ignored):
    """Sweep each dimension; rows are IS-Fu overhead over Base per point."""
    headers = ["configuration", "Base cycles", "IS-Fu cycles",
               "IS-Fu overhead", "validations", "val-stall frac"]
    rows = []
    for dimension in dimensions:
        for label, transform in SWEEPS[dimension]:
            params = transform(SystemParams.for_spec())
            base = run_spec(
                app, ProcessorConfig(scheme=Scheme.BASE),
                instructions=instructions, seed=seed, params=params,
            )
            invisi = run_spec(
                app, ProcessorConfig(scheme=Scheme.IS_FUTURE),
                instructions=instructions, seed=seed, params=params,
            )
            overhead = invisi.cycles / max(base.cycles, 1) - 1.0
            stall = invisi.count("invisispec.validation_stall_cycles") / max(
                invisi.cycles, 1
            )
            rows.append(
                [
                    f"{dimension}:{label}",
                    base.cycles,
                    invisi.cycles,
                    f"{overhead:+.1%}",
                    invisi.count("invisispec.validations"),
                    round(stall, 3),
                ]
            )
    notes = (
        f"Workload: {app}.  Measured trends: the relative overhead is "
        "largest when memory is *fast* — validations and the LLC-SB keep "
        "InvisiSpec's extra work on-chip, so as DRAM latency grows the "
        "baseline becomes memory-bound while the validation cost stays "
        "flat and the relative overhead shrinks.  A larger LQ admits more "
        "USLs in flight (more speculative work to make visible), and a "
        "larger L1 modestly helps by raising the validation L1-hit rate."
    )
    return ExperimentResult(
        "sweep", "Parameter sensitivity of the IS-Future overhead",
        headers, rows, notes=notes,
    )
