"""EXPERIMENTS.md generation: paper-vs-measured, row by row.

``build_report(results)`` takes the experiment results (freshly run or
loaded from saved JSON) and renders the markdown comparison document.  The
paper's numbers are hard-coded here from the corrected MICRO'18 text, so
the document is regenerated with one command whenever the simulator or the
calibration changes::

    python -m repro.experiments report --out EXPERIMENTS.md
"""

from __future__ import annotations

from ..configs import ALL_SCHEMES

#: The paper's headline numbers (corrected MICRO'18).
PAPER = {
    "fig4_tso": {"Fe-Sp": 1.88, "IS-Sp": 1.076, "Fe-Fu": 3.46, "IS-Fu": 1.182},
    "fig4_rc": {"IS-Sp": 1.082, "IS-Fu": 1.168},
    "fig6_tso": {"IS-Sp": 1.35, "IS-Fu": 1.59},
    "fig7_tso": {"Fe-Sp": 1.67, "IS-Sp": 0.992, "Fe-Fu": 2.90, "IS-Fu": 1.137},
    "fig7_rc": {"IS-Sp": 1.030, "IS-Fu": 1.148},
    "fig8_tso": {"IS-Sp": 1.13, "IS-Fu": 1.33},
    "table7": {
        "Area (mm^2)": (0.0174, 0.0176),
        "Access time (ps)": (97.1, 97.1),
        "Dynamic read energy (pJ)": (4.4, 4.4),
        "Dynamic write energy (pJ)": (4.3, 4.3),
        "Leakage power (mW)": (0.56, 0.61),
    },
}

_SCHEME_COLUMNS = {s.value: i + 1 for i, s in enumerate(ALL_SCHEMES)}


def _avg_row(result, label):
    row = result.row_for(label)
    if row is None:
        return {}
    return {
        scheme.value: row[_SCHEME_COLUMNS[scheme.value]]
        for scheme in ALL_SCHEMES
    }


def _compare_block(title, paper, measured, metric="normalized execution time"):
    lines = [f"### {title}", "", f"| config | paper {metric} | measured |",
             "|---|---|---|"]
    for name, paper_value in paper.items():
        measured_value = measured.get(name, "—")
        lines.append(f"| {name} | {paper_value} | {measured_value} |")
    lines.append("")
    return lines


def build_report(results):
    """Render the full markdown document from {experiment_id: result}."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Every figure and table of the paper's evaluation (Section IX), with",
        "the paper's headline numbers next to this reproduction's.  Absolute",
        "agreement is not expected — the paper measures 1B-instruction gem5",
        "runs of real SPEC/PARSEC binaries; we measure short windows of",
        "calibrated synthetic workloads on a from-scratch simulator — the",
        "*shape* (who wins, by what rough factor, where crossovers fall) is",
        "the reproduction target.  Regenerate with:",
        "",
        "```",
        "python results/run_final_sweep.py",
        "python -m repro.experiments report --out EXPERIMENTS.md",
        "```",
        "",
    ]

    if "figure4" in results:
        result = results["figure4"]
        lines += _compare_block(
            "Figure 4 — SPEC normalized execution time (TSO average)",
            PAPER["fig4_tso"],
            _avg_row(result, "average"),
        )
        lines += _compare_block(
            "Figure 4 — RC average",
            PAPER["fig4_rc"],
            _avg_row(result, "RC-average"),
        )
        lines += [
            "Shape checks that hold in this reproduction:",
            "",
            "* Fe-Sp ≫ IS-Sp and Fe-Fu ≫ IS-Fu for every application;",
            "* sjeng (worst branches) and libquantum/GemsFDTD/lbm (streaming)",
            "  are the expensive InvisiSpec cases, as in the paper;",
            "* omnetpp's TLB pressure makes it an IS-Future outlier (the",
            "  paper sees the same app as the IS-Sp outlier; see the",
            "  calibration note below).",
            "",
        ]

    if "figure5" in results:
        result = results["figure5"]
        lines += [
            "### Figure 5 — Spectre v1 PoC (secret V = 84)",
            "",
            "| quantity | paper | measured |",
            "|---|---|---|",
        ]
        row = result.row_for(84)
        base_lat = row[1] if row else "?"
        issp_lat = row[2] if row else "?"
        lines += [
            f"| Base: latency of B[84·64] | < 40 cycles (hit) | {base_lat} |",
            f"| Base: all other lines | > 150 cycles (miss) | ~104 |",
            f"| IS-Sp: every line | > 150 cycles (miss) | {issp_lat} |",
            "| Base recovers the secret | yes | "
            + ("yes" if result.notes.find("Base recovers 84") >= 0 else "see notes")
            + " |",
            "",
        ]

    if "figure6" in results:
        lines += _compare_block(
            "Figure 6 — SPEC normalized network traffic (TSO average)",
            PAPER["fig6_tso"],
            _avg_row(results["figure6"], "average"),
            metric="normalized traffic",
        )

    if "figure7" in results:
        lines += _compare_block(
            "Figure 7 — PARSEC normalized execution time (TSO average)",
            PAPER["fig7_tso"],
            _avg_row(results["figure7"], "average"),
        )
        lines += [
            "The paper's blackscholes/swaptions anomaly — *faster* than the",
            "insecure baseline under InvisiSpec, because the baseline",
            "conservatively squashes in-flight loads on L1 evictions —",
            "reproduces; see the eviction-squash columns of the full table.",
            "",
        ]

    if "figure8" in results:
        lines += _compare_block(
            "Figure 8 — PARSEC normalized network traffic (TSO average)",
            PAPER["fig8_tso"],
            _avg_row(results["figure8"], "average"),
            metric="normalized traffic",
        )

    if "table6" in results:
        lines += [
            "### Table VI — characterization under TSO",
            "",
            "Paper highlights vs. this reproduction (full table in",
            "`results/table6.txt`):",
            "",
            "* most squashes are branch mispredictions (paper: ~97% SPEC,",
            "  ~88% PARSEC) — reproduced;",
            "* validation failures are practically zero — reproduced;",
            "* LLC-SB hit rates are very high (paper ≈ 99.8%) while L1-SB",
            "  hit rates are low (paper ≈ 2%) — reproduced;",
            "* sjeng's squash rate (paper: 73,752/1M instructions) dwarfs",
            "  libquantum's (≈0) — reproduced in ordering and magnitude gap;",
            "* libquantum is dominated by L1-miss validations (paper: 86%)",
            "  — reproduced directionally (streaming misses).",
            "",
        ]

    if "table7" in results:
        result = results["table7"]
        lines += [
            "### Table VII — per-core hardware overhead (16 nm)",
            "",
            "| metric | paper L1-SB | measured | paper LLC-SB | measured |",
            "|---|---|---|---|---|",
        ]
        for metric, (paper_l1, paper_llc) in PAPER["table7"].items():
            row = result.row_for(metric)
            lines.append(
                f"| {metric} | {paper_l1} | {row[1] if row else '?'} | "
                f"{paper_llc} | {row[2] if row else '?'} |"
            )
        lines.append("")

    lines += [
        "### Security matrix (Figures 1/5 + Table I scoping)",
        "",
        "| attack | Base | Fe-Sp | IS-Sp | Fe-Fu | IS-Fu |",
        "|---|---|---|---|---|---|",
        "| Spectre v1 | leak | safe | safe | safe | safe |",
        "| Speculative store bypass | leak | leak | leak | safe | safe |",
        "| Meltdown / L1TF / Lazy-FP / Rogue-SysReg | leak | leak | leak |"
        " safe | safe |",
        "| CrossCore LLC channel | leak | safe | safe | safe | safe |",
        "",
        "Matches the paper's Table II scoping exactly: the Spectre-model",
        "defenses cover only branch-shadow attacks; the Futuristic designs",
        "cover every squashable load (`tests/security/`).",
        "",
        "### Calibration notes",
        "",
        "* Instruction windows are 10^5x shorter than the paper's; a warmup",
        "  prefix plus functional branch-predictor pre-training substitute",
        "  for gem5's 10B-instruction fast-forward.",
        "* Fence overheads land above the paper's (ours ≈ 2.2x/3.7x vs",
        "  1.88x/3.46x): LFENCE in this model blocks all younger execution",
        "  until every older instruction completes, and short windows make",
        "  the lost MLP relatively more expensive.",
        "* omnetpp under-reproduces the paper's IS-Sp outlier (~1.8x): its",
        "  TLB-miss deferral only binds when the missing loads sit in long",
        "  branch shadows, which the synthetic profile produces less often",
        "  than the real binary.",
        "",
    ]
    return "\n".join(lines)


def run(results_dir="results", out=None, **_ignored):
    """Load saved results and build the report (CLI entry)."""
    import os

    from .common import ExperimentResult

    results = {}
    for name in ("figure4", "figure5", "figure6", "figure7", "figure8",
                 "table6", "table7"):
        path = os.path.join(results_dir, f"{name}.json")
        if os.path.exists(path):
            results[name] = ExperimentResult.load_json(path)
    report = build_report(results)
    if out:
        with open(out, "w") as handle:
            handle.write(report + "\n")
    return report
