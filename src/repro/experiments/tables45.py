"""Tables IV and V: the simulated architecture parameters and the five
processor configurations.  These are inputs rather than results; printing
them documents exactly what the harness simulates."""

from __future__ import annotations

from ..configs import ALL_SCHEMES, ProcessorConfig
from ..params import SystemParams
from .common import ExperimentResult

_SCHEME_DESCRIPTIONS = {
    "Base": "Conventional, insecure baseline processor",
    "Fe-Sp": "Fence after every indirect/conditional branch",
    "IS-Sp": "USL modifies only SB; visible after preceding branches resolve",
    "Fe-Fu": "Fence before every load instruction",
    "IS-Fu": "USL modifies only SB; visible when non-speculative or "
             "speculative non-squashable",
}


def run(params=None, **_ignored):
    """Render Tables IV and V."""
    if params is None:
        params = SystemParams()
    rows = [
        ["Architecture", f"{params.num_cores} cores at {params.frequency_ghz} GHz"],
        [
            "Core",
            f"{params.core.issue_width}-issue OOO, "
            f"{params.core.load_queue_entries} LQ, "
            f"{params.core.store_queue_entries} SQ, "
            f"{params.core.rob_entries} ROB, tournament predictor, "
            f"{params.core.btb_entries} BTB, {params.core.ras_entries} RAS",
        ],
        [
            "L1-D",
            f"{params.l1d.size_bytes // 1024}KB, {params.l1d.line_bytes}B line, "
            f"{params.l1d.ways}-way, {params.l1d.round_trip_latency}-cycle RT, "
            f"{params.l1d.ports} ports",
        ],
        [
            "Shared L2",
            f"per core: {params.l2_bank.size_bytes // (1024 * 1024)}MB bank, "
            f"{params.l2_bank.ways}-way, "
            f"{params.l2_bank.round_trip_latency}-cycle RT local, "
            f"{params.l2_remote_max_latency}-cycle RT remote max",
        ],
        [
            "Network",
            f"{params.network.mesh_cols}x{params.network.mesh_rows} mesh, "
            f"{params.network.link_bits}-bit links, "
            f"{params.network.hop_latency} cycle/hop",
        ],
        ["Coherence", "directory-based MESI"],
        ["DRAM", f"{params.dram_latency}-cycle round trip after L2"],
        ["D-TLB", f"{params.tlb.entries} entries, "
                  f"{params.tlb.walk_latency}-cycle walk"],
    ]
    for scheme in ALL_SCHEMES:
        config = ProcessorConfig(scheme=scheme)
        rows.append(
            [f"config {config.scheme.value}", _SCHEME_DESCRIPTIONS[scheme.value]]
        )
    return ExperimentResult(
        "tables45",
        "Tables IV & V: simulated architecture and configurations",
        ["parameter", "value"],
        rows,
    )
