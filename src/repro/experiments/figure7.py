"""Figure 7: normalized execution time of the PARSEC applications (8 cores).

Multithreaded runs on the full 4x2-mesh machine.  The paper's highlighted
result — blackscholes and swaptions running *faster* under InvisiSpec than
under the baseline, because the baseline conservatively squashes in-flight
loads on L1 evictions — reproduces here.
"""

from __future__ import annotations

from ..configs import ALL_SCHEMES, ConsistencyModel, Scheme
from .common import (
    ExperimentResult,
    arithmetic_mean,
    default_apps,
    normalized,
    sweep,
)


def _stall_fraction(result):
    return result.count("invisispec.validation_stall_cycles") / max(
        result.cycles * 8, 1
    )


def run(apps=None, instructions=None, seed=0, quick=False, include_rc=True):
    """Regenerate Figure 7."""
    apps = default_apps("parsec", apps, quick)
    tso = sweep("parsec", apps, ConsistencyModel.TSO, instructions, seed)

    headers = ["app"] + [s.value for s in ALL_SCHEMES] + [
        "Base consist-squash/1k",
        "IS-Fu consist-squash/1k",
    ]
    rows = []
    norms = {scheme: [] for scheme in ALL_SCHEMES}
    for app in apps:
        norm = normalized(tso[app], lambda r: r.cycles)
        for scheme in ALL_SCHEMES:
            norms[scheme].append(norm[scheme])
        base_res = tso[app][Scheme.BASE]
        fu_res = tso[app][Scheme.IS_FUTURE]
        base_ev = base_res.count("core.squashes.consistency") + base_res.count(
            "core.eviction_squashes"
        )
        fu_ev = fu_res.count("core.squashes.consistency")
        rows.append(
            [app]
            + [round(norm[s], 3) for s in ALL_SCHEMES]
            + [
                round(1000.0 * base_ev / max(base_res.instructions, 1), 2),
                round(1000.0 * fu_ev / max(fu_res.instructions, 1), 2),
            ]
        )
    rows.append(
        ["average"]
        + [round(arithmetic_mean(norms[s]), 3) for s in ALL_SCHEMES]
        + ["", ""]
    )

    extras = {"tso": tso}
    if include_rc:
        rc = sweep("parsec", apps, ConsistencyModel.RC, instructions, seed)
        rc_norms = {scheme: [] for scheme in ALL_SCHEMES}
        for app in apps:
            norm = normalized(rc[app], lambda r: r.cycles)
            for scheme in ALL_SCHEMES:
                rc_norms[scheme].append(norm[scheme])
        rows.append(
            ["RC-average"]
            + [round(arithmetic_mean(rc_norms[s]), 3) for s in ALL_SCHEMES]
            + ["", ""]
        )
        extras["rc"] = rc

    notes = (
        "Paper (TSO averages): Fe-Sp=1.67, IS-Sp=0.992, Fe-Fu=2.90, "
        "IS-Fu=1.137; several PARSEC apps beat Base under InvisiSpec "
        "because the baseline conservatively squashes performed loads on "
        "invalidations/evictions while InvisiSpec rides them out with "
        "exposures and validations (compare the consistency-squash "
        "columns)."
    )
    return ExperimentResult(
        "figure7",
        "Figure 7: normalized execution time (PARSEC, 8 cores)",
        headers,
        rows,
        notes=notes,
        extras=extras,
    )
