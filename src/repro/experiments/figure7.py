"""Figure 7: normalized execution time of the PARSEC applications (8 cores).

Multithreaded runs on the full 4x2-mesh machine.  The paper's highlighted
result — blackscholes and swaptions running *faster* under InvisiSpec than
under the baseline, because the baseline conservatively squashes in-flight
loads on L1 evictions — reproduces here.
"""

from __future__ import annotations

from ..configs import ALL_SCHEMES, ConsistencyModel, Scheme
from ..reliability import is_ok
from .common import (
    ExperimentResult,
    default_apps,
    gap_round,
    mean_available,
    normalized,
    sweep,
)


def _consistency_squashes_per_k(result, include_evictions):
    if not is_ok(result):
        return None
    events = result.count("core.squashes.consistency")
    if include_evictions:
        events += result.count("core.eviction_squashes")
    return 1000.0 * events / max(result.instructions, 1)


def run(apps=None, instructions=None, seed=0, quick=False, include_rc=True,
        engine=None, sanitize=None):
    """Regenerate Figure 7."""
    apps = default_apps("parsec", apps, quick)
    tso = sweep("parsec", apps, ConsistencyModel.TSO, instructions, seed,
                engine=engine, sanitize=sanitize)

    headers = ["app"] + [s.value for s in ALL_SCHEMES] + [
        "Base consist-squash/1k",
        "IS-Fu consist-squash/1k",
    ]
    rows = []
    norms = {scheme: [] for scheme in ALL_SCHEMES}
    for app in apps:
        norm = normalized(tso[app], lambda r: r.cycles)
        for scheme in ALL_SCHEMES:
            norms[scheme].append(norm[scheme])
        rows.append(
            [app]
            + [gap_round(norm[s]) for s in ALL_SCHEMES]
            + [
                gap_round(
                    _consistency_squashes_per_k(
                        tso[app][Scheme.BASE], include_evictions=True
                    ),
                    2,
                ),
                gap_round(
                    _consistency_squashes_per_k(
                        tso[app][Scheme.IS_FUTURE], include_evictions=False
                    ),
                    2,
                ),
            ]
        )
    rows.append(
        ["average"]
        + [round(mean_available(norms[s]), 3) for s in ALL_SCHEMES]
        + ["", ""]
    )

    extras = {"tso": tso}
    if include_rc:
        rc = sweep("parsec", apps, ConsistencyModel.RC, instructions, seed,
                   engine=engine, sanitize=sanitize)
        rc_norms = {scheme: [] for scheme in ALL_SCHEMES}
        for app in apps:
            norm = normalized(rc[app], lambda r: r.cycles)
            for scheme in ALL_SCHEMES:
                rc_norms[scheme].append(norm[scheme])
        rows.append(
            ["RC-average"]
            + [round(mean_available(rc_norms[s]), 3) for s in ALL_SCHEMES]
            + ["", ""]
        )
        extras["rc"] = rc

    notes = (
        "Paper (TSO averages): Fe-Sp=1.67, IS-Sp=0.992, Fe-Fu=2.90, "
        "IS-Fu=1.137; several PARSEC apps beat Base under InvisiSpec "
        "because the baseline conservatively squashes performed loads on "
        "invalidations/evictions while InvisiSpec rides them out with "
        "exposures and validations (compare the consistency-squash "
        "columns)."
    )
    return ExperimentResult(
        "figure7",
        "Figure 7: normalized execution time (PARSEC, 8 cores)",
        headers,
        rows,
        notes=notes,
        extras=extras,
    )
