"""Experiment harness: regenerates every figure and table of the paper's
evaluation (Section IX).

==========  ==========================================================
Experiment  Contents
==========  ==========================================================
figure4     Normalized execution time, SPEC x 5 configs, TSO + RC avg
figure5     Spectre PoC access latencies, Base vs IS-Sp
figure6     Normalized network traffic, SPEC, with breakdown
figure7     Normalized execution time, PARSEC (8 cores)
figure8     Normalized network traffic, PARSEC
table6      Characterization of InvisiSpec's operation under TSO
table7      Per-core hardware overhead (CACTI-style model)
tables45    The input configurations (Tables IV and V), for completeness
ablations   Design-choice ablations (LLC-SB, V->E optimization, ...)
selective   specflow-guided selective protection (IS-Sel) vs full schemes
==========  ==========================================================

Run from the command line::

    python -m repro.experiments figure4 --instructions 6000
    python -m repro.experiments all
"""

from .common import ExperimentResult
from . import ablations, figure4, figure5, figure6, figure7, figure8
from . import report, selective, sweep, table6, table7, tables45, variance

ALL_EXPERIMENTS = {
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "table6": table6.run,
    "table7": table7.run,
    "tables45": tables45.run,
    "ablations": ablations.run,
    "selective": selective.run,
    "sweep": sweep.run,
    "report": report.run,
    "variance": variance.run,
}

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult"]
