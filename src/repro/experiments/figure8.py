"""Figure 8: normalized network traffic of the PARSEC applications."""

from __future__ import annotations

from ..configs import ALL_SCHEMES, ConsistencyModel, Scheme
from ..reliability import is_ok
from .common import (
    GAP,
    ExperimentResult,
    default_apps,
    gap_round,
    mean_available,
    normalized,
    sweep,
)


def _breakdown(result):
    if not is_ok(result):
        return GAP
    split = result.traffic_breakdown
    total = max(sum(split.values()), 1)
    spec, val = split["specload"] / total, split["expose_validate"] / total
    return f"{spec:.0%}/{val:.0%}"


def run(apps=None, instructions=None, seed=0, quick=False, include_rc=True,
        engine=None, sanitize=None):
    """Regenerate Figure 8."""
    apps = default_apps("parsec", apps, quick)
    tso = sweep("parsec", apps, ConsistencyModel.TSO, instructions, seed,
                engine=engine, sanitize=sanitize)

    headers = ["app"] + [s.value for s in ALL_SCHEMES] + [
        "IS-Sp spec/val%",
        "IS-Fu spec/val%",
    ]
    rows = []
    norms = {scheme: [] for scheme in ALL_SCHEMES}
    for app in apps:
        norm = normalized(tso[app], lambda r: r.traffic_bytes)
        for scheme in ALL_SCHEMES:
            norms[scheme].append(norm[scheme])
        rows.append(
            [app]
            + [gap_round(norm[s]) for s in ALL_SCHEMES]
            + [
                _breakdown(tso[app][Scheme.IS_SPECTRE]),
                _breakdown(tso[app][Scheme.IS_FUTURE]),
            ]
        )
    rows.append(
        ["average"]
        + [round(mean_available(norms[s]), 3) for s in ALL_SCHEMES]
        + ["", ""]
    )

    extras = {"tso": tso}
    if include_rc:
        rc = sweep("parsec", apps, ConsistencyModel.RC, instructions, seed,
                   engine=engine, sanitize=sanitize)
        rc_norms = {scheme: [] for scheme in ALL_SCHEMES}
        for app in apps:
            norm = normalized(rc[app], lambda r: r.traffic_bytes)
            for scheme in ALL_SCHEMES:
                rc_norms[scheme].append(norm[scheme])
        rows.append(
            ["RC-average"]
            + [round(mean_available(rc_norms[s]), 3) for s in ALL_SCHEMES]
            + ["", ""]
        )
        extras["rc"] = rc

    notes = (
        "Paper (TSO averages): IS-Sp=1.13, IS-Fu=1.33; fence configurations "
        "move *less* data than Base (no speculative data accesses), "
        "blackscholes/swaptions drop below 1.0 even for InvisiSpec."
    )
    return ExperimentResult(
        "figure8",
        "Figure 8: normalized network traffic (PARSEC)",
        headers,
        rows,
        notes=notes,
        extras=extras,
    )
