"""Figure 8: normalized network traffic of the PARSEC applications."""

from __future__ import annotations

from ..configs import ALL_SCHEMES, ConsistencyModel, Scheme
from .common import (
    ExperimentResult,
    arithmetic_mean,
    default_apps,
    normalized,
    sweep,
)


def _breakdown(result):
    split = result.traffic_breakdown
    total = max(sum(split.values()), 1)
    return split["specload"] / total, split["expose_validate"] / total


def run(apps=None, instructions=None, seed=0, quick=False, include_rc=True):
    """Regenerate Figure 8."""
    apps = default_apps("parsec", apps, quick)
    tso = sweep("parsec", apps, ConsistencyModel.TSO, instructions, seed)

    headers = ["app"] + [s.value for s in ALL_SCHEMES] + [
        "IS-Sp spec/val%",
        "IS-Fu spec/val%",
    ]
    rows = []
    norms = {scheme: [] for scheme in ALL_SCHEMES}
    for app in apps:
        norm = normalized(tso[app], lambda r: r.traffic_bytes)
        for scheme in ALL_SCHEMES:
            norms[scheme].append(norm[scheme])
        sp_spec, sp_val = _breakdown(tso[app][Scheme.IS_SPECTRE])
        fu_spec, fu_val = _breakdown(tso[app][Scheme.IS_FUTURE])
        rows.append(
            [app]
            + [round(norm[s], 3) for s in ALL_SCHEMES]
            + [f"{sp_spec:.0%}/{sp_val:.0%}", f"{fu_spec:.0%}/{fu_val:.0%}"]
        )
    rows.append(
        ["average"]
        + [round(arithmetic_mean(norms[s]), 3) for s in ALL_SCHEMES]
        + ["", ""]
    )

    extras = {"tso": tso}
    if include_rc:
        rc = sweep("parsec", apps, ConsistencyModel.RC, instructions, seed)
        rc_norms = {scheme: [] for scheme in ALL_SCHEMES}
        for app in apps:
            norm = normalized(rc[app], lambda r: r.traffic_bytes)
            for scheme in ALL_SCHEMES:
                rc_norms[scheme].append(norm[scheme])
        rows.append(
            ["RC-average"]
            + [round(arithmetic_mean(rc_norms[s]), 3) for s in ALL_SCHEMES]
            + ["", ""]
        )
        extras["rc"] = rc

    notes = (
        "Paper (TSO averages): IS-Sp=1.13, IS-Fu=1.33; fence configurations "
        "move *less* data than Base (no speculative data accesses), "
        "blackscholes/swaptions drop below 1.0 even for InvisiSpec."
    )
    return ExperimentResult(
        "figure8",
        "Figure 8: normalized network traffic (PARSEC)",
        headers,
        rows,
        notes=notes,
        extras=extras,
    )
