"""Design-choice ablations (DESIGN.md section 4).

Each ablation disables one of InvisiSpec's mechanisms in the setting where
that mechanism actually binds:

1. ``no-llc-sb`` (libquantum, streaming) — every memory-sourced
   validation/exposure pays a second DRAM access.
2. ``no-val-to-exp`` (gamess, cache-friendly) — the Section V-C1
   transformation is what turns some TSO validations into exposures.
3. ``no-early-squash`` (two racing cores) — without Section V-C2, stale
   USLs survive to their validations and fail there instead.
4. ``base-squash-policy`` (canneal, high sharing) — the baseline's
   conservative consistency squashes vs InvisiSpec riding invalidations
   out with validations (the Section IX-C PARSEC discussion).
"""

from __future__ import annotations

from ..configs import ConsistencyModel, ProcessorConfig, Scheme
from ..cpu.isa import MicroOp, OpKind
from ..cpu.trace import ProgramTrace
from ..params import SystemParams
from ..runner import run_parsec, run_spec
from ..system import System
from .common import ExperimentResult


def _row(label, result, baseline=None):
    norm = result.cycles / baseline.cycles if baseline else 1.0
    return [
        label,
        result.cycles,
        round(norm, 3),
        result.traffic_bytes,
        result.count("dram.accesses"),
        result.count("invisispec.validations"),
        result.count("invisispec.exposures"),
        result.count("invisispec.early_squash_invalidation"),
        result.count("core.squashes.validation_fail"),
        result.count("core.squashes.consistency"),
    ]


def _racing_run(early_squash, rounds=40):
    """Core 1 stores into the line core 0 keeps reading speculatively."""
    shared = 0x7800_0000
    reader = []
    for i in range(rounds):
        reader.append(MicroOp(OpKind.LOAD, pc=0x100,
                              addr=0x1900_0000 + 64 * i, size=8,
                              deps=(3,) if i else ()))
        reader.append(MicroOp(OpKind.LOAD, pc=0x104, addr=shared, size=8))
        reader.append(MicroOp(OpKind.ALU, pc=0x108, deps=(1,), latency=4))
    writer = []
    for i in range(rounds):
        writer.append(MicroOp(OpKind.ALU, pc=0x200, latency=130,
                              deps=(2,) if i else ()))
        writer.append(MicroOp(OpKind.STORE, pc=0x204, addr=shared, size=8,
                              store_value=i))
    system = System(
        params=SystemParams(num_cores=2),
        config=ProcessorConfig(
            scheme=Scheme.IS_FUTURE,
            consistency=ConsistencyModel.TSO,
            early_squash=early_squash,
        ),
        traces=[ProgramTrace(reader), ProgramTrace(writer)],
    )
    return system.run(max_cycles=2_000_000)


def run(app="libquantum", v2e_app="gamess", parsec_app="canneal",
        instructions=None, seed=0, **_ignored):
    """Run the four ablations; returns an :class:`ExperimentResult`."""
    kwargs = {} if instructions is None else {"instructions": instructions}
    headers = [
        "configuration", "cycles", "norm", "traffic B", "DRAM",
        "vals", "exps", "early-squash", "val fails", "consist squashes",
    ]
    rows = []

    # 1. LLC-SB: a streaming workload whose USLs come from memory.
    reference = run_spec(
        app,
        ProcessorConfig(scheme=Scheme.IS_FUTURE),
        seed=seed,
        **kwargs,
    )
    rows.append(_row(f"{app} IS-Fu (full design)", reference, reference))
    no_llc = run_spec(
        app,
        ProcessorConfig(scheme=Scheme.IS_FUTURE, llc_sb_enabled=False),
        seed=seed,
        **kwargs,
    )
    rows.append(_row(f"{app} IS-Fu no-llc-sb", no_llc, reference))

    # 2. V->E transformation: a cache-friendly workload where older loads
    # complete quickly (the transformation's precondition).
    v2e_ref = run_spec(
        v2e_app, ProcessorConfig(scheme=Scheme.IS_FUTURE), seed=seed, **kwargs
    )
    rows.append(_row(f"{v2e_app} IS-Fu (full design)", v2e_ref, v2e_ref))
    no_v2e = run_spec(
        v2e_app,
        ProcessorConfig(scheme=Scheme.IS_FUTURE,
                        val_to_exp_optimization=False),
        seed=seed,
        **kwargs,
    )
    rows.append(_row(f"{v2e_app} IS-Fu no-val-to-exp", no_v2e, v2e_ref))

    # 3. Early squash: a two-core race on one line.
    racing_on = _racing_run(early_squash=True)
    racing_off = _racing_run(early_squash=False)
    rows.append(_row("2-core race IS-Fu (early squash)", racing_on, racing_on))
    rows.append(_row("2-core race IS-Fu no-early-squash", racing_off,
                     racing_on))

    # 4. The baseline's conservative squashes vs InvisiSpec riding them out.
    base = run_parsec(
        parsec_app, ProcessorConfig(scheme=Scheme.BASE), seed=seed, **kwargs
    )
    invisi = run_parsec(
        parsec_app, ProcessorConfig(scheme=Scheme.IS_FUTURE), seed=seed,
        **kwargs,
    )
    rows.append(_row(f"{parsec_app} Base (conservative squashes)", base, base))
    rows.append(_row(f"{parsec_app} IS-Fu (validations instead)", invisi, base))

    notes = (
        "Expected: (1) no-llc-sb multiplies DRAM accesses and cycles for "
        "streaming USLs; (2) no-val-to-exp moves exposures back into "
        "validations; (3) no-early-squash converts early squashes into "
        "late validation failures; (4) the baseline pays conservative "
        "consistency squashes that InvisiSpec's validations avoid."
    )
    return ExperimentResult(
        "ablations", "Design-choice ablations", headers, rows, notes=notes
    )
