"""Figure 4: normalized execution time of the SPEC applications.

For each application and each of the five Table V configurations, the
execution time (cycles for the measured instruction window) normalized to
the insecure baseline, plus the fraction of time lost to validation stalls
for the InvisiSpec configurations (the "ValidationStall" overlay in the
paper's bars).  The final rows are the TSO average and the RC average, as
in the paper.
"""

from __future__ import annotations

from ..configs import ALL_SCHEMES, ConsistencyModel, Scheme
from ..reliability import is_ok
from .common import (
    ExperimentResult,
    default_apps,
    gap_round,
    mean_available,
    normalized,
    sweep,
)


def _stall_fraction(result):
    if not is_ok(result):
        return None
    return result.count("invisispec.validation_stall_cycles") / max(
        result.cycles, 1
    )


def run(apps=None, instructions=None, seed=0, quick=False, include_rc=True,
        engine=None, sanitize=None):
    """Regenerate Figure 4.  Returns an :class:`ExperimentResult` whose rows
    are ``[app, Base, Fe-Sp, IS-Sp, Fe-Fu, IS-Fu, IS-Sp stall, IS-Fu stall]``.

    With ``engine``, failed cells render as gaps and are excluded from the
    average rows (fail-fast without one).
    """
    apps = default_apps("spec", apps, quick)
    tso = sweep("spec", apps, ConsistencyModel.TSO, instructions, seed,
                engine=engine, sanitize=sanitize)

    headers = ["app"] + [s.value for s in ALL_SCHEMES] + [
        "IS-Sp valstall",
        "IS-Fu valstall",
    ]
    rows = []
    norm_by_scheme = {scheme: [] for scheme in ALL_SCHEMES}
    for app in apps:
        norm = normalized(tso[app], lambda r: r.cycles)
        for scheme in ALL_SCHEMES:
            norm_by_scheme[scheme].append(norm[scheme])
        rows.append(
            [app]
            + [gap_round(norm[s]) for s in ALL_SCHEMES]
            + [
                gap_round(_stall_fraction(tso[app][Scheme.IS_SPECTRE]), 4),
                gap_round(_stall_fraction(tso[app][Scheme.IS_FUTURE]), 4),
            ]
        )
    rows.append(
        ["average"]
        + [round(mean_available(norm_by_scheme[s]), 3) for s in ALL_SCHEMES]
        + ["", ""]
    )

    extras = {"tso": tso}
    if include_rc:
        rc = sweep("spec", apps, ConsistencyModel.RC, instructions, seed,
                   engine=engine, sanitize=sanitize)
        rc_norms = {scheme: [] for scheme in ALL_SCHEMES}
        for app in apps:
            norm = normalized(rc[app], lambda r: r.cycles)
            for scheme in ALL_SCHEMES:
                rc_norms[scheme].append(norm[scheme])
        rows.append(
            ["RC-average"]
            + [round(mean_available(rc_norms[s]), 3) for s in ALL_SCHEMES]
            + ["", ""]
        )
        extras["rc"] = rc

    notes = (
        "Paper (TSO averages): Base=1.00, Fe-Sp=1.88, IS-Sp=1.076, "
        "Fe-Fu=3.46, IS-Fu=1.182; RC averages: IS-Sp=1.082, IS-Fu=1.168.\n"
        "Expected shape: Fe >> IS >= Base for both attack models."
    )
    return ExperimentResult(
        "figure4",
        "Figure 4: normalized execution time (SPEC)",
        headers,
        rows,
        notes=notes,
        extras=extras,
    )
