"""Total Store Order (Section II-B).

TSO forbids all observable reorderings except store->load.  Implementations
keep load->load order by squashing a performed-but-unretired load when its
line is invalidated or evicted; the write buffer is FIFO so stores perform
in order.

For InvisiSpec (Section V-C): a USL that reads while an older load or fence
is still outstanding in the ROB must validate; with the Section V-C1
optimization, a USL whose older loads have all performed *and* completed
their validations may expose instead.
"""

from __future__ import annotations

from ..cpu.lsq import STATE_NORMAL, STATE_VALIDATION
from .model import ConsistencyPolicy


class TSOPolicy(ConsistencyPolicy):
    name = "TSO"
    fifo_write_buffer = True

    def squash_on_invalidation(self, core, lq_entry):
        # Conventional TSO hardware conservatively squashes any performed,
        # not-yet-retired load whose line is invalidated.
        return True

    def usl_needs_validation(self, core, lq_entry, optimization_enabled):
        older = core.lq.entries()
        for other in older:
            if other.index >= lq_entry.index:
                break
            if not other.valid:
                continue
            if not optimization_enabled:
                return True  # any older load in the ROB forces a validation
            # Section V-C1: the USL may expose only if every older load has
            # (1) received its data and (2) finished any validation it needed.
            if not other.performed:
                return True
            if other.vstate == STATE_VALIDATION and not other.visibility_done:
                return True
            if other.vstate == STATE_NORMAL and other.rob.state != "completed":
                return True
        # An older incomplete fence also forces validation.
        fence_seq = core.min_incomplete_fence_seq()
        if fence_seq is not None and fence_seq < lq_entry.seq:
            return True
        return False
