"""Consistency-policy interface.

The consistency model decides three things in this simulator
(Sections II-B and V-C of the paper):

1. Whether the post-retirement write buffer drains FIFO (TSO) or relaxed
   (RC).
2. Whether the *baseline* core squashes a performed-but-not-retired load
   when the load's line is invalidated (or evicted).
3. Whether a USL must be made visible with a *validation* or is allowed the
   cheaper *exposure* — evaluated at the time the USL issues its read.
"""

from __future__ import annotations

from ..configs import ConsistencyModel
from ..errors import ConfigError


class ConsistencyPolicy:
    """Abstract consistency policy; one instance per core."""

    name = "abstract"
    fifo_write_buffer = True

    def squash_on_invalidation(self, core, lq_entry):
        """Baseline behaviour: squash this performed, unretired load?"""
        raise NotImplementedError

    def usl_needs_validation(self, core, lq_entry, optimization_enabled):
        """Must this USL validate (True) or may it expose (False)?

        Evaluated when the USL initiates its speculative read
        (Section V-C); ``optimization_enabled`` gates the Section V-C1
        validation-to-exposure transformation.
        """
        raise NotImplementedError


def make_consistency_policy(model):
    from .rc import RCPolicy
    from .tso import TSOPolicy

    if model is ConsistencyModel.TSO:
        return TSOPolicy()
    if model is ConsistencyModel.RC:
        return RCPolicy()
    raise ConfigError(f"unknown consistency model {model!r}")
