"""Memory consistency models: TSO and Release Consistency."""

from .model import ConsistencyPolicy, make_consistency_policy
from .rc import RCPolicy
from .tso import TSOPolicy

__all__ = ["ConsistencyPolicy", "make_consistency_policy", "TSOPolicy", "RCPolicy"]
