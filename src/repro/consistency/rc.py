"""Release Consistency (Section II-B).

RC allows any reordering except across synchronization: loads/stores may
not be reordered with a prior acquire or a subsequent release.  RC cores
squash a performed load on an incoming invalidation only when an older
non-retired acquire exists, and drain the write buffer out of order.

For InvisiSpec, only USLs that read under an older outstanding
acquire/fence must validate; nearly all loads expose (Section V-C), which
is why the paper sees almost no validations under RC.
"""

from __future__ import annotations

from .model import ConsistencyPolicy


class RCPolicy(ConsistencyPolicy):
    name = "RC"
    fifo_write_buffer = False

    def _older_sync(self, core, seq):
        sync_seq = core.min_incomplete_sync_seq()
        return sync_seq is not None and sync_seq < seq

    def squash_on_invalidation(self, core, lq_entry):
        return self._older_sync(core, lq_entry.seq)

    def usl_needs_validation(self, core, lq_entry, optimization_enabled):
        return self._older_sync(core, lq_entry.seq)
