"""Processor security configurations (Table V of the paper).

=======  ===================  ====================================================
Name     Paper name           Meaning
=======  ===================  ====================================================
BASE     UnsafeBaseline       Conventional, insecure baseline processor.
FE_SP    Fence-Spectre        A fence after every indirect/conditional branch.
IS_SP    InvisiSpec-Spectre   USLs modify only the speculative buffer and are
                              made visible once all preceding branches resolve.
FE_FU    Fence-Future         A fence before every load instruction.
IS_FU    InvisiSpec-Future    USLs modify only the speculative buffer and are
                              made visible once non-speculative or speculative
                              non-squashable.
=======  ===================  ====================================================

A :class:`ProcessorConfig` couples a defense scheme with a memory consistency
model and the InvisiSpec feature toggles used by the ablation benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import ConfigError


class Scheme(enum.Enum):
    """Defense scheme implemented by the core and memory system."""

    BASE = "Base"
    FENCE_SPECTRE = "Fe-Sp"
    IS_SPECTRE = "IS-Sp"
    FENCE_FUTURE = "Fe-Fu"
    IS_FUTURE = "IS-Fu"
    #: Analysis-guided selective protection (repro.specflow): only loads
    #: whose static PC the speculative-taint analysis flags as a possible
    #: transmitter take the InvisiSpec USL path; every other load uses the
    #: baseline fast path.  Futuristic-strength on the protected PCs.
    SELECTIVE = "IS-Sel"

    @property
    def is_invisispec(self):
        return self in (Scheme.IS_SPECTRE, Scheme.IS_FUTURE, Scheme.SELECTIVE)

    @property
    def is_fence(self):
        return self in (Scheme.FENCE_SPECTRE, Scheme.FENCE_FUTURE)

    @property
    def attack_model(self):
        """``"spectre"``, ``"futuristic"`` or ``None`` for the baseline."""
        if self in (Scheme.FENCE_SPECTRE, Scheme.IS_SPECTRE):
            return "spectre"
        if self in (Scheme.FENCE_FUTURE, Scheme.IS_FUTURE, Scheme.SELECTIVE):
            return "futuristic"
        return None


class ConsistencyModel(enum.Enum):
    """Memory consistency model of the baseline machine (Section II-B)."""

    TSO = "TSO"
    RC = "RC"


#: The five simulated processor configurations, in the paper's bar order.
ALL_SCHEMES = (
    Scheme.BASE,
    Scheme.FENCE_SPECTRE,
    Scheme.IS_SPECTRE,
    Scheme.FENCE_FUTURE,
    Scheme.IS_FUTURE,
)


@dataclass(frozen=True)
class ProcessorConfig:
    """A security scheme plus consistency model and feature toggles.

    The three boolean toggles correspond to the paper's optimizations and are
    only meaningful for the InvisiSpec schemes; the ablation benchmarks
    disable them one at a time:

    * ``llc_sb_enabled`` — per-core LLC speculative buffer (Section V-F).
    * ``val_to_exp_optimization`` — transform a validation into an exposure
      when no earlier load is outstanding (Section V-C1).
    * ``early_squash`` — squash validation-needing USLs when their line is
      invalidated (Section V-C2).
    * ``base_squash_on_l1_eviction`` — whether the *baseline* conservatively
      squashes in-flight loads when their line is evicted from the L1
      (Section IX-C notes existing processors do; InvisiSpec does not need
      to for exposure-marked loads).

    ``protected_pcs`` is only meaningful for :attr:`Scheme.SELECTIVE`: the
    static load PCs the specflow analysis classified TRANSMIT/UNKNOWN.
    Loads at these PCs take the USL path; all others use the fast path.
    """

    scheme: Scheme = Scheme.BASE
    consistency: ConsistencyModel = ConsistencyModel.TSO
    llc_sb_enabled: bool = True
    val_to_exp_optimization: bool = True
    early_squash: bool = True
    base_squash_on_l1_eviction: bool = True
    protected_pcs: frozenset = frozenset()

    def __post_init__(self):
        if not isinstance(self.scheme, Scheme):
            raise ConfigError(f"scheme must be a Scheme, got {self.scheme!r}")
        if not isinstance(self.consistency, ConsistencyModel):
            raise ConfigError(
                f"consistency must be a ConsistencyModel, got {self.consistency!r}"
            )
        if not isinstance(self.protected_pcs, frozenset):
            # Accept any iterable of ints but store the hashable form the
            # frozen dataclass (and the reliability layer's pickling) needs.
            object.__setattr__(
                self, "protected_pcs", frozenset(self.protected_pcs)
            )

    @property
    def name(self):
        return f"{self.scheme.value}/{self.consistency.value}"

    @property
    def is_invisispec(self):
        return self.scheme.is_invisispec

    @property
    def attack_model(self):
        return self.scheme.attack_model


def config_matrix(consistency=ConsistencyModel.TSO):
    """The five Table V configurations under one consistency model."""
    return [ProcessorConfig(scheme=s, consistency=consistency) for s in ALL_SCHEMES]
