"""SPEC CPU2006 workload profiles (the 23 applications of Figure 4).

Single-threaded; run on one core with one enabled L2 bank, as in the paper.
Parameters encode each application's well-known behaviour and the specific
data points the paper reports: sjeng's extreme squash rate (73,752 squashes
per million instructions, Table VI), libquantum's and GemsFDTD's ~30 L1
misses per kilo-instruction streaming (Section IX-B), omnetpp's TLB-miss
sensitivity, mcf's pointer-chasing, and so on.
"""

from __future__ import annotations

from ..errors import WorkloadError
from .generator import SyntheticTrace
from .profiles import WorkloadProfile


def _p(name, suite, **kw):
    return WorkloadProfile(name=name, suite=suite, **kw)


SPEC_PROFILES = {
    profile.name: profile
    for profile in [
        # ----------------------------------------------------------- SPECint
        _p("bzip2", "spec_int", load_frac=0.26, store_frac=0.09, branch_frac=0.15,
           branch_mispredict_target=0.08, footprint_lines=8192, hot_fraction=0.85,
           hot_lines=512, tlb_locality=0.98, alu_dep_fraction=0.5),
        _p("mcf", "spec_int", load_frac=0.35, store_frac=0.09, branch_frac=0.17,
           branch_mispredict_target=0.08, footprint_lines=98304, hot_fraction=0.65,
           hot_lines=256, tlb_locality=0.9, alu_dep_fraction=0.7,
           branch_dep_fraction=0.35,
           load_dep_fraction=0.5),
        _p("gobmk", "spec_int", load_frac=0.24, store_frac=0.12, branch_frac=0.19,
           branch_mispredict_target=0.16, branch_pcs=1024, footprint_lines=12288,
           hot_fraction=0.85, hot_lines=512, tlb_locality=0.97),
        _p("hmmer", "spec_int", load_frac=0.30, store_frac=0.12, branch_frac=0.08,
           branch_mispredict_target=0.02, footprint_lines=4096, hot_fraction=0.95,
           hot_lines=384, tlb_locality=0.99),
        _p("sjeng", "spec_int", load_frac=0.22, store_frac=0.08, branch_frac=0.18,
           branch_mispredict_target=0.30, branch_pcs=2048, footprint_lines=8192,
           hot_fraction=0.88, hot_lines=512, tlb_locality=0.97,
           branch_dep_fraction=0.25, icache_miss_rate=0.004),
        _p("libquantum", "spec_int", load_frac=0.25, store_frac=0.08,
           branch_frac=0.18, branch_mispredict_target=0.003,
           footprint_lines=32768, hot_fraction=0.6, hot_lines=64,
           stride_fraction=0.85, tlb_locality=0.98, alu_dep_fraction=0.3,
           branch_dep_fraction=0.02),
        _p("h264ref", "spec_int", load_frac=0.30, store_frac=0.12,
           branch_frac=0.10, branch_mispredict_target=0.05,
           footprint_lines=8192, hot_fraction=0.92, hot_lines=768, tlb_locality=0.98),
        _p("omnetpp", "spec_int", load_frac=0.30, store_frac=0.14,
           branch_frac=0.16, branch_mispredict_target=0.10,
           footprint_lines=65536, hot_fraction=0.8, hot_lines=512, tlb_locality=0.6,
           alu_dep_fraction=0.6, branch_dep_fraction=0.45,
           icache_miss_rate=0.004,
           load_dep_fraction=0.5),
        _p("astar", "spec_int", load_frac=0.28, store_frac=0.08,
           branch_frac=0.16, branch_mispredict_target=0.12,
           footprint_lines=24576, hot_fraction=0.8, hot_lines=512, tlb_locality=0.92,
           alu_dep_fraction=0.6, branch_dep_fraction=0.3,
           load_dep_fraction=0.3),
        # ------------------------------------------------------------ SPECfp
        _p("bwaves", "spec_fp", load_frac=0.30, store_frac=0.09,
           branch_frac=0.06, branch_mispredict_target=0.01,
           footprint_lines=49152, hot_fraction=0.7, hot_lines=256,
           stride_fraction=0.55, tlb_locality=0.98, fp_fraction=0.6,
           branch_dep_fraction=0.05),
        _p("gamess", "spec_fp", load_frac=0.28, store_frac=0.10,
           branch_frac=0.08, branch_mispredict_target=0.02,
           footprint_lines=4096, hot_fraction=0.95, hot_lines=512, tlb_locality=0.99,
           fp_fraction=0.6),
        _p("milc", "spec_fp", load_frac=0.30, store_frac=0.12, branch_frac=0.05,
           branch_mispredict_target=0.01, footprint_lines=49152,
           hot_fraction=0.7, hot_lines=256, stride_fraction=0.5, tlb_locality=0.95,
           fp_fraction=0.55, branch_dep_fraction=0.05),
        _p("zeusmp", "spec_fp", load_frac=0.28, store_frac=0.11,
           branch_frac=0.05, branch_mispredict_target=0.01,
           footprint_lines=32768, hot_fraction=0.75, hot_lines=512,
           stride_fraction=0.35, tlb_locality=0.97, fp_fraction=0.55),
        _p("gromacs", "spec_fp", load_frac=0.28, store_frac=0.11,
           branch_frac=0.07, branch_mispredict_target=0.03,
           footprint_lines=6144, hot_fraction=0.92, hot_lines=512, tlb_locality=0.99,
           fp_fraction=0.6),
        _p("cactusADM", "spec_fp", load_frac=0.30, store_frac=0.10,
           branch_frac=0.03, branch_mispredict_target=0.005,
           footprint_lines=40960, hot_fraction=0.7, hot_lines=256,
           stride_fraction=0.45, tlb_locality=0.97, fp_fraction=0.65,
           branch_dep_fraction=0.02),
        _p("leslie3d", "spec_fp", load_frac=0.30, store_frac=0.11,
           branch_frac=0.04, branch_mispredict_target=0.01,
           footprint_lines=49152, hot_fraction=0.7, hot_lines=256,
           stride_fraction=0.5, tlb_locality=0.97, fp_fraction=0.55),
        _p("namd", "spec_fp", load_frac=0.28, store_frac=0.09, branch_frac=0.08,
           branch_mispredict_target=0.02, footprint_lines=4096,
           hot_fraction=0.95, hot_lines=512, tlb_locality=0.99, fp_fraction=0.6),
        _p("soplex", "spec_fp", load_frac=0.30, store_frac=0.08,
           branch_frac=0.12, branch_mispredict_target=0.06,
           footprint_lines=57344, hot_fraction=0.75, hot_lines=384, tlb_locality=0.93,
           alu_dep_fraction=0.6, branch_dep_fraction=0.25, fp_fraction=0.4,
           load_dep_fraction=0.3),
        _p("calculix", "spec_fp", load_frac=0.28, store_frac=0.10,
           branch_frac=0.08, branch_mispredict_target=0.03,
           footprint_lines=8192, hot_fraction=0.9, hot_lines=512, tlb_locality=0.98,
           fp_fraction=0.55),
        _p("GemsFDTD", "spec_fp", load_frac=0.30, store_frac=0.11,
           branch_frac=0.04, branch_mispredict_target=0.005,
           footprint_lines=81920, hot_fraction=0.6, hot_lines=128,
           stride_fraction=0.8, tlb_locality=0.97, fp_fraction=0.55,
           branch_dep_fraction=0.02),
        _p("tonto", "spec_fp", load_frac=0.28, store_frac=0.11,
           branch_frac=0.09, branch_mispredict_target=0.03,
           footprint_lines=8192, hot_fraction=0.9, hot_lines=512, tlb_locality=0.98,
           fp_fraction=0.55),
        _p("lbm", "spec_fp", load_frac=0.28, store_frac=0.15, branch_frac=0.02,
           branch_mispredict_target=0.002, footprint_lines=65536,
           hot_fraction=0.5, hot_lines=64, stride_fraction=0.9, tlb_locality=0.98,
           fp_fraction=0.6, branch_dep_fraction=0.01),
        _p("sphinx3", "spec_fp", load_frac=0.30, store_frac=0.07,
           branch_frac=0.12, branch_mispredict_target=0.05,
           footprint_lines=24576, hot_fraction=0.8, hot_lines=512, tlb_locality=0.95,
           fp_fraction=0.45, branch_dep_fraction=0.2),
    ]
}


def spec_names():
    """The 23 SPEC applications in the paper's Figure 4 order."""
    return list(SPEC_PROFILES.keys())


def spec_trace(name, seed=0):
    """A single-core trace source for one SPEC application."""
    try:
        profile = SPEC_PROFILES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown SPEC workload {name!r}; choose from {spec_names()}"
        )
    return SyntheticTrace(profile, seed=seed, core_id=0)
