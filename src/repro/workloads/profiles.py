"""Workload profiles.

A :class:`WorkloadProfile` captures the features of an application that
drive InvisiSpec's costs and benefits: instruction mix, branch behaviour
(squash rate), memory footprint and locality (L1/L2 MPKI), page spread
(TLB pressure), dependence structure (speculation window length), and — for
multithreaded workloads — sharing and synchronization (coherence traffic
and consistency squashes).

Profiles are calibrated to the per-application data the paper itself
publishes: Table VI's squash rates and validation/exposure splits, and the
Section IX observations (sjeng's branch behaviour, libquantum/GemsFDTD's
~30 L1 misses per kilo-instruction, omnetpp's TLB misses, blackscholes/
swaptions' eviction-squash behaviour in the baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WorkloadError


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one application's dynamic behaviour."""

    name: str
    suite: str  # "spec_int" | "spec_fp" | "parsec"
    load_frac: float = 0.25
    store_frac: float = 0.10
    branch_frac: float = 0.15
    #: Asymptotic per-branch misprediction probability once the tournament
    #: predictor has learned each branch's bias.
    branch_mispredict_target: float = 0.05
    branch_pcs: int = 256
    #: Distinct cache lines in the random-access region.
    footprint_lines: int = 4096
    #: Fraction of non-streaming accesses that hit a small hot set.
    hot_fraction: float = 0.7
    hot_lines: int = 256
    #: Fraction of memory accesses that stream sequentially (unit stride).
    stride_fraction: float = 0.0
    #: Probability a cold access lands in a recently-touched page; low
    #: values (omnetpp) thrash the 64-entry D-TLB.
    tlb_locality: float = 0.97
    #: Probability an ALU op depends on the most recent load.
    alu_dep_fraction: float = 0.4
    #: Probability a load's *address* depends on the most recent load
    #: (pointer chasing: mcf, omnetpp, canneal).
    load_dep_fraction: float = 0.0
    #: Probability a branch depends on the most recent load (long windows).
    branch_dep_fraction: float = 0.2
    #: Fraction of non-memory ops that are FP.
    fp_fraction: float = 0.0
    icache_miss_rate: float = 0.002
    #: PARSEC only: fraction of accesses that touch the shared region.
    shared_fraction: float = 0.0
    shared_lines: int = 2048
    shared_store_fraction: float = 0.3
    #: PARSEC only: ops between acquire/release critical sections (0 = none).
    sync_interval: int = 0

    def __post_init__(self):
        total = self.load_frac + self.store_frac + self.branch_frac
        if not 0 < total < 1:
            raise WorkloadError(
                f"{self.name}: load+store+branch fractions must be in (0, 1), "
                f"got {total}"
            )
        for field_name in (
            "branch_mispredict_target",
            "hot_fraction",
            "stride_fraction",
            "tlb_locality",
            "alu_dep_fraction",
            "load_dep_fraction",
            "branch_dep_fraction",
            "fp_fraction",
            "icache_miss_rate",
            "shared_fraction",
            "shared_store_fraction",
        ):
            value = getattr(self, field_name)
            if not 0 <= value <= 1:
                raise WorkloadError(f"{self.name}: {field_name}={value} not in [0,1]")
        for field_name in ("footprint_lines", "hot_lines", "branch_pcs"):
            if getattr(self, field_name) <= 0:
                raise WorkloadError(f"{self.name}: {field_name} must be positive")

    @property
    def alu_frac(self):
        return 1.0 - self.load_frac - self.store_frac - self.branch_frac
