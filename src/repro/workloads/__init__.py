"""Synthetic workloads calibrated to the paper's SPEC/PARSEC characteristics."""

from .generator import SyntheticTrace
from .parsec import PARSEC_PROFILES, parsec_names, parsec_traces
from .profiles import WorkloadProfile
from .spec2006 import SPEC_PROFILES, spec_names, spec_trace

__all__ = [
    "SyntheticTrace",
    "WorkloadProfile",
    "SPEC_PROFILES",
    "spec_names",
    "spec_trace",
    "PARSEC_PROFILES",
    "parsec_names",
    "parsec_traces",
]
