"""PARSEC workload profiles (the 9 applications of Figure 7).

Multithreaded; run on 8 cores (Table IV).  Every thread runs the same
profile with a per-core seed; the shared region and critical sections drive
cross-core invalidations, consistency squashes, and coherence traffic.
blackscholes and swaptions are tuned to show the baseline's eviction-squash
behaviour the paper highlights in Section IX-C (they run *faster* under
InvisiSpec than under Base).
"""

from __future__ import annotations

from ..errors import WorkloadError
from .generator import SyntheticTrace
from .profiles import WorkloadProfile


def _p(name, **kw):
    return WorkloadProfile(name=name, suite="parsec", **kw)


PARSEC_PROFILES = {
    profile.name: profile
    for profile in [
        _p("blackscholes", load_frac=0.30, store_frac=0.08, branch_frac=0.05,
           branch_mispredict_target=0.01, footprint_lines=32768,
           hot_fraction=0.6, hot_lines=192, stride_fraction=0.5, tlb_locality=0.98,
           fp_fraction=0.6, alu_dep_fraction=0.6, branch_dep_fraction=0.05,
           shared_fraction=0.01, shared_lines=512),
        _p("bodytrack", load_frac=0.28, store_frac=0.10, branch_frac=0.12,
           branch_mispredict_target=0.08, footprint_lines=16384,
           hot_fraction=0.85, hot_lines=512, tlb_locality=0.97, fp_fraction=0.4,
           shared_fraction=0.06, shared_lines=2048, sync_interval=400),
        _p("canneal", load_frac=0.32, store_frac=0.10, branch_frac=0.12,
           branch_mispredict_target=0.10, footprint_lines=98304,
           hot_fraction=0.6, hot_lines=256, tlb_locality=0.9,
           alu_dep_fraction=0.65, branch_dep_fraction=0.3,
           shared_fraction=0.15, shared_lines=4096, sync_interval=250,
           load_dep_fraction=0.5),
        _p("facesim", load_frac=0.30, store_frac=0.12, branch_frac=0.07,
           branch_mispredict_target=0.03, footprint_lines=49152,
           hot_fraction=0.75, hot_lines=512, stride_fraction=0.3, tlb_locality=0.96,
           fp_fraction=0.55, shared_fraction=0.05, shared_lines=2048,
           sync_interval=500),
        _p("ferret", load_frac=0.29, store_frac=0.11, branch_frac=0.13,
           branch_mispredict_target=0.06, footprint_lines=24576,
           hot_fraction=0.8, hot_lines=512, tlb_locality=0.96,
           shared_fraction=0.10, shared_lines=2048, sync_interval=300),
        _p("fluidanimate", load_frac=0.29, store_frac=0.12, branch_frac=0.10,
           branch_mispredict_target=0.04, footprint_lines=32768,
           hot_fraction=0.8, hot_lines=512, tlb_locality=0.96, fp_fraction=0.45,
           shared_fraction=0.10, shared_lines=4096, sync_interval=150),
        _p("freqmine", load_frac=0.30, store_frac=0.10, branch_frac=0.14,
           branch_mispredict_target=0.08, footprint_lines=57344,
           hot_fraction=0.75, hot_lines=512, tlb_locality=0.94,
           alu_dep_fraction=0.6, branch_dep_fraction=0.25,
           shared_fraction=0.05, shared_lines=2048, sync_interval=600,
           load_dep_fraction=0.25),
        _p("swaptions", load_frac=0.30, store_frac=0.09, branch_frac=0.06,
           branch_mispredict_target=0.015, footprint_lines=24576,
           hot_fraction=0.6, hot_lines=192, stride_fraction=0.45, tlb_locality=0.98,
           fp_fraction=0.6, alu_dep_fraction=0.6, branch_dep_fraction=0.05,
           shared_fraction=0.01, shared_lines=512),
        _p("x264", load_frac=0.29, store_frac=0.12, branch_frac=0.11,
           branch_mispredict_target=0.06, footprint_lines=16384,
           hot_fraction=0.88, hot_lines=768, tlb_locality=0.97,
           shared_fraction=0.06, shared_lines=2048, sync_interval=400),
    ]
}


def parsec_names():
    """The 9 PARSEC applications in the paper's Figure 7 order."""
    return list(PARSEC_PROFILES.keys())


def parsec_traces(name, num_cores=8, seed=0):
    """One trace source per core for a PARSEC application."""
    try:
        profile = PARSEC_PROFILES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown PARSEC workload {name!r}; choose from {parsec_names()}"
        )
    return [
        SyntheticTrace(profile, seed=seed, core_id=core)
        for core in range(num_cores)
    ]
