"""Deterministic synthetic trace generation from a workload profile.

The generator emits an endless correct-path stream whose statistics follow
the profile, plus wrong-path streams for mispredicted branches (derived
deterministically from the branch op's identity, so a given branch always
spills the same transient instructions).

Memory layout per core (core *c*):

* random region   — ``0x1000_0000 * (c+1)``: ``footprint_lines`` lines
  spread over ``pages`` pages; a ``hot_lines`` prefix takes
  ``hot_fraction`` of the non-streaming accesses.
* streaming region — above the random region; unit-stride walk, wraps.
* shared region   — ``0x7000_0000`` (PARSEC): common to all cores, source
  of cross-core invalidations and consistency squashes.
"""

from __future__ import annotations

import random

from ..cpu.isa import MicroOp, OpKind
from ..cpu.trace import TraceSource

_STREAM_LINES = 1 << 16  # 4 MB streaming window, larger than the L2 slice
_SHARED_BASE = 0x7000_0000
_LINE = 64


class SyntheticTrace(TraceSource):
    """Endless profile-driven instruction stream for one core."""

    def __init__(self, profile, seed=0, core_id=0):
        self.profile = profile
        self.core_id = core_id
        self.rng = random.Random((seed + 1) * 0x9E3779B1 + core_id)
        self._base = 0x1000_0000 * (core_id + 1)
        self._stream_base = self._base + 0x0800_0000
        self._stream_pos = 0
        self._lines_per_page = 4096 // _LINE
        self._recent_pages = []  # small working set of recently-touched pages
        self._branch_bias = self._make_branch_biases(profile, seed, core_id)
        self._ops_since_load = 99
        self._emitted = 0
        self._forced = []  # queued ops (critical sections)
        self._sync_countdown = profile.sync_interval or 0
        self._wp_seed_base = (seed + 1) * 2_654_435_761 + core_id * 97
        self._branch_salts = {}  # branch op uid -> emission index
        self._branches_emitted = 0

    @staticmethod
    def _make_branch_biases(profile, seed, core_id):
        """Per-PC taken bias; the tournament predictor's asymptotic
        misprediction rate on a bias-b Bernoulli branch is ~min(b, 1-b)."""
        rng = random.Random(seed * 7919 + core_id + 13)
        target = profile.branch_mispredict_target
        biases = {}
        for i in range(profile.branch_pcs):
            pc = 0x40_0000 + 4 * i
            jitter = (rng.random() - 0.5) * min(target, 0.08)
            bias = min(max(1.0 - target + jitter, 0.5), 1.0)
            if rng.random() < 0.5:
                bias = 1.0 - bias  # mostly-not-taken branches
            biases[pc] = bias
        return biases

    # ------------------------------------------------------------- addresses

    _RECENT_PAGE_WINDOW = 48

    def _random_region_addr(self, rng, track_pages=True):
        """``track_pages=False`` for wrong-path generation: transient ops
        must not mutate generator state, or the committed stream would
        differ between schemes."""
        profile = self.profile
        if rng.random() < profile.hot_fraction:
            line = rng.randrange(min(profile.hot_lines, profile.footprint_lines))
        else:
            recent = self._recent_pages
            if recent and rng.random() < profile.tlb_locality:
                page = recent[rng.randrange(len(recent))]
                line = page * self._lines_per_page + rng.randrange(
                    self._lines_per_page
                )
                if line >= profile.footprint_lines:
                    line = rng.randrange(profile.footprint_lines)
            else:
                line = rng.randrange(profile.footprint_lines)
            if track_pages:
                page = line // self._lines_per_page
                if page not in recent:
                    recent.append(page)
                    if len(recent) > self._RECENT_PAGE_WINDOW:
                        recent.pop(0)
        return self._base + line * _LINE + 8 * rng.randrange(8)

    def _stream_addr(self):
        """Unit-stride 8-byte walk: one new line every 8 accesses, which is
        what produces streaming MPKIs in the paper's ~30/kilo-instruction
        range (Section IX-B) rather than a miss per access."""
        addr = self._stream_base + (self._stream_pos * 8) % (_STREAM_LINES * _LINE)
        self._stream_pos += 1
        return addr

    def _shared_addr(self, rng):
        line = rng.randrange(self.profile.shared_lines)
        return _SHARED_BASE + line * _LINE + 8 * rng.randrange(8)

    def _memory_addr(self, rng, allow_shared=True):
        profile = self.profile
        if allow_shared and profile.shared_fraction and (
            rng.random() < profile.shared_fraction
        ):
            return self._shared_addr(rng), True
        if profile.stride_fraction and rng.random() < profile.stride_fraction:
            return self._stream_addr(), False
        return self._random_region_addr(rng), False

    # ------------------------------------------------------------ correct path

    def next_op(self):
        if self._forced:
            return self._forced.pop(0)
        profile = self.profile
        rng = self.rng
        self._emitted += 1

        if profile.sync_interval:
            self._sync_countdown -= 1
            if self._sync_countdown <= 0:
                self._sync_countdown = profile.sync_interval
                self._queue_critical_section(rng)
                return self._forced.pop(0)

        r = rng.random()
        if r < profile.load_frac:
            op = self._make_load(rng)
        elif r < profile.load_frac + profile.store_frac:
            op = self._make_store(rng)
        elif r < profile.load_frac + profile.store_frac + profile.branch_frac:
            op = self._make_branch(rng)
        else:
            op = self._make_alu(rng)
        return op

    def _make_load(self, rng):
        addr, _shared = self._memory_addr(rng)
        deps = ()
        if (
            self.profile.load_dep_fraction
            and self._ops_since_load < 8
            and rng.random() < self.profile.load_dep_fraction
        ):
            # Pointer chase: address generation waits for the last load.
            deps = (self._ops_since_load + 1,)
        self._ops_since_load = 0
        return MicroOp(
            OpKind.LOAD,
            pc=0x10_0000 + 4 * rng.randrange(4096),
            addr=addr,
            size=8,
            deps=deps,
        )

    def _make_store(self, rng):
        addr, _shared = self._memory_addr(rng)
        return MicroOp(
            OpKind.STORE,
            pc=0x20_0000 + 4 * rng.randrange(4096),
            addr=addr,
            size=8,
            store_value=rng.randrange(1 << 16),
        )

    def _make_branch(self, rng):
        profile = self.profile
        pc = 0x40_0000 + 4 * rng.randrange(profile.branch_pcs)
        taken = rng.random() < self._branch_bias[pc]
        deps = ()
        if (
            self._ops_since_load < 8
            and rng.random() < profile.branch_dep_fraction
        ):
            deps = (self._ops_since_load + 1,)
        self._ops_since_load += 1
        op = MicroOp(OpKind.BRANCH, pc=pc, taken=taken, deps=deps, latency=2)
        self._branch_salts[op.uid] = self._branches_emitted
        self._branches_emitted += 1
        return op

    def _make_alu(self, rng):
        profile = self.profile
        deps = ()
        if self._ops_since_load < 8 and rng.random() < profile.alu_dep_fraction:
            deps = (self._ops_since_load + 1,)
        self._ops_since_load += 1
        kind = OpKind.FP if rng.random() < profile.fp_fraction else OpKind.ALU
        latency = 3 if kind is OpKind.FP else 1
        return MicroOp(
            kind, pc=0x30_0000 + 4 * rng.randrange(4096), deps=deps, latency=latency
        )

    def _queue_critical_section(self, rng):
        """acquire; shared load; shared store; release."""
        addr = self._shared_addr(rng)
        line_addr = addr & ~(_LINE - 1)
        self._forced.extend(
            [
                MicroOp(OpKind.ACQUIRE, pc=0x50_0000),
                MicroOp(OpKind.LOAD, pc=0x50_0004, addr=line_addr, size=8),
                MicroOp(
                    OpKind.STORE,
                    pc=0x50_0008,
                    addr=line_addr,
                    size=8,
                    store_value=rng.randrange(1 << 16),
                ),
                MicroOp(OpKind.RELEASE, pc=0x50_000C),
            ]
        )

    # -------------------------------------------------------------- wrong path

    def wrong_path_op(self, branch_op, index):
        """Transient instructions past a mispredicted branch.

        Deterministic in (branch identity, index): re-encountering the same
        dynamic branch produces the same transient stream.
        """
        if index >= 48:
            return None  # deep enough for any realistic resolve window
        # Seed from the branch's emission index, not its global op uid:
        # transient streams must be identical regardless of how many other
        # traces were built in the process.
        salt = self._branch_salts.get(branch_op.uid, 0)
        rng = random.Random(self._wp_seed_base + salt * 1_000_003 + index)
        profile = self.profile
        r = rng.random()
        # Wrong paths are load-richer than average: the squashed side of a
        # branch typically touches data the correct path does not.
        if r < profile.load_frac + 0.10:
            # Random-region only, no state tracking: wrong-path generation
            # must not perturb the correct-path stream (streaming pointer,
            # recent pages), or the committed stream would differ across
            # schemes.
            addr = self._random_region_addr(rng, track_pages=False)
            return MicroOp(
                OpKind.LOAD,
                pc=0x60_0000 + 4 * rng.randrange(1024),
                addr=addr,
                size=8,
            )
        if r < profile.load_frac + 0.10 + profile.branch_frac:
            pc = 0x40_0000 + 4 * rng.randrange(profile.branch_pcs)
            return MicroOp(
                OpKind.BRANCH,
                pc=pc,
                taken=rng.random() < self._branch_bias[pc],
                latency=2,
            )
        return MicroOp(OpKind.ALU, pc=0x60_4000 + 4 * rng.randrange(1024))
