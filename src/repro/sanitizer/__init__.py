"""Runtime invariant sanitizer (see ``docs/SANITIZER.md``).

An opt-in monitor that hooks the sim kernel, the cache hierarchy, the
LSQ/ROB/SB structures and the memory image, and checks InvisiSpec's
correctness claims *while the machine runs* rather than only at quiesce:

* **visibility** — a USL leaves no footprint in visible cache, directory,
  replacement, MSHR, TLB or prefetcher state before its visibility point;
* **coherence** — SWMR, directory agreement and inclusion, re-checked on
  every state transition with in-flight-message awareness;
* **structural** — occupancy bounds and leak detection for the MSHRs,
  SB/LLC-SB, LQ/SQ/ROB and write buffers;
* **consistency** — committed load values replayed against a golden
  value-history model of memory.

Usage::

    from repro.sanitizer import Sanitizer
    system = System(..., sanitizer=Sanitizer("strict"))

or, end to end::

    python -m repro.experiments figure4 --quick --sanitize=strict
"""

from .golden import GoldenMemoryModel
from .monitor import SANITIZER_MODES, Sanitizer, make_sanitizer

__all__ = [
    "GoldenMemoryModel",
    "SANITIZER_MODES",
    "Sanitizer",
    "make_sanitizer",
]
