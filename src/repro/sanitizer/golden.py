"""Golden memory model for differential consistency checking.

The simulator's architectural memory is :class:`~repro.mem.memimage.
MemoryImage`: stores update it at the instant they perform.  This module
wraps the image's write paths to keep a bounded per-line *value history*
(every state the line has been in), and replays each committed load
against it:

* **thin-air check** — the bytes a load commits must have existed at its
  location at some point (initial value or after some recorded write).
  InvisiSpec's value-based validation means a USL may legitimately commit
  a *stale* value (and an ABA sequence passes validation, Section VI-E4),
  so any historical value is legal — but a value that never existed is a
  simulator bug.
* **per-location coherence (CoRR)** — two program-order loads of the same
  line by one core may not read values in an order no write history
  explains.  Because values can repeat (ABA), the check is conservative:
  a violation is reported only when *every* occurrence of the younger
  load's value precedes *every* possible position of the elder's
  (``max(younger ranks) < lower_bound(elder rank)``), which is sound
  under value-based validation and never false-positives on ABA.

When a line's history ring overflows (``history_limit`` writes), the line
is marked truncated and checks that would need the dropped prefix are
skipped rather than guessed.
"""

from __future__ import annotations


class GoldenMemoryModel:
    """Bounded value-history oracle over the architectural memory image."""

    def __init__(self, image, space, history_limit=128):
        self.image = image
        self.space = space
        self.history_limit = max(2, history_limit)
        self._hist = {}  # line -> [(absolute rank, full-line byte tuple)]
        self._next_rank = {}  # line -> next rank to assign
        self._truncated = set()  # lines whose oldest history was dropped
        self._last_rank = {}  # (core_id, line) -> lower bound of last read's rank
        self.stat_writes_recorded = 0
        self.stat_loads_checked = 0
        self.stat_checks_skipped = 0
        self._attached = False

    # ------------------------------------------------------------- recording

    def attach(self):
        """Shadow the image's write paths with recording wrappers."""
        if self._attached:
            return
        self._attached = True
        image = self.image
        orig_write = image.write
        orig_write_bytes = image.write_bytes

        def write(addr, size, value):
            lines = list(self.space.lines_touched(addr, max(size, 1)))
            self._pre_write(lines)
            orig_write(addr, size, value)
            self._post_write(lines)

        def write_bytes(addr, data):
            data = list(data)
            lines = list(self.space.lines_touched(addr, max(len(data), 1)))
            self._pre_write(lines)
            orig_write_bytes(addr, data)
            self._post_write(lines)

        image.write = write
        image.write_bytes = write_bytes

    def _line_bytes(self, line):
        return self.image.read_bytes(line, self.space.line_bytes)

    def _pre_write(self, lines):
        for line in lines:
            if line not in self._hist:
                # Lazily capture the pre-write state as rank 0, so loads of
                # the initial value (including stale USL reads) still match.
                self._hist[line] = [(0, self._line_bytes(line))]
                self._next_rank[line] = 1

    def _post_write(self, lines):
        for line in lines:
            hist = self._hist[line]
            rank = self._next_rank[line]
            self._next_rank[line] = rank + 1
            hist.append((rank, self._line_bytes(line)))
            self.stat_writes_recorded += 1
            if len(hist) > self.history_limit:
                hist.pop(0)
                self._truncated.add(line)

    # -------------------------------------------------------------- checking

    def check_load(self, core_id, addr, size, value):
        """Validate one committed load; returns an error string or None.

        ``value`` is the committed integer value (little-endian over
        ``size`` bytes).  The caller must not pass store-forwarded loads
        (their value may legally predate the store's perform) or loads
        crossing a line boundary.
        """
        if size <= 0:
            return None
        line = self.space.line_of(addr)
        offset = addr - line
        if offset + size > self.space.line_bytes:
            self.stat_checks_skipped += 1
            return None
        value_bytes = tuple((value >> (8 * i)) & 0xFF for i in range(size))

        hist = self._hist.get(line)
        if hist is None:
            # Never written since install: the live image is the only state.
            self.stat_loads_checked += 1
            if self.image.read_bytes(addr, size) != value_bytes:
                return (
                    f"committed value 0x{value:x} does not match memory at "
                    f"0x{addr:x} (line never written)"
                )
            return None

        self.stat_loads_checked += 1
        matches = [
            rank for rank, line_bytes in hist
            if line_bytes[offset:offset + size] == value_bytes
        ]
        if not matches:
            if line in self._truncated:
                self.stat_checks_skipped += 1
                return None  # the matching state may be in the dropped prefix
            return (
                f"committed value 0x{value:x} never existed at 0x{addr:x} "
                f"(out-of-thin-air; {len(hist)} states recorded)"
            )

        key = (core_id, line)
        lower_bound = self._last_rank.get(key, 0)
        if max(matches) < lower_bound:
            return (
                f"per-location coherence violated at 0x{addr:x}: committed "
                f"value 0x{value:x} only existed before the value an older "
                f"load of this line already observed "
                f"(ranks {matches} < lower bound {lower_bound})"
            )
        self._last_rank[key] = max(lower_bound, min(matches))
        return None
