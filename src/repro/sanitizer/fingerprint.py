"""Visible-state fingerprints for the visibility invariant.

A USL's Spec-GetS (Section VI-E1) must leave *no trace* in state another
observer could measure: L1/L2 tags and replacement metadata, directory
entries, MSHR allocations visible to other cores, the requesting core's
TLB recency/accessed/dirty bits, and the stride-prefetcher table.  The
sanitizer snapshots that state right before an invisible transaction is
processed and compares right after; any diff is a visibility violation.

The hierarchy fingerprint is *line-scoped* — it digests only the cache
sets the request's line maps to, plus global occupancy counts — so the
comparison is O(associativity), not O(cache size).  Deliberately excluded
(documented contention/bandwidth channels the paper accepts, not state):

* NoC/DRAM/bank/port queue state: a Spec-GetS consumes real bandwidth.
* The requester's own MSHR: a USL is allowed to allocate/merge there.
* The requester's SB and LLC-SB: filling them is the whole point.
* Statistics counters.
"""

from __future__ import annotations


def visible_fingerprint(hierarchy, line, requester):
    """Digest of the observer-visible hierarchy state around ``line``."""
    fp = {}
    for core_id, l1 in enumerate(hierarchy.l1s):
        fp[f"l1[{core_id}].set"] = l1.set_digest(line)
        fp[f"l1[{core_id}].lines"] = l1.occupancy
    bank = hierarchy.bank_of(line)
    fp[f"l2[{bank}].set"] = hierarchy.l2[bank].set_digest(line)
    for b, l2 in enumerate(hierarchy.l2):
        fp[f"l2[{b}].lines"] = l2.occupancy
    for b, directory in enumerate(hierarchy.dirs):
        fp[f"dir[{b}].entries"] = len(directory)
    dentry = hierarchy.dirs[bank].entry(line)
    fp["dir.line"] = (
        None
        if dentry is None
        else (dentry.owner, tuple(sorted(dentry.sharers)),
              dentry.wb_pending_until)
    )
    for core_id, mshr in enumerate(hierarchy.mshrs):
        if core_id == requester:
            continue
        fp[f"mshr[{core_id}]"] = (len(mshr), mshr.lookup(line) is not None)
    if hierarchy.llc_sbs is not None:
        for core_id, llc_sb in enumerate(hierarchy.llc_sbs):
            if core_id == requester:
                continue
            fp[f"llc_sb[{core_id}]"] = tuple(sorted(llc_sb.valid_lines()))
    fp["image.line_version"] = hierarchy.image.line_version(line)
    return fp


def diff_fingerprints(before, after):
    """Human-readable descriptions of every component that changed."""
    diffs = []
    for key, old in before.items():
        new = after.get(key)
        if new != old:
            diffs.append(f"{key}: {old!r} -> {new!r}")
    return diffs


def tlb_digest(tlb):
    """Observer-visible TLB state: contents, LRU order, accessed/dirty."""
    return tuple(
        (vpn, entry.accessed, entry.dirty)
        for vpn, entry in tlb._map.items()
    )


def prefetcher_digest(prefetcher):
    """Observer-visible stride-table state; ``None`` when no prefetcher."""
    if prefetcher is None:
        return None
    return tuple(
        (pc, entry.last_addr, entry.stride, entry.confidence)
        for pc, entry in prefetcher._table.items()
    )
