"""The runtime invariant monitor.

One :class:`Sanitizer` instance hooks a whole :class:`~repro.system.System`
(kernel, hierarchy, every core) and checks four invariant families while
the simulation runs — see the package docstring and ``docs/SANITIZER.md``.

Hook protocol
-------------

The instrumented components each hold a ``monitor`` attribute (``None``
when sanitizing is off) and call:

* kernel: ``on_cycle(cycle)`` after firing each cycle's events, and
  ``on_quiesce(cycle)`` right before a successful ``run()`` returns;
* hierarchy: ``invisible_enter/invisible_exit`` around the synchronous
  processing of a Spec-GetS, ``on_line_event`` after every visible
  coherence state transition, and ``on_inv_scheduled/on_inv_delivered``
  around in-flight invalidations (the skip-set that keeps legal transient
  windows from being reported);
* core: ``open_usl_window/close_usl_window`` around USL issue (TLB and
  prefetcher must stay untouched), ``on_prefetcher_train`` on every
  training call, and ``on_load_commit`` at load retirement (differential
  check against the golden memory model).

Modes: ``strict`` (alias ``fail_fast``) raises the violation as soon as a
check fails; ``record`` keeps running and collects every violation for the
reliability journal.  Either way ``self.violations`` holds the full list.
"""

from __future__ import annotations

from collections import Counter, deque

from ..coherence.checker import check_all, line_coherence_problems
from ..errors import (
    CoherenceViolation,
    ConfigError,
    ConsistencyViolation,
    ProtocolError,
    StructuralViolation,
    VisibilityViolation,
)
from .fingerprint import (
    diff_fingerprints,
    prefetcher_digest,
    tlb_digest,
    visible_fingerprint,
)
from .golden import GoldenMemoryModel

#: Mode names accepted on the CLI (``--sanitize[=MODE]``).
SANITIZER_MODES = ("strict", "record")


def make_sanitizer(value):
    """Coerce a CLI/config value into a :class:`Sanitizer` (or ``None``).

    Accepts ``None`` (off), an existing instance, ``True`` (strict), or a
    mode name from :data:`SANITIZER_MODES` (plus the ``fail_fast`` alias).
    """
    if value is None or isinstance(value, Sanitizer):
        return value
    if value is True:
        return Sanitizer("strict")
    if isinstance(value, str):
        mode = "strict" if value == "fail_fast" else value
        if mode not in SANITIZER_MODES:
            raise ConfigError(
                f"unknown sanitizer mode {value!r}; choose from "
                f"{SANITIZER_MODES} (or 'fail_fast')"
            )
        return Sanitizer(mode)
    raise ConfigError(f"cannot build a sanitizer from {value!r}")


class Sanitizer:
    """Continuous visibility / coherence / structural / consistency checks."""

    def __init__(
        self,
        mode="strict",
        trace_window=64,
        structural_period=2048,
        mshr_leak_cycles=200_000,
        golden_history=128,
    ):
        if mode == "fail_fast":
            mode = "strict"
        if mode not in SANITIZER_MODES:
            raise ConfigError(f"unknown sanitizer mode {mode!r}")
        self.mode = mode
        self.trace_window = trace_window
        self.structural_period = structural_period
        self.mshr_leak_cycles = mshr_leak_cycles
        self.golden_history = golden_history

        self.system = None
        self.kernel = None
        self.hierarchy = None
        self.cores = ()
        self.golden = None

        self.violations = []  # list of InvariantViolation.to_dict() records
        self.checks = Counter()  # check name -> times run
        self._events = deque(maxlen=trace_window)
        self._invisible_depth = 0
        self._invisible_ctx = None  # (req, line, before-fingerprint)
        self._pending_invs = Counter()  # (core_id, line) -> in-flight Invs
        self._usl_windows = {}  # (core_id, seq) -> (tlb digest, pf digest)
        self._last_sweep = 0

    # ---------------------------------------------------------------- wiring

    def install(self, system):
        """Attach to every component of a built (not yet run) system."""
        self.system = system
        self.kernel = system.kernel
        self.hierarchy = system.hierarchy
        self.cores = list(system.cores)
        self.kernel.monitor = self
        self.hierarchy.monitor = self
        for core in self.cores:
            core.monitor = self
        self.golden = GoldenMemoryModel(
            self.hierarchy.image,
            self.hierarchy.space,
            history_limit=self.golden_history,
        )
        self.golden.attach()
        self._last_sweep = self.kernel.cycle
        return self

    # ----------------------------------------------------------- violations

    def _now(self):
        return self.kernel.cycle if self.kernel is not None else None

    def _record_event(self, kind, line=None, core=None):
        self._events.append((self._now(), kind, line, core))

    def _trace(self):
        out = []
        for cycle, kind, line, core in self._events:
            parts = [f"@{cycle}", kind]
            if line is not None:
                parts.append(f"line=0x{line:x}")
            if core is not None:
                parts.append(f"core={core}")
            out.append(" ".join(parts))
        return tuple(out)

    def _report(self, violation):
        self.violations.append(violation.to_dict())
        if self.mode == "strict":
            raise violation

    # ------------------------------------------------- visibility (hierarchy)

    def invisible_enter(self, req, line):
        """A Spec-GetS is about to be processed synchronously."""
        self._invisible_depth += 1
        if self._invisible_depth > 1:
            return  # nested re-entry (submit -> _transaction): one snapshot
        self._record_event(f"spec[{req.kind.value}]", line=line, core=req.core_id)
        self._invisible_ctx = (
            req, line, visible_fingerprint(self.hierarchy, line, req.core_id)
        )

    def invisible_exit(self, req, line):
        self._invisible_depth -= 1
        if self._invisible_depth > 0 or self._invisible_ctx is None:
            return
        ctx_req, ctx_line, before = self._invisible_ctx
        self._invisible_ctx = None
        self.checks["visibility"] += 1
        after = visible_fingerprint(self.hierarchy, ctx_line, ctx_req.core_id)
        diffs = diff_fingerprints(before, after)
        if diffs:
            self._report(VisibilityViolation(
                f"{ctx_req.kind.value} mutated observer-visible state: "
                + "; ".join(diffs),
                cycle=self._now(),
                core_id=ctx_req.core_id,
                line_addr=ctx_line,
                event=f"spec[{ctx_req.kind.value}] seq={ctx_req.seq}",
                trace=self._trace(),
            ))

    # -------------------------------------------------- coherence (hierarchy)

    def on_inv_scheduled(self, core_id, line):
        self._pending_invs[(core_id, line)] += 1
        self._record_event("inv_scheduled", line=line, core=core_id)

    def on_inv_delivered(self, core_id, line):
        key = (core_id, line)
        if self._pending_invs.get(key, 0) > 0:
            self._pending_invs[key] -= 1
            if not self._pending_invs[key]:
                del self._pending_invs[key]

    def on_line_event(self, line, event, core_id=None):
        """A visible coherence transition touched ``line``: re-check it."""
        self._record_event(event, line=line, core=core_id)
        self.checks["coherence_line"] += 1
        skip = {
            core for (core, pending_line), count in self._pending_invs.items()
            if pending_line == line and count > 0
        }
        for _kind, message, core in line_coherence_problems(
            self.hierarchy, line, skip_cores=skip
        ):
            self._report(CoherenceViolation(
                message,
                cycle=self._now(),
                core_id=core,
                line_addr=line,
                event=event,
                trace=self._trace(),
            ))

    # ------------------------------------------------------ visibility (core)

    def open_usl_window(self, core, seq):
        """A USL is issuing: its TLB/prefetcher state must not change."""
        self._usl_windows[(core.core_id, seq)] = (
            tlb_digest(core.tlb), prefetcher_digest(core.prefetcher)
        )

    def close_usl_window(self, core, seq, event):
        snap = self._usl_windows.pop((core.core_id, seq), None)
        if snap is None:
            return
        self.checks["usl_window"] += 1
        tlb_now = tlb_digest(core.tlb)
        pf_now = prefetcher_digest(core.prefetcher)
        for name, before, after in (
            ("TLB", snap[0], tlb_now),
            ("prefetcher", snap[1], pf_now),
        ):
            if before != after:
                self._report(VisibilityViolation(
                    f"USL issue mutated {name} state before its visibility "
                    f"point ({before!r} -> {after!r})",
                    cycle=self._now(),
                    core_id=core.core_id,
                    event=f"{event} seq={seq}",
                    trace=self._trace(),
                ))

    def on_prefetcher_train(self, core, pc, addr, lq_entry):
        """Training is legal only for visible accesses (Section VI-B)."""
        self.checks["prefetcher_train"] += 1
        if lq_entry is None:
            return
        if (
            lq_entry.vstate in ("E", "V", "D")
            and not lq_entry.visibility_issued
        ):
            self._report(VisibilityViolation(
                f"prefetcher trained by a pre-visibility USL "
                f"(pc=0x{pc:x}, vstate={lq_entry.vstate})",
                cycle=self._now(),
                core_id=core.core_id,
                line_addr=lq_entry.line_addr,
                event=f"train seq={lq_entry.seq}",
                trace=self._trace(),
            ))

    # ----------------------------------------------------- consistency (core)

    def on_load_commit(self, core, lq_entry, value):
        """Differentially check a retiring load against the golden model.

        Store-forwarded loads are skipped (their value legally predates the
        store's perform).  The CoRR (same-location ordering) part only runs
        under TSO: the simulator's RC mode allows same-line load-load
        reordering that the conservative golden check would flag.
        """
        if self.golden is None or lq_entry.forwarded:
            return
        if lq_entry.addr is None or lq_entry.rob.is_wrong_path:
            return
        self.checks["consistency"] += 1
        core_key = (
            core.core_id
            if core.config.consistency == "tso"
            # A unique per-load key disables the cross-load CoRR comparison
            # while keeping the thin-air check.
            else (core.core_id, lq_entry.seq)
        )
        error = self.golden.check_load(
            core_key, lq_entry.addr, lq_entry.size, value
        )
        if error is not None:
            self._report(ConsistencyViolation(
                error,
                cycle=self._now(),
                core_id=core.core_id,
                line_addr=lq_entry.line_addr,
                event=f"commit seq={lq_entry.seq}",
                trace=self._trace(),
            ))

    # ------------------------------------------------------- kernel cadence

    def on_cycle(self, cycle):
        if cycle - self._last_sweep >= self.structural_period:
            self._last_sweep = cycle
            self._structural_sweep(cycle, final=False)

    def on_quiesce(self, cycle):
        """Everything drained: full-hierarchy and end-state checks."""
        self.checks["quiesce"] += 1
        leftovers = {
            key: count for key, count in self._pending_invs.items() if count
        }
        if leftovers:
            (core, line), count = next(iter(leftovers.items()))
            self._report(CoherenceViolation(
                f"{sum(leftovers.values())} invalidation(s) scheduled but "
                f"never delivered (first: {count} for core {core})",
                cycle=cycle,
                core_id=core,
                line_addr=line,
                event="quiesce",
                trace=self._trace(),
            ))
        try:
            check_all(self.hierarchy)
        except ProtocolError as exc:
            self._report(CoherenceViolation(
                str(exc), cycle=cycle, event="quiesce", trace=self._trace()
            ))
        self._structural_sweep(cycle, final=True)

    # ------------------------------------------------------------ structural

    def _structural_violation(self, message, core_id=None, line=None):
        self._report(StructuralViolation(
            message,
            cycle=self._now(),
            core_id=core_id,
            line_addr=line,
            trace=self._trace(),
        ))

    def _structural_sweep(self, now, final):
        self.checks["structural_sweep"] += 1
        hierarchy = self.hierarchy

        for core_id, mshr in enumerate(hierarchy.mshrs):
            if len(mshr) > mshr.num_entries:
                self._structural_violation(
                    f"MSHR file over capacity ({len(mshr)}/{mshr.num_entries})",
                    core_id=core_id,
                )
            for line in mshr.outstanding_lines():
                entry = mshr.lookup(line)
                if entry is None:
                    continue
                if final:
                    self._structural_violation(
                        "MSHR entry leaked past quiesce",
                        core_id=core_id, line=line,
                    )
                elif now - entry.issued_cycle > self.mshr_leak_cycles:
                    self._structural_violation(
                        f"MSHR entry outstanding for "
                        f"{now - entry.issued_cycle} cycles (leak?)",
                        core_id=core_id, line=line,
                    )
            if final and hierarchy._mshr_waiting[core_id]:
                self._structural_violation(
                    f"{len(hierarchy._mshr_waiting[core_id])} request(s) "
                    f"stranded in the MSHR wait queue at quiesce",
                    core_id=core_id,
                )

        for core in self.cores:
            cid = core.core_id
            if len(core.rob) > core.rob.capacity:
                self._structural_violation(
                    f"ROB over capacity ({len(core.rob)}/{core.rob.capacity})",
                    core_id=cid,
                )
            if len(core.lq) > core.lq.capacity:
                self._structural_violation(
                    f"LQ over capacity ({len(core.lq)}/{core.lq.capacity})",
                    core_id=cid,
                )
            if len(core.sq) > core.sq.capacity:
                self._structural_violation(
                    f"SQ over capacity ({len(core.sq)}/{core.sq.capacity})",
                    core_id=cid,
                )
            if core.sb is not None:
                for slot in core.sb.valid_entries():
                    lq_entry = core.lq.slot(slot.lq_index)
                    if (
                        lq_entry is None
                        or not lq_entry.valid
                        or lq_entry.index != slot.lq_index
                    ):
                        self._structural_violation(
                            f"SB slot holds data for a dead load "
                            f"(lq_index={slot.lq_index}): squashed-load "
                            f"cleanup failed",
                            core_id=cid, line=slot.line_addr,
                        )
                for lq_index, waiters in core._sb_waiters.items():
                    if not any(not w.squashed for w in waiters):
                        continue
                    src = core.lq.slot(lq_index)
                    if src is None or not src.valid:
                        self._structural_violation(
                            f"SB-merge waiters stranded on dead source load "
                            f"lq_index={lq_index}",
                            core_id=cid,
                        )
            if core.llc_sb is not None:
                for slot in core.llc_sb._slots:
                    if slot.valid and slot.epoch > core.epoch:
                        self._structural_violation(
                            f"LLC-SB entry from future epoch {slot.epoch} "
                            f"(core epoch {core.epoch})",
                            core_id=cid, line=slot.line_addr,
                        )
            budget_stop = (
                core.max_instructions is not None
                and core.retired_instructions >= core.max_instructions
            )
            if final and core.done and not budget_stop:
                # Only a trace-exhaustion finish guarantees drained
                # structures; an instruction-budget stop freezes the core
                # mid-flight with ROB/LQ/SB contents by design.
                if not core.rob.empty:
                    self._structural_violation(
                        "done core left entries in the ROB", core_id=cid
                    )
                if len(core.lq) or len(core.sq):
                    self._structural_violation(
                        "done core left entries in the LQ/SQ", core_id=cid
                    )
                if not core.write_buffer.empty:
                    self._structural_violation(
                        "done core left entries in the write buffer",
                        core_id=cid,
                    )
                if core.sb is not None and core.sb.valid_entries():
                    self._structural_violation(
                        "done core left valid SB entries", core_id=cid
                    )

    # -------------------------------------------------------------- reporting

    def report(self):
        out = {
            "mode": self.mode,
            "violations": list(self.violations),
            "violation_count": len(self.violations),
            "checks": dict(self.checks),
        }
        if self.golden is not None:
            out["golden"] = {
                "writes_recorded": self.golden.stat_writes_recorded,
                "loads_checked": self.golden.stat_loads_checked,
                "checks_skipped": self.golden.stat_checks_skipped,
            }
        return out

    def finalize(self, result):
        """Stamp the run result with this sanitizer's report."""
        result.sanitizer_report = self.report()
        return result
