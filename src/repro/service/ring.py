"""Consistent-hash ring for the replicated analysis cluster.

Placement must satisfy three properties, each pinned by a property test
(``tests/service/test_ring.py``):

* **balance** — with the default 64 virtual nodes per backend the
  busiest node's key share stays within 15% of the mean.  One point per
  vnode is too lumpy for that at small cluster sizes, so each vnode
  contributes **four** ring points carved from one SHA-256 digest (the
  libketama trick: one hash, four 64-bit words) — 256 points per node
  from 64 vnode indices;
* **minimal movement** — adding or removing a single node moves only
  the keys whose arc changed hands (≈ ``1/N`` of the keyspace); every
  other key keeps its owner, so a membership change never invalidates
  the surviving replicas;
* **determinism** — placement is a pure function of node ids and keys
  through :mod:`hashlib`; it is bit-identical across processes,
  machines, and ``PYTHONHASHSEED`` values, which is what lets a
  restarted router (or a second router) agree on every key's owners.

Keys are the result store's content addresses (normalized-payload
SHA-256 hex); they are re-hashed onto the ring rather than used raw so
arbitrary strings also place uniformly.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual nodes per backend (each contributes POINTS_PER_VNODE points).
DEFAULT_VNODES = 64

#: 64-bit words carved from each vnode digest (libketama-style).
POINTS_PER_VNODE = 4


def _key_point(key):
    """Ring coordinate of a cache key (uniform 64-bit, hash-seed free)."""
    return int.from_bytes(
        hashlib.sha256(key.encode()).digest()[:8], "big"
    )


def _node_points(node_id, vnodes):
    """All ring coordinates owned by ``node_id``."""
    points = []
    for index in range(vnodes):
        digest = hashlib.sha256(f"{node_id}#{index}".encode()).digest()
        for word in range(POINTS_PER_VNODE):
            points.append(
                int.from_bytes(digest[word * 8:(word + 1) * 8], "big")
            )
    return points


class HashRing:
    """Deterministic consistent-hash ring over logical node ids."""

    def __init__(self, nodes=(), vnodes=DEFAULT_VNODES):
        self.vnodes = max(1, int(vnodes))
        self._nodes = set()
        self._hashes = []  # sorted ring coordinates
        self._owners = []  # owner node id per coordinate
        for node in nodes:
            self.add(node)

    # ----------------------------------------------------------- membership

    def add(self, node_id):
        """Add a node (idempotent); O(ring) rebuild keeps lookups O(log)."""
        if node_id in self._nodes:
            return
        self._nodes.add(node_id)
        self._rebuild()

    def remove(self, node_id):
        """Remove a node (idempotent)."""
        if node_id not in self._nodes:
            return
        self._nodes.discard(node_id)
        self._rebuild()

    def _rebuild(self):
        points = sorted(
            (point, node)
            for node in sorted(self._nodes)
            for point in _node_points(node, self.vnodes)
        )
        self._hashes = [point for point, _ in points]
        self._owners = [node for _, node in points]

    @property
    def nodes(self):
        """Current membership, sorted (deterministic iteration order)."""
        return tuple(sorted(self._nodes))

    def __contains__(self, node_id):
        return node_id in self._nodes

    def __len__(self):
        return len(self._nodes)

    # -------------------------------------------------------------- lookups

    def nodes_for(self, key, count=1, exclude=()):
        """The first ``count`` distinct nodes clockwise from ``key``.

        Index 0 is the primary, the rest are the replica preference
        order.  ``exclude`` (an iterable of node ids) filters candidates
        — the router uses it to skip nodes it believes are down while
        preserving the ring's ordering for everyone else.
        """
        if not self._hashes:
            return []
        excluded = frozenset(exclude)
        start = bisect.bisect_right(self._hashes, _key_point(key))
        chosen = []
        seen = set()
        total = len(self._owners)
        for offset in range(total):
            owner = self._owners[(start + offset) % total]
            if owner in seen or owner in excluded:
                continue
            seen.add(owner)
            chosen.append(owner)
            if len(chosen) >= count:
                break
        return chosen

    def primary(self, key):
        """The key's first-preference owner (None on an empty ring)."""
        owners = self.nodes_for(key, count=1)
        return owners[0] if owners else None
