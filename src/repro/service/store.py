"""Sharded on-disk result store: content-addressed, checksum-verified.

One cache entry is one JSON file at ``<root>/<key[:2]>/<key>.json`` (256
shard directories keep any one directory small at millions of entries).
Writes go through the shared kill-9-hardened
:func:`~repro.reliability.atomic_io.atomic_write_json`, so a reader never
sees a torn entry.  Reads are paranoid anyway — bit rot, partial copies,
and hostile tampering all happen to long-lived caches:

* the entry must parse as JSON, carry the store version, and **name the
  key it claims to answer** (a mis-filed entry never leaks across keys);
* its payload must match the embedded SHA-256 checksum, recomputed over
  the canonical encoding on every read.

Any violation **quarantines** the shard — the file is moved (atomic
rename) into ``<root>/quarantine/`` for forensics and the read reports a
miss, so the service recomputes and rewrites a good entry.  A corrupt
shard is therefore never served, and never poisons the cache twice.

Cached-vs-fresh bit-identity holds by construction: entries store the
worker's metrics dict in canonical form, and both the checksum and the
response path read exactly that dict back.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..reliability.atomic_io import atomic_write_json
from .envelope import canonical_json

__all__ = ["ResultStore"]

STORE_VERSION = 1


def payload_checksum(key, metrics):
    """Checksum binding a metrics payload to its cache key."""
    body = canonical_json({"key": key, "metrics": metrics})
    return hashlib.sha256(body.encode()).hexdigest()


class ResultStore:
    """Content-addressed verdict cache with corrupt-shard quarantine."""

    def __init__(self, root):
        self.root = Path(root)
        self.quarantine_dir = self.root / "quarantine"
        self.stats = {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "corrupt_quarantined": 0,
        }

    def path_for(self, key):
        return self.root / key[:2] / f"{key}.json"

    # ----------------------------------------------------------------- reads

    def get(self, key):
        """The cached metrics for ``key``, or None on miss.

        Never returns data that fails verification: a corrupt or
        mis-keyed shard is quarantined and reported as a miss.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except OSError:
            self.stats["misses"] += 1
            self._quarantine(path, "unreadable")
            return None
        entry = None
        try:
            entry = json.loads(text)
        except ValueError:
            pass
        if not self._verify(key, entry):
            self.stats["misses"] += 1
            self._quarantine(path, "corrupt")
            return None
        self.stats["hits"] += 1
        return entry["metrics"]

    def _verify(self, key, entry):
        if not isinstance(entry, dict):
            return False
        if entry.get("version") != STORE_VERSION:
            return False
        if entry.get("key") != key:
            return False
        metrics = entry.get("metrics")
        if metrics is None:
            return False
        return entry.get("checksum") == payload_checksum(key, metrics)

    def _quarantine(self, path, reason):
        """Move a bad shard aside (atomic), never delete evidence."""
        self.stats["corrupt_quarantined"] += 1
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / f"{reason}-{path.name}")
        except OSError:
            # Quarantine is best-effort (read-only media, races); the
            # miss verdict already protects correctness.
            pass

    # ---------------------------------------------------------------- writes

    def put(self, key, kind, metrics):
        """Persist one computed result under its content address."""
        entry = {
            "version": STORE_VERSION,
            "key": key,
            "kind": kind,
            "metrics": metrics,
            "checksum": payload_checksum(key, metrics),
        }
        atomic_write_json(self.path_for(key), entry)
        self.stats["writes"] += 1

    # ----------------------------------------------------------------- admin

    def __contains__(self, key):
        return self.path_for(key).exists()

    def entry_count(self):
        """Number of shard files on disk (admin/status; walks the tree)."""
        if not self.root.exists():
            return 0
        return sum(
            1
            for shard in self.root.iterdir()
            if shard.is_dir() and shard.name != "quarantine"
            for entry in shard.iterdir()
            if entry.suffix == ".json"
        )

    def hit_rate(self):
        total = self.stats["hits"] + self.stats["misses"]
        return self.stats["hits"] / total if total else None
