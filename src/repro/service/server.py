"""The analysis service: asyncio front-end over the lease pool.

Request lifecycle (see ``docs/SERVICE.md`` for the failure-mode table)::

    submit -> cache hit?  ──────────────────────────────► respond (cached)
           -> in-flight dup? ─ await the running compute ► respond (coalesced)
           -> draining / queue full ────────────────────► respond (shed + retry_after)
           -> admitted: queued under (lane, client) fairness
              scheduler leases a pool worker when one frees up
                -> ok            ► store.put, respond, wake coalesced waiters
                -> worker crash  ► seed-bump retry with exponential backoff,
                                   crash cap -> explicit failure
                -> retryable sim error ► seed-bump retry (engine policy)
                -> deadline      ► explicit deadline failure (never a hang)

Every terminal path is explicit: a request ends in a correct response, a
journaled resumable entry (SIGTERM drain), or a shed with a retry hint —
the server never buffers unboundedly and never silently drops work.

Concurrency model: the asyncio loop owns all bookkeeping (single
threaded — no locks); simulation runs in pool worker *processes*, bridged
back with ``asyncio.wrap_future``, so one wedged request can never stall
the event loop or another client.
"""

from __future__ import annotations

import asyncio
import json
import time

from ..errors import ConfigError, ReproError, WorkerCrashError
from ..reliability.atomic_io import atomic_write_json
from ..reliability.engine import RetryPolicy
from ..reliability.pool import LeasePool
from .admission import AdmissionQueue
from .envelope import JobRequest
from .store import ResultStore

__all__ = ["AnalysisService", "ServiceJournal", "serve"]

#: Crashes of the *same request* after which it is failed outright
#: (mirrors the batch supervisor's cell quarantine).
CRASH_CAP = 2


class ServiceJournal:
    """Pending-request journal: what a drained server owes the future.

    One entry per accepted-but-incomplete request, keyed by cache key;
    removed on completion.  Written through the shared atomic pattern,
    so a SIGKILL mid-drain leaves either the old or the new complete
    journal.  ``serve --resume`` replays pending entries as batch-lane
    requests whose results land in the store — a returning client's
    retry then hits the cache.
    """

    VERSION = 1

    def __init__(self, path):
        self.path = path
        self._entries = {}
        self._load()

    def _load(self):
        try:
            with open(self.path) as handle:
                data = json.load(handle)
            self._entries = dict(data.get("pending", {}))
        except (OSError, ValueError):
            self._entries = {}

    def _save(self):
        atomic_write_json(
            self.path,
            {"version": self.VERSION, "pending": self._entries},
            backup=True,
        )

    def add(self, key, request):
        if key not in self._entries:
            self._entries[key] = request.to_journal()
            self._save()

    def remove(self, key):
        if self._entries.pop(key, None) is not None:
            self._save()

    def pending(self):
        return dict(self._entries)

    def __len__(self):
        return len(self._entries)


class _Job:
    """One admitted request moving through the scheduler."""

    __slots__ = (
        "request", "key", "future", "deadline", "enqueued_at", "journaled",
    )

    def __init__(self, request, future, deadline):
        self.request = request
        self.key = request.cache_key
        self.future = future  # asyncio.Future resolving to a response dict
        self.deadline = deadline  # absolute monotonic, or None
        self.enqueued_at = time.monotonic()
        self.journaled = False

    @property
    def lane(self):
        return self.request.lane

    @property
    def client_id(self):
        return self.request.client_id


class AnalysisService:
    """Cache + admission + retry policy around one :class:`LeasePool`."""

    def __init__(
        self,
        store,
        pool,
        max_depth=64,
        per_client_cap=None,
        lane_weights=None,
        policy=None,
        crash_cap=CRASH_CAP,
        backoff_base_s=0.05,
        backoff_cap_s=2.0,
        default_deadline_s=None,
        journal_path=None,
    ):
        self.store = store
        self.pool = pool
        self.policy = policy or RetryPolicy(max_attempts=3)
        self.queue = AdmissionQueue(
            max_depth=max_depth,
            lane_weights=lane_weights,
            per_client_cap=per_client_cap,
        )
        self.crash_cap = crash_cap
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.default_deadline_s = default_deadline_s
        self.journal = ServiceJournal(journal_path) if journal_path else None
        self.draining = False
        self.counters = {
            "requests": 0,
            "completed": 0,
            "failed": 0,
            "shed": 0,
            "coalesced": 0,
            "retries": 0,
            "crashes": 0,
            "deadline_failures": 0,
            "resumed": 0,
            "replicated_in": 0,
        }
        self._started_at = time.monotonic()
        self._inflight = {}  # key -> _Job (owning compute)
        self._active = 0  # computes currently holding a pool lease slot
        self._wakeup = asyncio.Event()
        self._scheduler = None
        self._stop_scheduler = False
        self._tasks = set()
        #: EMA of compute wall seconds, for retry_after estimates.
        self._avg_wall_s = 0.5

    # ------------------------------------------------------------- lifecycle

    async def start(self, resume=False):
        self.pool.start()
        self._stop_scheduler = False
        self._scheduler = asyncio.ensure_future(self._schedule_loop())
        if resume and self.journal is not None:
            for key, record in sorted(self.journal.pending().items()):
                try:
                    request = JobRequest.from_journal(record)
                except ReproError:
                    self.journal.remove(key)
                    continue
                self.counters["resumed"] += 1
                task = asyncio.ensure_future(self.submit(request))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        return self

    async def drain(self, timeout=30.0):
        """Graceful shutdown: journal what cannot finish, finish the rest.

        Queued jobs are journaled and answered with a shed (the journal
        entry is the promise); in-flight computes get ``timeout`` seconds
        to finish normally, then are journaled too and their workers die
        with the pool.
        """
        self.draining = True
        for job in self.queue.drain():
            self._journal_pending(job)
            self._resolve(
                job,
                self._response(
                    "shed", job.request, reason="draining",
                    retry_after_s=round(self._retry_after(), 3),
                    journaled=self.journal is not None,
                ),
            )
        deadline = time.monotonic() + timeout
        while self._inflight and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        for job in list(self._inflight.values()):
            self._journal_pending(job)
        if self._scheduler is not None:
            # Stop the scheduler cooperatively rather than by cancellation:
            # on Python <= 3.11, ``wait_for`` swallows a cancellation that
            # races with its inner future completing, and ``_compute`` sets
            # ``_wakeup`` on every completion -- draining right after a
            # request finishes would lose the cancel and hang forever.
            self._stop_scheduler = True
            self._wakeup.set()
            try:
                await asyncio.wait_for(self._scheduler, timeout=2.0)
            except asyncio.TimeoutError:
                self._scheduler.cancel()
                try:
                    await self._scheduler
                except asyncio.CancelledError:
                    pass
            except asyncio.CancelledError:
                pass
            self._scheduler = None
        await asyncio.get_event_loop().run_in_executor(
            None, lambda: self.pool.close(kill=True)
        )

    # --------------------------------------------------------------- serving

    async def submit(self, request):
        """Serve one request end to end; always returns a response dict."""
        self.counters["requests"] += 1
        key = request.cache_key
        if not request.nocache:
            metrics = self.store.get(key)
            if metrics is not None:
                return self._response(
                    "ok", request, metrics=metrics, cached=True
                )
            owner = self._inflight.get(key)
            if owner is not None:
                # Identical computation already running: coalesce instead
                # of occupying a second worker.
                self.counters["coalesced"] += 1
                response = await asyncio.shield(owner.future)
                return dict(response, coalesced=True)
        if self.draining:
            self.counters["shed"] += 1
            return self._response("shed", request, reason="draining")
        deadline = None
        deadline_s = request.deadline_s or self.default_deadline_s
        if deadline_s is not None:
            deadline = time.monotonic() + deadline_s
        job = _Job(request, asyncio.get_event_loop().create_future(), deadline)
        if not self.queue.offer(job):
            self.counters["shed"] += 1
            return self._response(
                "shed", request, reason="queue-full",
                retry_after_s=round(self._retry_after(), 3),
            )
        if not request.nocache:
            self._inflight[key] = job
        self._journal_pending(job)
        self._wakeup.set()
        return await asyncio.shield(job.future)

    def put_result(self, kind, payload, metrics):
        """Accept one replicated result from a cluster peer (``put`` op).

        The key is **re-derived** from the normalized payload, never
        trusted from the wire, so a confused router cannot file metrics
        under the wrong content address; the store's checksum then binds
        them at rest.  Overwrites are idempotent (same key, same canonical
        metrics for a deterministic computation).
        """
        if not isinstance(metrics, dict) or not metrics:
            raise ConfigError("put needs a non-empty 'metrics' object")
        request = JobRequest(kind, payload)
        self.store.put(request.cache_key, request.kind, metrics)
        self.counters["replicated_in"] += 1
        return {
            "status": "ok",
            "stored": True,
            "key": request.cache_key,
            "kind": request.kind,
        }

    def healthz(self):
        """Status snapshot: queue depths, cache, pool, shed counts."""
        return {
            "draining": self.draining,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "queue": self.queue.depths(),
            "inflight": len(self._inflight),
            "active_computes": self._active,
            "counters": dict(self.counters),
            "cache": dict(
                self.store.stats,
                hit_rate=self.store.hit_rate(),
                entries=self.store.entry_count(),
            ),
            "pool": self.pool.snapshot(),
            "journal_pending": (
                len(self.journal) if self.journal is not None else None
            ),
        }

    # ------------------------------------------------------------- scheduler

    async def _schedule_loop(self):
        while not self._stop_scheduler:
            while (
                not self.draining
                and len(self.queue)
                and self._active < self.pool.workers
            ):
                job = self.queue.take()
                if job is None:
                    break
                self._active += 1
                task = asyncio.ensure_future(self._compute(job))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
            self._wakeup.clear()
            try:
                await asyncio.wait_for(self._wakeup.wait(), timeout=0.05)
            except asyncio.TimeoutError:
                pass

    async def _compute(self, job):
        started = time.monotonic()
        try:
            response = await self._execute(job)
        except ReproError as error:
            response = self._response(
                "failed", job.request,
                error_class=type(error).__name__, error_message=str(error),
            )
        finally:
            self._active -= 1
            self._wakeup.set()
        wall = time.monotonic() - started
        self._avg_wall_s = 0.8 * self._avg_wall_s + 0.2 * wall
        self._resolve(job, response)

    async def _execute(self, job):
        request = job.request
        spec, schedule = request.build_spec()
        crashes = 0
        attempt = 0
        last = ("unknown", "no attempt ran")
        while attempt < self.policy.max_attempts:
            if job.deadline is not None:
                remaining = job.deadline - time.monotonic()
                if remaining <= 0:
                    return self._deadline_failure(request, "before dispatch")
            seed = self.policy.seed_for(request.base_seed, attempt)
            lease = self.pool.submit(
                spec,
                seed=seed,
                max_cycles=self.policy.budget_for(request.max_cycles, attempt),
                deadline=job.deadline,
                attempt_index=attempt,
                schedule=schedule,
            )
            try:
                result = await asyncio.wrap_future(lease)
            except WorkerCrashError as error:
                self.counters["crashes"] += 1
                crashes += 1
                last = (type(error).__name__, str(error))
                if error.kind == "deadline":
                    self.counters["deadline_failures"] += 1
                    return self._deadline_failure(request, str(error))
                if crashes >= self.crash_cap:
                    return self._response(
                        "failed", request,
                        error_class="WorkerCrashError",
                        error_message=(
                            f"request quarantined after {crashes} worker "
                            f"crashes; last: {error}"
                        ),
                        attempts=attempt + 1,
                    )
                attempt += 1
                self.counters["retries"] += 1
                await asyncio.sleep(self._backoff(attempt))
                continue
            if result.status == "ok":
                violations = (
                    result.sanitizer_report["violations"]
                    if result.sanitizer_report
                    else ()
                )
                if violations:
                    first = violations[0]
                    return self._response(
                        "failed", request,
                        error_class=first.get(
                            "error_class", "InvariantViolation"
                        ),
                        error_message=(
                            f"{len(violations)} invariant violation(s); "
                            f"first: {first.get('message', '')}"
                        ),
                        attempts=attempt + 1,
                    )
                if not request.nocache:
                    self.store.put(job.key, request.kind, result.metrics)
                return self._response(
                    "ok", request, metrics=result.metrics,
                    cached=False, attempts=attempt + 1,
                )
            last = (result.error_class, result.error_message)
            retryable = result.error is not None and self.policy.is_retryable(
                result.error
            )
            if retryable and attempt + 1 < self.policy.max_attempts:
                attempt += 1
                self.counters["retries"] += 1
                await asyncio.sleep(self._backoff(attempt))
                continue
            break
        return self._response(
            "failed", request,
            error_class=last[0], error_message=last[1],
            attempts=attempt + 1,
        )

    # --------------------------------------------------------------- helpers

    def _backoff(self, attempt):
        return min(self.backoff_cap_s, self.backoff_base_s * 2 ** (attempt - 1))

    def _retry_after(self):
        waiting = len(self.queue) + self._active
        return max(
            0.05, waiting * self._avg_wall_s / max(1, self.pool.workers)
        )

    def _deadline_failure(self, request, detail):
        return self._response(
            "failed", request,
            error_class="DeadlineExceeded",
            error_message=f"request deadline exhausted ({detail})",
        )

    def _response(self, status, request, **fields):
        response = {
            "status": status,
            "kind": request.kind,
            "key": request.cache_key,
        }
        if status == "ok":
            response.setdefault("cached", False)
        if status == "failed":
            self.counters["failed"] += 1
        elif status == "ok":
            self.counters["completed"] += 1
        response.update(fields)
        return response

    def _journal_pending(self, job):
        if self.journal is not None and not job.journaled:
            job.journaled = True
            self.journal.add(job.key, job.request)

    def _resolve(self, job, response):
        if self.journal is not None and job.journaled:
            # Shed-at-drain keeps its journal entry (the resume promise);
            # everything that produced a real answer is settled.
            if response["status"] != "shed":
                self.journal.remove(job.key)
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        if not job.future.done():
            job.future.set_result(response)


# ------------------------------------------------------------------ protocol


async def _handle_connection(service, reader, writer):
    """Line-JSON protocol: one request object in, one response line out.

    Messages: ``{"op": "submit", "id": ..., "kind": ..., "payload": ...,
    "client": ..., "lane": ..., "deadline_s": ..., "nocache": ...}``,
    ``{"op": "status"}``, ``{"op": "drain"}``, ``{"op": "ping"}``.
    Each line is served by its own task so a long compute never blocks
    the next line on the same connection.
    """
    write_lock = asyncio.Lock()
    tasks = set()

    async def reply(message_id, body):
        body = dict(body)
        if message_id is not None:
            body["id"] = message_id
        data = (json.dumps(body, sort_keys=True) + "\n").encode()
        async with write_lock:
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    async def dispatch(message):
        message_id = message.get("id")
        op = message.get("op", "submit")
        try:
            if op == "ping":
                await reply(message_id, {"status": "ok", "pong": True})
            elif op == "status":
                await reply(
                    message_id, {"status": "ok", "healthz": service.healthz()}
                )
            elif op == "drain":
                await reply(message_id, {"status": "ok", "draining": True})
                raise _DrainRequested()
            elif op == "submit":
                request = JobRequest.from_wire(message)
                await reply(message_id, await service.submit(request))
            elif op == "put":
                await reply(
                    message_id,
                    service.put_result(
                        message.get("kind"),
                        message.get("payload") or {},
                        message.get("metrics"),
                    ),
                )
            else:
                await reply(
                    message_id,
                    {"status": "error", "error_message": f"unknown op {op!r}"},
                )
        except _DrainRequested:
            raise
        except ReproError as error:
            await reply(
                message_id,
                {
                    "status": "error",
                    "error_class": type(error).__name__,
                    "error_message": str(error),
                },
            )

    drain_requested = False
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                message = json.loads(line)
            except ValueError:
                await reply(None, {
                    "status": "error", "error_message": "malformed JSON line",
                })
                continue
            if not isinstance(message, dict):
                await reply(None, {
                    "status": "error", "error_message": "expected an object",
                })
                continue
            if message.get("op") == "drain":
                drain_requested = True
                await reply(message.get("id"), {
                    "status": "ok", "draining": True,
                })
                break
            task = asyncio.ensure_future(dispatch(message))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        try:
            writer.close()
        except OSError:
            pass
    if drain_requested:
        raise _DrainRequested()


class _DrainRequested(Exception):
    """Control-flow marker: a client asked the server to drain."""


async def serve(
    service,
    host="127.0.0.1",
    port=0,
    ready_callback=None,
    resume=False,
    drain_timeout=30.0,
):
    """Run the TCP front-end until SIGTERM/SIGINT, then drain gracefully.

    ``ready_callback(host, port)`` fires once the socket is listening —
    the CLI uses it to print/persist the bound address (``port=0`` picks
    a free port).  Returns after the drain completes; the caller owns
    process exit.
    """
    await service.start(resume=resume)
    stop = asyncio.get_event_loop().create_future()

    def request_stop(origin):
        if not stop.done():
            stop.set_result(origin)

    async def handler(reader, writer):
        try:
            await _handle_connection(service, reader, writer)
        except _DrainRequested:
            request_stop("drain-op")

    server = await asyncio.start_server(handler, host=host, port=port)
    bound = server.sockets[0].getsockname()
    if ready_callback is not None:
        ready_callback(bound[0], bound[1])

    import signal as _signal

    loop = asyncio.get_event_loop()
    registered = []
    for sig in (_signal.SIGTERM, _signal.SIGINT):
        try:
            loop.add_signal_handler(sig, request_stop, sig.name)
            registered.append(sig)
        except (NotImplementedError, ValueError):
            pass
    try:
        origin = await stop
    finally:
        for sig in registered:
            loop.remove_signal_handler(sig)
        server.close()
        await server.wait_closed()
        await service.drain(timeout=drain_timeout)
    return origin


def build_service(
    store_dir,
    workers=2,
    max_depth=64,
    per_client_cap=None,
    max_rss=None,
    heartbeat_timeout=60.0,
    default_deadline_s=None,
    journal_path=None,
    max_attempts=3,
):
    """Convenience constructor wiring store + pool + service together."""
    return AnalysisService(
        store=ResultStore(store_dir),
        pool=LeasePool(
            workers=workers,
            max_rss=max_rss,
            heartbeat_timeout=heartbeat_timeout,
        ),
        max_depth=max_depth,
        per_client_cap=per_client_cap,
        default_deadline_s=default_deadline_s,
        journal_path=journal_path,
        policy=RetryPolicy(max_attempts=max_attempts),
    )
