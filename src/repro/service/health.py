"""Per-backend failure detection for the cluster router.

Three cooperating detectors, all wall-clock-injectable for tests:

* :class:`CircuitBreaker` — classic closed/open/half-open.  Consecutive
  request failures trip it open; after a cooldown it admits a bounded
  probe budget (half-open) and one success closes it, one failure
  re-opens it.  An open breaker makes failover *fast*: the router skips
  the node instead of burning a timeout per request.
* :class:`LatencyTracker` — EMA plus a sliding-window p95 of observed
  call latencies.  The p95 is the hedged-read trigger delay (adaptive:
  a node that slows down widens its own hedge window), and the EMA is
  the passive slow-node signal surfaced in ``status``.
* :class:`BackendHealth` — active-probe liveness: ``down_after``
  consecutive failed pings mark the node down (triggering
  re-replication of its keys), any successful ping marks it back up.

Pings bypass the breaker's admission gate but feed its outcome
counters, so an idle cluster still re-closes breakers for recovered
nodes without waiting for client traffic.
"""

from __future__ import annotations

import time

__all__ = ["BackendHealth", "CircuitBreaker", "LatencyTracker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Closed/open/half-open breaker with a bounded half-open probe budget."""

    def __init__(
        self,
        failure_threshold=3,
        cooldown_s=2.0,
        probe_budget=1,
        clock=time.monotonic,
    ):
        self.failure_threshold = max(1, int(failure_threshold))
        self.cooldown_s = float(cooldown_s)
        self.probe_budget = max(1, int(probe_budget))
        self._clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self._opened_at = None
        self._probes_left = 0
        self.stats = {"opens": 0, "closes": 0, "probes": 0, "rejections": 0}

    def allow(self):
        """May a request be sent now?  (Half-open consumes probe budget.)"""
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self.cooldown_s:
                self.state = HALF_OPEN
                self._probes_left = self.probe_budget
            else:
                self.stats["rejections"] += 1
                return False
        if self.state == HALF_OPEN:
            if self._probes_left <= 0:
                self.stats["rejections"] += 1
                return False
            self._probes_left -= 1
            self.stats["probes"] += 1
        return True

    def record_success(self):
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self.state = CLOSED
            self.stats["closes"] += 1

    def record_failure(self):
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self):
        self.state = OPEN
        self._opened_at = self._clock()
        self._probes_left = 0
        self.stats["opens"] += 1

    def snapshot(self):
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            **self.stats,
        }


class LatencyTracker:
    """EMA + sliding-window p95 of call latencies (seconds)."""

    def __init__(self, window=128, default_s=0.05, alpha=0.2):
        self.window = max(4, int(window))
        self.default_s = float(default_s)
        self.alpha = float(alpha)
        self._samples = []
        self._cursor = 0
        self.ema_s = None

    def record(self, seconds):
        seconds = float(seconds)
        if len(self._samples) < self.window:
            self._samples.append(seconds)
        else:
            self._samples[self._cursor] = seconds
            self._cursor = (self._cursor + 1) % self.window
        self.ema_s = (
            seconds
            if self.ema_s is None
            else (1 - self.alpha) * self.ema_s + self.alpha * seconds
        )

    def p95(self):
        """95th percentile of the window (``default_s`` until warmed up)."""
        if not self._samples:
            return self.default_s
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(0.95 * len(ordered)))
        return ordered[index]

    def snapshot(self):
        return {
            "ema_ms": round(1000 * self.ema_s, 3) if self.ema_s else None,
            "p95_ms": round(1000 * self.p95(), 3),
            "samples": len(self._samples),
        }


class BackendHealth:
    """One backend's liveness, breaker, and latency rolled together."""

    def __init__(
        self,
        node_id,
        breaker=None,
        latency=None,
        down_after=3,
        clock=time.monotonic,
    ):
        self.node_id = node_id
        self.breaker = breaker or CircuitBreaker(clock=clock)
        self.latency = latency or LatencyTracker()
        self.down_after = max(1, int(down_after))
        self._clock = clock
        self.up = True
        self.ping_failures = 0
        self.last_ping_ok_at = None
        self.transitions = {"down": 0, "up": 0}

    def record_ping(self, ok):
        """Fold one active-probe result in; returns "down"/"up"/None
        when this ping *transitions* the node's liveness."""
        if ok:
            self.ping_failures = 0
            self.last_ping_ok_at = self._clock()
            self.breaker.record_success()
            if not self.up:
                self.up = True
                self.transitions["up"] += 1
                return "up"
            return None
        self.ping_failures += 1
        self.breaker.record_failure()
        if self.up and self.ping_failures >= self.down_after:
            self.up = False
            self.transitions["down"] += 1
            return "down"
        return None

    def record_call(self, ok, seconds=None):
        """Fold one request outcome in (passive detection path)."""
        if seconds is not None:
            self.latency.record(seconds)
        if ok:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()

    def snapshot(self):
        return {
            "node": self.node_id,
            "up": self.up,
            "ping_failures": self.ping_failures,
            "transitions": dict(self.transitions),
            "breaker": self.breaker.snapshot(),
            "latency": self.latency.snapshot(),
        }
