"""Client for the analysis service's line-JSON TCP protocol.

:class:`ServiceClient` is the async API (one connection, pipelined
request ids); :func:`request_sync` / :func:`status_sync` are one-shot
synchronous helpers for scripts and the CLI.

Transport failures are **typed, never raw**: a refused connection, a
half-closed socket that EOFs mid-response, a truncated or garbage
response line — all surface as
:class:`~repro.errors.ServiceProtocolError` (pickle-safe, marked
transient).  Because every service request is idempotent under its
content-addressed cache key, the sync helpers retry a transport failure
once on a fresh connection by default, and retry explicit sheds with
**decorrelated-jitter** backoff that honors the server's
``retry_after_s`` hint (never sooner than the server asked, never in
lockstep with other clients).
"""

from __future__ import annotations

import asyncio
import json
import random
import time

from ..errors import ServiceProtocolError

__all__ = [
    "ServiceClient",
    "ServiceProtocolError",
    "ServiceUnavailable",
    "decorrelated_jitter",
    "request_sync",
    "status_sync",
]


class ServiceUnavailable(ServiceProtocolError):
    """The server closed the connection before answering."""


class ServiceClient:
    """Async client: pipelines requests over one connection by id."""

    def __init__(self, host="127.0.0.1", port=0):
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None
        self._next_id = 0
        self._pending = {}  # id -> Future
        self._reader_task = None
        self._transport_error = None

    async def __aenter__(self):
        await self.connect()
        return self

    async def __aexit__(self, *exc_info):
        await self.close()

    async def connect(self):
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except (ConnectionError, OSError) as error:
            raise ServiceProtocolError(
                f"connect failed: {error}", host=self.host, port=self.port
            ) from error
        self._transport_error = None
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def close(self):
        if self._writer is not None:
            try:
                self._writer.close()
            except OSError:
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        self._fail_pending()

    def _fail_pending(self):
        error = self._transport_error or ServiceUnavailable(
            "connection closed mid-request", host=self.host, port=self.port
        )
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()

    async def _read_loop(self):
        """Demultiplex response lines to their waiting futures.

        Every abnormal end — EOF with requests outstanding, a line cut
        mid-write by a half-closed socket, a line that is not JSON —
        fails the pending futures with a typed ServiceProtocolError
        instead of hanging them or leaking a JSONDecodeError.
        """
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break  # clean EOF; outstanding futures fail as unavailable
                if not line.endswith(b"\n"):
                    # readline() only returns a newline-less chunk at EOF:
                    # the peer died mid-write (SIGKILL, half-close).
                    self._transport_error = ServiceProtocolError(
                        "response line truncated by half-closed socket",
                        host=self.host, port=self.port,
                    )
                    break
                try:
                    message = json.loads(line)
                except ValueError as error:
                    self._transport_error = ServiceProtocolError(
                        f"malformed response line: {error}",
                        host=self.host, port=self.port,
                    )
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ConnectionError, OSError) as error:
            self._transport_error = ServiceProtocolError(
                f"read failed: {error}", host=self.host, port=self.port
            )
        finally:
            self._fail_pending()

    async def call(self, body):
        """Send one op object, await its matched response object."""
        if self._writer is None:
            raise ServiceProtocolError(
                "not connected", host=self.host, port=self.port
            )
        self._next_id += 1
        message_id = self._next_id
        body = dict(body, id=message_id)
        future = asyncio.get_event_loop().create_future()
        self._pending[message_id] = future
        try:
            self._writer.write((json.dumps(body) + "\n").encode())
            await self._writer.drain()
        except (ConnectionError, OSError) as error:
            self._pending.pop(message_id, None)
            raise ServiceProtocolError(
                f"write failed: {error}", host=self.host, port=self.port
            ) from error
        return await future

    # Backwards-compatible alias (pre-cluster name).
    _call = call

    async def submit(
        self,
        kind,
        payload,
        client="anon",
        lane="interactive",
        deadline_s=None,
        nocache=False,
    ):
        """Submit one analysis request; returns the response dict."""
        return await self.call(
            {
                "op": "submit",
                "kind": kind,
                "payload": payload,
                "client": client,
                "lane": lane,
                "deadline_s": deadline_s,
                "nocache": nocache,
            }
        )

    async def status(self):
        return await self.call({"op": "status"})

    async def ping(self):
        return await self.call({"op": "ping"})

    async def drain(self):
        """Ask the server to drain and shut down."""
        return await self.call({"op": "drain"})


def decorrelated_jitter(rng, base_s, cap_s, previous_s):
    """Next backoff sleep: AWS-style decorrelated jitter.

    Each interval is drawn from ``[base, 3 * previous]`` (capped), so
    retries decorrelate across clients instead of thundering back in
    lockstep, while still growing roughly exponentially under sustained
    pressure.
    """
    return min(cap_s, rng.uniform(base_s, max(base_s, 3.0 * previous_s)))


def _run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


def request_sync(
    host,
    port,
    kind,
    payload,
    retries=0,
    transport_retries=1,
    retry_base_s=0.05,
    retry_cap_s=5.0,
    jitter_seed=None,
    sleep=time.sleep,
    **options,
):
    """One-shot synchronous submit with typed-failure retry.

    * a :class:`ServiceProtocolError` (connection refused, EOF
      mid-response) is retried ``transport_retries`` times on a fresh
      connection — safe because submits are idempotent;
    * an explicit shed is retried up to ``retries`` times, sleeping at
      least the server's ``retry_after_s`` hint plus decorrelated
      jitter each attempt;
    * the jitter RNG is seeded (``jitter_seed`` or a stable per-target
      default) so tests and replayed scripts are deterministic.
    """
    seed = (
        jitter_seed
        if jitter_seed is not None
        else f"{host}:{port}:{kind}"
    )
    rng = random.Random(seed)
    previous_s = retry_base_s
    transport_left = max(0, int(transport_retries))
    shed_left = max(0, int(retries))

    async def go():
        async with ServiceClient(host, port) as client:
            return await client.submit(kind, payload, **options)

    while True:
        try:
            response = _run(go())
        except ServiceProtocolError:
            if transport_left <= 0:
                raise
            transport_left -= 1
            previous_s = decorrelated_jitter(
                rng, retry_base_s, retry_cap_s, previous_s
            )
            sleep(previous_s)
            continue
        if response.get("status") == "shed" and shed_left > 0:
            shed_left -= 1
            previous_s = decorrelated_jitter(
                rng, retry_base_s, retry_cap_s, previous_s
            )
            hint = response.get("retry_after_s") or 0.0
            sleep(max(float(hint), previous_s))
            continue
        return response


def status_sync(host, port):
    """One-shot synchronous status query."""

    async def go():
        async with ServiceClient(host, port) as client:
            return await client.status()

    return _run(go())
