"""Client for the analysis service's line-JSON TCP protocol.

:class:`ServiceClient` is the async API (one connection, pipelined
request ids); :func:`request_sync` / :func:`status_sync` are one-shot
synchronous helpers for scripts and the CLI.
"""

from __future__ import annotations

import asyncio
import json

from ..errors import ReproError

__all__ = ["ServiceClient", "ServiceUnavailable", "request_sync", "status_sync"]


class ServiceUnavailable(ReproError):
    """The server closed the connection before answering."""


class ServiceClient:
    """Async client: pipelines requests over one connection by id."""

    def __init__(self, host="127.0.0.1", port=0):
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None
        self._next_id = 0
        self._pending = {}  # id -> Future
        self._reader_task = None

    async def __aenter__(self):
        await self.connect()
        return self

    async def __aexit__(self, *exc_info):
        await self.close()

    async def connect(self):
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.ensure_future(self._read_loop())

    async def close(self):
        if self._writer is not None:
            try:
                self._writer.close()
            except OSError:
                pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        self._fail_pending()

    def _fail_pending(self):
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    ServiceUnavailable("connection closed mid-request")
                )
        self._pending.clear()

    async def _read_loop(self):
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                except ValueError:
                    continue
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        finally:
            self._fail_pending()

    async def _call(self, body):
        self._next_id += 1
        message_id = self._next_id
        body = dict(body, id=message_id)
        future = asyncio.get_event_loop().create_future()
        self._pending[message_id] = future
        self._writer.write((json.dumps(body) + "\n").encode())
        await self._writer.drain()
        return await future

    async def submit(
        self,
        kind,
        payload,
        client="anon",
        lane="interactive",
        deadline_s=None,
        nocache=False,
    ):
        """Submit one analysis request; returns the response dict."""
        return await self._call(
            {
                "op": "submit",
                "kind": kind,
                "payload": payload,
                "client": client,
                "lane": lane,
                "deadline_s": deadline_s,
                "nocache": nocache,
            }
        )

    async def status(self):
        return await self._call({"op": "status"})

    async def ping(self):
        return await self._call({"op": "ping"})

    async def drain(self):
        """Ask the server to drain and shut down."""
        return await self._call({"op": "drain"})


def _run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


def request_sync(host, port, kind, payload, **options):
    """One-shot synchronous submit (opens and closes a connection)."""

    async def go():
        async with ServiceClient(host, port) as client:
            return await client.submit(kind, payload, **options)

    return _run(go())


def status_sync(host, port):
    """One-shot synchronous status query."""

    async def go():
        async with ServiceClient(host, port) as client:
            return await client.status()

    return _run(go())
