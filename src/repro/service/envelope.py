"""Request/response envelopes and content-addressed cache keys.

A service request is pure data: a *kind* (``sim`` / ``specflow`` /
``fuzz``) plus a kind-specific payload.  :meth:`JobRequest.normalize`
canonicalizes the payload — defaults applied, fields whitelisted, order
fixed — so two requests that mean the same computation always produce
the same **cache key**: the SHA-256 of the canonical JSON of
``{schema, kind, payload}``.  The key therefore changes whenever any
input that could change the answer changes (program content, config,
scheme, attack model, seed, fault schedule) and whenever
:data:`CACHE_SCHEMA_VERSION` is bumped — the invalidation lever for
semantic changes to the simulator or analyzers themselves (see
``docs/SERVICE.md`` for the rules).

``build_spec`` lowers a request onto the reliability layer: every kind
becomes a pickle-safe cell spec honoring the supervisor/pool contract
(``.cell_id`` + ``.run(seed, max_cycles, watchdog, faults,
heartbeat=None)``), so one worker pool serves all three workloads.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..configs import ConsistencyModel, Scheme
from ..errors import ConfigError, WorkloadError
from ..reliability.faults import FaultSchedule
from ..reliability.worker import CellSpec

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "JobRequest",
    "SpecflowCellSpec",
    "SpecflowResult",
    "cache_key",
    "canonical_json",
]

#: Bump whenever the *meaning* of a cached result changes: simulator
#: timing model, analyzer semantics, metrics schema.  Old shards become
#: unreachable (different keys) rather than silently stale.
CACHE_SCHEMA_VERSION = 1

KINDS = ("sim", "specflow", "fuzz")
LANES = ("interactive", "batch")

_SCHEMES = {scheme.value: scheme for scheme in Scheme}
_CONSISTENCY = {model.value: model for model in ConsistencyModel}

#: Accepted spellings -> canonical enum value.  Normalizing here keeps
#: the cache key identical across "IS-Sp" / "is_spectre" / "IS_SPECTRE".
_SCHEME_ALIASES = {}
for _scheme in Scheme:
    _SCHEME_ALIASES[_scheme.value.lower()] = _scheme.value
    _SCHEME_ALIASES[_scheme.name.lower()] = _scheme.value
_CONSISTENCY_ALIASES = {}
for _model in ConsistencyModel:
    _CONSISTENCY_ALIASES[_model.value.lower()] = _model.value
    _CONSISTENCY_ALIASES[_model.name.lower()] = _model.value


def canonical_json(payload):
    """Minimal stable encoding: the content that gets addressed."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(kind, payload):
    """Content address of one normalized request."""
    body = canonical_json(
        {"schema": CACHE_SCHEMA_VERSION, "kind": kind, "payload": payload}
    )
    return hashlib.sha256(body.encode()).hexdigest()


def _require(payload, field, types, kind):
    value = payload.get(field)
    if not isinstance(value, types):
        raise ConfigError(
            f"{kind} request field {field!r} must be "
            f"{'/'.join(t.__name__ for t in types)}, got {value!r}"
        )
    return value


def _normalize_sim(payload):
    suite = payload.get("suite", "spec")
    if suite not in ("spec", "parsec"):
        raise ConfigError(f"sim request suite must be spec|parsec, got {suite!r}")
    app = _require(payload, "app", (str,), "sim")
    scheme = str(payload.get("scheme", Scheme.BASE.value)).lower()
    if scheme not in _SCHEME_ALIASES:
        raise ConfigError(
            f"unknown scheme {payload.get('scheme')!r}; "
            f"expected one of {sorted(_SCHEMES)}"
        )
    scheme = _SCHEME_ALIASES[scheme]
    consistency = str(
        payload.get("consistency", ConsistencyModel.TSO.value)
    ).lower()
    if consistency not in _CONSISTENCY_ALIASES:
        raise ConfigError(
            f"unknown consistency model {payload.get('consistency')!r}"
        )
    consistency = _CONSISTENCY_ALIASES[consistency]
    out = {
        "suite": suite,
        "app": app,
        "scheme": scheme,
        "consistency": consistency,
        "seed": int(payload.get("seed", 0)),
        "instructions": (
            int(payload["instructions"])
            if payload.get("instructions") is not None
            else None
        ),
        "sanitize": payload.get("sanitize"),
        "fault": payload.get("fault"),
        "max_cycles": (
            int(payload["max_cycles"])
            if payload.get("max_cycles") is not None
            else None
        ),
    }
    if out["sanitize"] not in (None, "strict", "record"):
        raise ConfigError(f"sanitize must be strict|record, got {out['sanitize']!r}")
    return out


def _normalize_specflow(payload):
    program = payload.get("program")
    if isinstance(program, dict):
        program = canonical_json(program)
    elif not isinstance(program, str):
        raise ConfigError(
            "specflow request needs 'program': a corpus program name or a "
            "serialized fuzz-program object"
        )
    model = payload.get("model", "futuristic")
    if isinstance(model, str):
        model = model.lower()
    if model not in ("spectre", "futuristic"):
        raise ConfigError(f"unknown attack model {model!r}")
    return {
        "program": program,
        "model": model,
        "window": int(payload.get("window", 64)),
        "corpus_seed": int(payload.get("corpus_seed", 0)),
    }


def _normalize_fuzz(payload):
    programs = payload.get("programs")
    if not isinstance(programs, (list, tuple)) or not programs:
        raise ConfigError("fuzz request needs a non-empty 'programs' list")
    texts = []
    for program in programs:
        if isinstance(program, dict):
            texts.append(canonical_json(program))
        elif isinstance(program, str):
            texts.append(program)
        else:
            raise ConfigError("fuzz programs must be dicts or canonical JSON")
    weaken = payload.get("weaken")
    return {
        "programs": texts,
        "window": int(payload.get("window", 64)),
        "weaken": weaken if weaken else None,
    }


_NORMALIZERS = {
    "sim": _normalize_sim,
    "specflow": _normalize_specflow,
    "fuzz": _normalize_fuzz,
}


class SpecflowResult:
    """Specflow cell result; owns its journal/metrics schema."""

    __slots__ = ("cycles", "report")

    def __init__(self, report):
        self.cycles = 0  # abstract interpretation spends no simulated time
        self.report = report

    def to_metrics(self):
        return {"kind": "specflow", "cycles": 0, "report": self.report}


@dataclass(frozen=True)
class SpecflowCellSpec:
    """Pickle-safe specflow analysis job for the worker pool.

    ``program`` is either a corpus program name (resolved against
    :func:`repro.specflow.programs.all_programs` with ``corpus_seed``)
    or the canonical JSON of a serialized
    :class:`~repro.fuzz.generator.FuzzProgram`.
    """

    cell_id: str
    program: str
    model: str = "futuristic"
    window: int = 64
    corpus_seed: int = 0

    def run(self, seed, max_cycles, watchdog, faults, heartbeat=None):
        # seed/max_cycles/faults accepted for pool-contract compatibility
        # but unused: analysis is a pure function of the program.
        from ..specflow.analyzer import analyze_program

        if heartbeat is not None:
            heartbeat(0)
        prog = self._resolve_program()
        report = analyze_program(
            prog, model=self.model, window=self.window
        )
        if watchdog is not None:
            watchdog(0)
        return SpecflowResult(report.to_dict())

    def _resolve_program(self):
        if self.program.lstrip().startswith("{"):
            from ..fuzz.generator import FuzzProgram

            return FuzzProgram.from_dict(json.loads(self.program)).spec_program()
        from ..specflow import programs as corpus

        for prog in corpus.all_programs(seed=self.corpus_seed):
            if prog.name == self.program:
                return prog
        raise WorkloadError(
            f"unknown specflow corpus program {self.program!r}"
        )


class JobRequest:
    """One normalized service request, ready to key, queue, and run."""

    __slots__ = (
        "kind", "payload", "client_id", "lane", "deadline_s", "nocache",
        "_key",
    )

    def __init__(self, kind, payload, client_id="anon", lane="interactive",
                 deadline_s=None, nocache=False):
        if kind not in KINDS:
            raise ConfigError(
                f"unknown request kind {kind!r}; expected one of {KINDS}"
            )
        if lane not in LANES:
            raise ConfigError(
                f"unknown lane {lane!r}; expected one of {LANES}"
            )
        if deadline_s is not None:
            deadline_s = float(deadline_s)
            if deadline_s <= 0:
                raise ConfigError("deadline_s must be positive")
        self.kind = kind
        self.payload = _NORMALIZERS[kind](dict(payload))
        self.client_id = str(client_id) or "anon"
        self.lane = lane
        self.deadline_s = deadline_s
        self.nocache = bool(nocache)
        self._key = None

    @classmethod
    def from_wire(cls, message):
        """Build from a decoded protocol message (defensive copies)."""
        if not isinstance(message, dict):
            raise ConfigError("request body must be a JSON object")
        return cls(
            kind=message.get("kind"),
            payload=message.get("payload") or {},
            client_id=message.get("client", "anon"),
            lane=message.get("lane", "interactive"),
            deadline_s=message.get("deadline_s"),
            nocache=message.get("nocache", False),
        )

    @property
    def cache_key(self):
        if self._key is None:
            self._key = cache_key(self.kind, self.payload)
        return self._key

    @property
    def base_seed(self):
        return self.payload.get("seed", 0) if self.kind == "sim" else 0

    @property
    def max_cycles(self):
        return self.payload.get("max_cycles")

    def build_spec(self):
        """Lower to ``(spec, fault_schedule)`` for the lease pool."""
        short = self.cache_key[:12]
        if self.kind == "sim":
            p = self.payload
            spec = CellSpec(
                suite=p["suite"],
                app=p["app"],
                scheme=_SCHEMES[p["scheme"]],
                consistency=_CONSISTENCY[p["consistency"]],
                seed=p["seed"],
                instructions=p["instructions"],
                sanitize=p["sanitize"],
            )
            schedule = (
                FaultSchedule.parse([p["fault"]], seed=p["seed"])
                if p["fault"]
                else None
            )
            return spec, schedule
        if self.kind == "specflow":
            p = self.payload
            return (
                SpecflowCellSpec(
                    cell_id=f"specflow:{short}",
                    program=p["program"],
                    model=p["model"],
                    window=p["window"],
                    corpus_seed=p["corpus_seed"],
                ),
                None,
            )
        from ..fuzz.cells import FuzzCellSpec

        p = self.payload
        return (
            FuzzCellSpec(
                cell_id=f"fuzz:{short}",
                programs=tuple(p["programs"]),
                window=p["window"],
                weaken=p["weaken"],
            ),
            None,
        )

    def to_journal(self):
        """JSON-able record for the drain journal (resume rebuilds us)."""
        return {
            "kind": self.kind,
            "payload": self.payload,
            "client": self.client_id,
            "lane": self.lane,
            "deadline_s": self.deadline_s,
        }

    @classmethod
    def from_journal(cls, record):
        return cls(
            kind=record["kind"],
            payload=record["payload"],
            client_id=record.get("client", "resume"),
            lane=record.get("lane", "batch"),
            # Deadlines are not resumed: the client that wanted one is
            # gone; the result is computed for the cache.
            deadline_s=None,
        )

    def __repr__(self):
        return (
            f"JobRequest({self.kind}, key={self.cache_key[:12]}, "
            f"client={self.client_id!r}, lane={self.lane})"
        )
