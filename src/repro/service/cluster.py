"""Replicated analysis cluster: the failover router front tier.

``python -m repro.service route`` runs a :class:`ClusterRouter` — an
asyncio TCP tier that speaks the exact line-JSON envelope of a single
:mod:`repro.service` node, so existing clients point at the router and
notice nothing except that the cluster now survives node loss, slow
nodes, and partitions.

Placement and replication
    Every request is normalized into a :class:`JobRequest` and keyed by
    its content address (the store's normalized-payload SHA-256); the
    key places onto a deterministic consistent-hash ring
    (:mod:`repro.service.ring`).  A computed result is replicated to
    ``R`` (default 2) ring owners via the backend ``put`` op — the
    backend re-derives the key from the payload, so a confused router
    can never file a result under the wrong address.  When a node is
    lost, every key it held is re-replicated from a surviving holder to
    the ring's next live choice, restoring ``R`` copies.

Failure machinery
    * **active + passive detection** — a ping loop marks a node down
      after ``down_after`` consecutive probe failures (and back up on
      the first success); request latencies feed a per-node EMA and
      sliding p95 (:mod:`repro.service.health`);
    * **circuit breakers** — per backend, closed/open/half-open with a
      bounded probe budget; an open breaker fails over instantly
      instead of burning a timeout per request;
    * **hedged reads** — an idempotent request whose key is known to be
      replicated races a second holder after an adaptive delay (the
      primary's own p95): first response wins, the loser is cancelled;
    * **explicit shed** — when no backend is usable the router answers
      ``{"status": "shed", "reason": "no-backend", "retry_after_s": …}``
      rather than hanging; the client's decorrelated-jitter retry
      (:func:`repro.service.client.request_sync`) honors the hint.

Zero wrong answers is inherited, not re-proven: backends only serve
checksum-verified store entries or freshly computed, sanitizer-clean
results, and the router never caches — it only moves verified payloads
between stores.

The router journals cluster membership and the replica index
(``--journal``); ``route --resume`` reloads both so a restarted router
keeps hedging and can re-replicate keys recorded before the restart.
Chaos coverage lives in ``tests/service/test_cluster.py`` and the
``cluster-chaos`` CI job; the ``net.delay`` fault site
(:mod:`repro.reliability.faults`) injects slow-node wall-clock latency
into router→backend calls.
"""

from __future__ import annotations

import asyncio
import json
import time

from ..errors import ConfigError, ReproError, ServiceProtocolError
from ..reliability.atomic_io import atomic_write_json
from .client import ServiceClient
from .envelope import JobRequest
from .health import BackendHealth
from .ring import DEFAULT_VNODES, HashRing

__all__ = [
    "BackendLink",
    "ClusterJournal",
    "ClusterRouter",
    "parse_backends",
    "route_serve",
]

#: Result copies the cluster maintains per key.
DEFAULT_REPLICATION = 2


def parse_backends(text):
    """Parse ``[name=]host:port,...`` into ``[(node_id, host, port)]``.

    Names default to ``host:port``; explicit names give the ring stable
    coordinates across redeploys that move ports.
    """
    backends = []
    seen = set()
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        name, _, addr = item.rpartition("=")
        host, _, port = addr.rpartition(":")
        if not host or not port.isdigit():
            raise ConfigError(
                f"backend {item!r} must look like [name=]host:port"
            )
        node_id = name or f"{host}:{port}"
        if node_id in seen:
            raise ConfigError(f"duplicate backend id {node_id!r}")
        seen.add(node_id)
        backends.append((node_id, host, int(port)))
    if not backends:
        raise ConfigError("at least one backend is required")
    return backends


class BackendLink:
    """One router→backend channel: lazy reconnect, typed errors, timeouts.

    Concurrent calls share a single pipelined connection; any transport
    failure (or timeout) drops the connection so the next call starts
    clean.  ``injector`` (a :class:`~repro.reliability.faults
    .FaultInjector`) is consulted once per call at the ``net.delay``
    site — the slow-node chaos lever.
    """

    def __init__(self, node_id, host, port, injector=None):
        self.node_id = node_id
        self.host = host
        self.port = port
        self.injector = injector
        self._client = None
        self._connect_lock = asyncio.Lock()
        self.calls = 0

    async def call(self, body, timeout=10.0):
        self.calls += 1
        if self.injector is not None:
            action = self.injector.fire("net.delay")
            if action is not None:
                await asyncio.sleep(action.extra / 1000.0)
        try:
            if self._client is None:
                async with self._connect_lock:
                    if self._client is None:
                        client = ServiceClient(self.host, self.port)
                        await asyncio.wait_for(client.connect(), timeout)  # reprolint: disable=blocking-call-in-async -- ServiceClient.connect is an asyncio-streams coroutine; wait_for awaits it with a bound
                        self._client = client
            return await asyncio.wait_for(self._client.call(body), timeout)
        except asyncio.TimeoutError:
            await self.reset()
            raise ServiceProtocolError(
                f"no response within {timeout}s",
                host=self.host, port=self.port,
            ) from None
        except ServiceProtocolError:
            await self.reset()
            raise

    async def reset(self):
        """Drop the connection (failed or suspect); next call redials."""
        client, self._client = self._client, None
        if client is not None:
            await client.close()


class ClusterJournal:
    """Durable cluster memory: membership plus the replica index.

    One entry per replicated key records the normalized request
    (``kind`` + ``payload`` — enough to refetch the result from any
    holder as a cache hit) and which nodes hold a copy.  Writes are
    batched (``flush`` from the monitor loop and at drain) through the
    shared kill-9-hardened atomic pattern; losing the last few seconds
    of index on a hard kill only costs hedging eligibility and
    re-replication hints, never correctness.
    """

    VERSION = 1

    def __init__(self, path=None, membership=None, resume=False):
        self.path = path
        self.membership = dict(membership or {})
        self._replicas = {}
        self._dirty = False
        self.resumed_keys = 0
        if path is not None and resume:
            self._load()

    def _load(self):
        try:
            with open(self.path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) or data.get("version") != self.VERSION:
            return
        known = set(self.membership)
        for key, entry in sorted(data.get("replicas", {}).items()):
            if not isinstance(entry, dict):
                continue
            nodes = [
                node
                for node in entry.get("nodes", ())
                if not known or node in known
            ]
            if nodes and entry.get("kind") and isinstance(
                entry.get("payload"), dict
            ):
                self._replicas[key] = {
                    "kind": entry["kind"],
                    "payload": entry["payload"],
                    "nodes": sorted(nodes),
                }
        self.resumed_keys = len(self._replicas)
        self._dirty = True  # persist the membership-filtered view

    @property
    def replicas(self):
        return self._replicas

    def nodes_for(self, key):
        entry = self._replicas.get(key)
        return tuple(entry["nodes"]) if entry else ()

    def record(self, key, kind, payload, nodes):
        nodes = sorted(set(nodes))
        entry = self._replicas.get(key)
        if entry is not None and entry["nodes"] == nodes:
            return
        self._replicas[key] = {
            "kind": kind, "payload": payload, "nodes": nodes,
        }
        self._dirty = True

    def flush(self):
        if self.path is None or not self._dirty:
            return
        atomic_write_json(
            self.path,
            {
                "version": self.VERSION,
                "membership": self.membership,
                "replicas": self._replicas,
            },
            backup=True,
        )
        self._dirty = False

    def __len__(self):
        return len(self._replicas)


class ClusterRouter:
    """Consistent-hash failover router over N backend service nodes."""

    def __init__(
        self,
        backends,
        replication=DEFAULT_REPLICATION,
        vnodes=DEFAULT_VNODES,
        journal_path=None,
        resume=False,
        faults=None,
        call_timeout_s=30.0,
        ping_interval_s=0.5,
        ping_timeout_s=2.0,
        hedge_floor_s=0.02,
        down_after=3,
        breaker_threshold=3,
        breaker_cooldown_s=2.0,
        breaker_probes=1,
        clock=time.monotonic,
    ):
        if not backends:
            raise ConfigError("cluster needs at least one backend")
        self.replication = max(1, int(replication))
        self.call_timeout_s = float(call_timeout_s)
        self.ping_interval_s = float(ping_interval_s)
        self.ping_timeout_s = float(ping_timeout_s)
        self.hedge_floor_s = float(hedge_floor_s)
        self._clock = clock
        self.injector = faults.injector() if faults else None
        self.ring = HashRing(vnodes=vnodes)
        self.links = {}
        self.health = {}
        membership = {}
        for node_id, host, port in backends:
            self.ring.add(node_id)
            self.links[node_id] = BackendLink(
                node_id, host, port, injector=self.injector
            )
            self.health[node_id] = BackendHealth(
                node_id,
                down_after=down_after,
                clock=clock,
            )
            self.health[node_id].breaker.failure_threshold = breaker_threshold
            self.health[node_id].breaker.cooldown_s = breaker_cooldown_s
            self.health[node_id].breaker.probe_budget = breaker_probes
            membership[node_id] = f"{host}:{port}"
        self.journal = ClusterJournal(
            journal_path, membership=membership, resume=resume
        )
        self.draining = False
        self.counters = {
            "requests": 0,
            "ok": 0,
            "failed": 0,
            "shed_upstream": 0,
            "shed_no_backend": 0,
            "shed_draining": 0,
            "failovers": 0,
            "backend_failures": 0,
            "breaker_rejections": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "replications": 0,
            "rereplications": 0,
            "rereplication_deferred": 0,
            "nodes_lost": 0,
            "nodes_recovered": 0,
        }
        self._started_at = clock()
        self._monitor = None
        self._stop_monitor = False
        self._tasks = set()
        self._inflight_submits = 0

    # ------------------------------------------------------------- lifecycle

    async def start(self):
        self.journal.flush()
        self._stop_monitor = False
        self._monitor = asyncio.ensure_future(self._monitor_loop())
        return self

    async def drain(self, timeout=15.0):
        """Stop accepting, let in-flight forwards finish, persist, close."""
        self.draining = True
        deadline = self._clock() + timeout
        while self._inflight_submits and self._clock() < deadline:
            await asyncio.sleep(0.02)
        self._stop_monitor = True
        if self._monitor is not None:
            self._monitor.cancel()
            try:
                await self._monitor
            except (asyncio.CancelledError, Exception):
                pass
            self._monitor = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self.journal.flush()
        for link in self.links.values():
            await link.reset()

    def _spawn(self, coro):
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    # --------------------------------------------------------------- routing

    def _is_up(self, node):
        return self.health[node].up

    def _down_nodes(self):
        return [node for node in self.ring.nodes if not self._is_up(node)]

    def _candidates(self, key):
        """Every live node in ring preference order (owners first)."""
        return self.ring.nodes_for(
            key, count=len(self.ring), exclude=self._down_nodes()
        )

    def _retry_after(self):
        p95 = max(
            (self.health[node].latency.p95() for node in self.ring.nodes),
            default=0.05,
        )
        return round(max(0.05, 2.0 * p95), 3)

    async def submit(self, message):
        """Route one submit to a healthy backend; always answers."""
        self.counters["requests"] += 1
        request = JobRequest.from_wire(message)
        if self.draining:
            self.counters["shed_draining"] += 1
            return {
                "status": "shed",
                "reason": "draining",
                "kind": request.kind,
                "key": request.cache_key,
                "retry_after_s": self._retry_after(),
            }
        self._inflight_submits += 1
        try:
            forward = {
                field: value
                for field, value in message.items()
                if field != "id"
            }
            key = request.cache_key
            candidates = self._candidates(key)
            holders = [
                node
                for node in candidates
                if node in set(self.journal.nodes_for(key))
            ]
            if not request.nocache and len(holders) >= 2:
                response, node = await self._hedged_call(
                    key, forward, holders, candidates
                )
            else:
                response, node = await self._failover_call(forward, candidates)
            if response is None:
                self.counters["shed_no_backend"] += 1
                return {
                    "status": "shed",
                    "reason": "no-backend",
                    "kind": request.kind,
                    "key": key,
                    "retry_after_s": self._retry_after(),
                }
            return self._after_submit(request, response, node)
        finally:
            self._inflight_submits -= 1

    async def _call_node(self, node, body, timeout=None, probe=False):
        """One accounted call: breaker admission, latency, typed failure."""
        health = self.health[node]
        if not probe and not health.breaker.allow():
            self.counters["breaker_rejections"] += 1
            raise ServiceProtocolError(f"circuit breaker open for {node}")
        started = self._clock()
        try:
            response = await self.links[node].call(
                body, timeout=timeout or self.call_timeout_s
            )
        except asyncio.CancelledError:
            raise
        except ServiceProtocolError:
            self.counters["backend_failures"] += 1
            health.record_call(False)
            raise
        health.record_call(True, self._clock() - started)
        return response

    async def _failover_call(self, forward, candidates):
        """Walk candidates in ring order until one answers."""
        for index, node in enumerate(candidates):
            try:
                response = await self._call_node(node, forward)
            except ServiceProtocolError:
                continue
            if index > 0:
                self.counters["failovers"] += 1
            return response, node
        return None, None

    async def _hedged_call(self, key, forward, holders, candidates):
        """Race two replica holders: primary first, backup after p95.

        First response wins and the loser is cancelled; if both holders
        fail, fall back to plain failover over the remaining nodes.
        """
        primary, backup = holders[0], holders[1]
        delay = max(self.hedge_floor_s, self.health[primary].latency.p95())
        primary_task = self._spawn(self._call_node(primary, forward))
        done, _ = await asyncio.wait({primary_task}, timeout=delay)
        tasks = {primary_task: primary}
        if not done:
            # Primary is past its own p95: hedge to the other holder.
            self.counters["hedges"] += 1
            backup_task = self._spawn(self._call_node(backup, forward))
            tasks[backup_task] = backup
        pending = set(tasks)
        winner = None
        while pending and winner is None:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                try:
                    response = task.result()
                except (ServiceProtocolError, asyncio.CancelledError):
                    continue
                winner = (response, tasks[task])
                break
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if winner is None:
            rest = [node for node in candidates if node not in tasks.values()]
            return await self._failover_call(forward, rest)
        if winner[1] != primary:
            self.counters["hedge_wins"] += 1
        return winner

    def _after_submit(self, request, response, node):
        response = dict(response)
        response.pop("id", None)  # backend-link id, not the client's
        response["node"] = node
        status = response.get("status")
        if status == "ok":
            self.counters["ok"] += 1
            if not request.nocache and isinstance(
                response.get("metrics"), dict
            ):
                self._spawn(
                    self._ensure_replication(
                        request, response["metrics"], node
                    )
                )
        elif status == "shed":
            self.counters["shed_upstream"] += 1
        elif status == "failed":
            self.counters["failed"] += 1
        return response

    # ----------------------------------------------------------- replication

    async def _ensure_replication(self, request, metrics, served_by):
        """Copy a fresh result to ring owners until R live holders exist."""
        key = request.cache_key
        holders = set(self.journal.nodes_for(key))
        holders.add(served_by)
        live = {node for node in holders if self._is_up(node)}
        if len(live) < self.replication:
            preferred = self.ring.nodes_for(
                key, count=len(self.ring), exclude=self._down_nodes()
            )
            for node in preferred:
                if len(live) >= self.replication:
                    break
                if node in live:
                    continue
                try:
                    await self._call_node(
                        node,
                        {
                            "op": "put",
                            "kind": request.kind,
                            "payload": request.payload,
                            "metrics": metrics,
                        },
                    )
                except ServiceProtocolError:
                    continue
                live.add(node)
                holders.add(node)
                self.counters["replications"] += 1
        self.journal.record(key, request.kind, request.payload, holders)

    async def _rereplicate_lost(self, lost):
        """Restore R copies of every key the lost node held.

        The source is a surviving holder (the refetch is a cache hit on
        its checksum-verified store); the target is the ring's next live
        choice.  Keys whose every holder is down are deferred — they
        recompute on the next request, which is still a correct answer.
        """
        for key, entry in sorted(self.journal.replicas.items()):
            nodes = entry["nodes"]
            if lost not in nodes:
                continue
            survivors = [
                node for node in nodes if node != lost and self._is_up(node)
            ]
            if not survivors:
                self.counters["rereplication_deferred"] += 1
                continue
            try:
                response = await self._call_node(
                    survivors[0],
                    {
                        "op": "submit",
                        "kind": entry["kind"],
                        "payload": entry["payload"],
                        "client": "router-rereplication",
                        "lane": "batch",
                    },
                )
            except ServiceProtocolError:
                self.counters["rereplication_deferred"] += 1
                continue
            if response.get("status") != "ok":
                self.counters["rereplication_deferred"] += 1
                continue
            placed = [node for node in nodes if node != lost]
            targets = [
                node
                for node in self.ring.nodes_for(
                    key, count=len(self.ring), exclude=self._down_nodes()
                )
                if node not in nodes
            ]
            for node in targets:
                if (
                    sum(1 for held in placed if self._is_up(held))
                    >= self.replication
                ):
                    break
                try:
                    await self._call_node(
                        node,
                        {
                            "op": "put",
                            "kind": entry["kind"],
                            "payload": entry["payload"],
                            "metrics": response["metrics"],
                        },
                    )
                except ServiceProtocolError:
                    continue
                placed.append(node)
                self.counters["rereplications"] += 1
            self.journal.record(key, entry["kind"], entry["payload"], placed)

    # ------------------------------------------------------------ monitoring

    async def _monitor_loop(self):
        """Active health checks + journal flushing, forever until drain."""
        while not self._stop_monitor:
            for node in self.ring.nodes:
                await self._ping_node(node)
            self.journal.flush()
            await asyncio.sleep(self.ping_interval_s)

    async def _ping_node(self, node):
        try:
            response = await self._call_node(
                node, {"op": "ping"}, timeout=self.ping_timeout_s, probe=True
            )
            ok = response.get("status") == "ok"
        except ServiceProtocolError:
            ok = False
        transition = self.health[node].record_ping(ok)
        if transition == "down":
            self.counters["nodes_lost"] += 1
            self._spawn(self._rereplicate_lost(node))
        elif transition == "up":
            self.counters["nodes_recovered"] += 1

    # ---------------------------------------------------------------- status

    async def status(self):
        """Cluster view: per-node health/breaker/latency + replica index."""
        per_node = {}
        for node in self.ring.nodes:
            snapshot = self.health[node].snapshot()
            snapshot["address"] = self.journal.membership.get(node)
            try:
                backend = await self._call_node(
                    node,
                    {"op": "status"},
                    timeout=self.ping_timeout_s,
                    probe=True,
                )
                healthz = backend.get("healthz") or {}
                snapshot["store_entries"] = healthz.get("cache", {}).get(
                    "entries"
                )
                snapshot["backend"] = healthz
            except ServiceProtocolError as error:
                snapshot["store_entries"] = None
                snapshot["backend"] = None
                snapshot["backend_error"] = str(error)
            per_node[node] = snapshot
        by_count = {}
        under = 0
        for entry in self.journal.replicas.values():
            count = len(entry["nodes"])
            by_count[str(count)] = by_count.get(str(count), 0) + 1
            live = sum(1 for node in entry["nodes"] if self._is_up(node))
            if live < self.replication:
                under += 1
        return {
            "cluster": True,
            "draining": self.draining,
            "uptime_s": round(self._clock() - self._started_at, 3),
            "replication": self.replication,
            "nodes": per_node,
            "replicas": {
                "tracked_keys": len(self.journal),
                "by_count": by_count,
                "under_replicated": under,
                "journal_resumed_keys": self.journal.resumed_keys,
            },
            "counters": dict(self.counters),
            "faults_injected": (
                len(self.injector.log) if self.injector is not None else 0
            ),
        }


# ------------------------------------------------------------------ protocol


class _DrainRequested(Exception):
    """Control-flow marker: a client asked the router to drain."""


async def _handle_router_connection(router, reader, writer):
    """Same line discipline as the single-node server, routed ops."""
    write_lock = asyncio.Lock()
    tasks = set()

    async def reply(message_id, body):
        body = dict(body)
        if message_id is not None:
            body["id"] = message_id
        data = (json.dumps(body, sort_keys=True) + "\n").encode()
        async with write_lock:
            writer.write(data)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    async def dispatch(message):
        message_id = message.get("id")
        op = message.get("op", "submit")
        try:
            if op == "ping":
                await reply(
                    message_id,
                    {"status": "ok", "pong": True, "cluster": True},
                )
            elif op == "status":
                await reply(
                    message_id,
                    {"status": "ok", "healthz": await router.status()},
                )
            elif op == "submit":
                await reply(message_id, await router.submit(message))
            else:
                await reply(
                    message_id,
                    {
                        "status": "error",
                        "error_message": f"unknown router op {op!r}",
                    },
                )
        except ReproError as error:
            await reply(
                message_id,
                {
                    "status": "error",
                    "error_class": type(error).__name__,
                    "error_message": str(error),
                },
            )

    drain_requested = False
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                message = json.loads(line)
            except ValueError:
                await reply(None, {
                    "status": "error", "error_message": "malformed JSON line",
                })
                continue
            if not isinstance(message, dict):
                await reply(None, {
                    "status": "error", "error_message": "expected an object",
                })
                continue
            if message.get("op") == "drain":
                drain_requested = True
                await reply(message.get("id"), {
                    "status": "ok", "draining": True,
                })
                break
            task = asyncio.ensure_future(dispatch(message))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
    finally:
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        try:
            writer.close()
        except OSError:
            pass
    if drain_requested:
        raise _DrainRequested()


async def route_serve(
    router,
    host="127.0.0.1",
    port=0,
    ready_callback=None,
    drain_timeout=15.0,
):
    """Run the router front-end until SIGTERM/SIGINT, then drain.

    Mirrors :func:`repro.service.server.serve`: ``ready_callback(host,
    port)`` fires once listening (``port=0`` picks a free port), and the
    call returns after the drain completes.
    """
    await router.start()
    stop = asyncio.get_event_loop().create_future()

    def request_stop(origin):
        if not stop.done():
            stop.set_result(origin)

    async def handler(reader, writer):
        try:
            await _handle_router_connection(router, reader, writer)
        except _DrainRequested:
            request_stop("drain-op")

    server = await asyncio.start_server(handler, host=host, port=port)
    bound = server.sockets[0].getsockname()
    if ready_callback is not None:
        ready_callback(bound[0], bound[1])

    import signal as _signal

    loop = asyncio.get_event_loop()
    registered = []
    for sig in (_signal.SIGTERM, _signal.SIGINT):
        try:
            loop.add_signal_handler(sig, request_stop, sig.name)
            registered.append(sig)
        except (NotImplementedError, ValueError):
            pass
    try:
        origin = await stop
    finally:
        for sig in registered:
            loop.remove_signal_handler(sig)
        server.close()
        await server.wait_closed()
        await router.drain(timeout=drain_timeout)
    return origin
