"""CLI for the analysis service.

Run a server::

    PYTHONPATH=src python -m repro.service serve \\
        --port 8753 --workers 4 --store results/service/cache

Submit a request (JSON payload on the command line or stdin)::

    PYTHONPATH=src python -m repro.service request \\
        --port 8753 --kind specflow \\
        --payload '{"program": "sanity_safe_arith", "model": "spectre"}'

Query server health::

    PYTHONPATH=src python -m repro.service status --port 8753

Run the replicated-cluster router over three backends (each started
with ``serve`` as above)::

    PYTHONPATH=src python -m repro.service route --port 8700 \\
        --backends n0=127.0.0.1:8753,n1=127.0.0.1:8754,n2=127.0.0.1:8755 \\
        --journal results/service/cluster.json

``request`` and ``status`` against the router port work unchanged (the
router speaks the same envelope); ``status`` additionally renders
per-node health, breaker state, and replica counts.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from ..reliability.faults import FaultSchedule
from .client import request_sync, status_sync
from .cluster import ClusterRouter, parse_backends, route_serve
from .server import build_service, serve


def _parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Fault-tolerant analysis job server with a "
        "content-addressed result cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    srv = sub.add_parser("serve", help="run the job server")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=0,
                     help="TCP port (0 picks a free port, printed on start)")
    srv.add_argument("--workers", type=int, default=2,
                     help="pool worker processes (default 2)")
    srv.add_argument("--store", default="results/service/cache",
                     help="result-store directory")
    srv.add_argument("--journal", default=None,
                     help="drain-journal path (enables SIGTERM resume)")
    srv.add_argument("--resume", action="store_true",
                     help="replay the journal's pending requests on start")
    srv.add_argument("--max-depth", type=int, default=64,
                     help="admission queue depth before shedding")
    srv.add_argument("--per-client-cap", type=int, default=None,
                     help="max queued requests per client id")
    srv.add_argument("--deadline", type=float, default=None,
                     help="default per-request deadline in seconds")
    srv.add_argument("--max-attempts", type=int, default=3,
                     help="retry budget per request (default 3)")
    srv.add_argument("--max-rss", default=None,
                     help="per-worker RSS ceiling, e.g. 512M")
    srv.add_argument("--heartbeat-timeout", type=float, default=60.0)
    srv.add_argument("--drain-timeout", type=float, default=30.0,
                     help="grace for in-flight work on SIGTERM")
    srv.add_argument("--ready-file", default=None,
                     help="write 'host port' here once listening (for "
                     "scripts that need the auto-picked port)")

    rte = sub.add_parser(
        "route", help="run the replicated-cluster failover router"
    )
    rte.add_argument("--host", default="127.0.0.1")
    rte.add_argument("--port", type=int, default=0,
                     help="TCP port (0 picks a free port, printed on start)")
    rte.add_argument("--backends", required=True,
                     help="comma-separated [name=]host:port backend list")
    rte.add_argument("--replication", type=int, default=2,
                     help="result copies maintained per key (default 2)")
    rte.add_argument("--vnodes", type=int, default=64,
                     help="virtual nodes per backend on the hash ring")
    rte.add_argument("--journal", default=None,
                     help="membership + replica-index journal path")
    rte.add_argument("--resume", action="store_true",
                     help="reload the journal's replica index on start")
    rte.add_argument("--call-timeout", type=float, default=30.0,
                     help="per-backend-call timeout in seconds")
    rte.add_argument("--ping-interval", type=float, default=0.5,
                     help="active health-check period in seconds")
    rte.add_argument("--ping-timeout", type=float, default=2.0)
    rte.add_argument("--down-after", type=int, default=3,
                     help="consecutive failed pings before a node is down")
    rte.add_argument("--hedge-floor", type=float, default=0.02,
                     help="minimum hedged-read trigger delay in seconds")
    rte.add_argument("--breaker-threshold", type=int, default=3)
    rte.add_argument("--breaker-cooldown", type=float, default=2.0)
    rte.add_argument("--fault", action="append", default=[],
                     metavar="SITE[:k=v,...]",
                     help="inject a fault (e.g. net.delay:prob=0.1,extra=250)")
    rte.add_argument("--fault-seed", type=int, default=0)
    rte.add_argument("--drain-timeout", type=float, default=15.0)
    rte.add_argument("--ready-file", default=None,
                     help="write 'host port' here once listening")

    req = sub.add_parser("request", help="submit one request")
    req.add_argument("--host", default="127.0.0.1")
    req.add_argument("--port", type=int, required=True)
    req.add_argument("--kind", required=True,
                     choices=("sim", "specflow", "fuzz"))
    req.add_argument("--payload", default="-",
                     help="JSON payload ('-' reads stdin)")
    req.add_argument("--client", default="cli")
    req.add_argument("--lane", default="interactive",
                     choices=("interactive", "batch"))
    req.add_argument("--deadline", type=float, default=None)
    req.add_argument("--nocache", action="store_true")
    req.add_argument("--retries", type=int, default=0,
                     help="retry explicit sheds this many times, honoring "
                     "retry_after_s with decorrelated jitter")
    req.add_argument("--transport-retries", type=int, default=1,
                     help="retry transport failures on a fresh connection "
                     "(idempotent; default 1)")

    sta = sub.add_parser("status", help="query server health")
    sta.add_argument("--host", default="127.0.0.1")
    sta.add_argument("--port", type=int, required=True)
    return parser


_SIZE_SUFFIXES = {"K": 2**10, "M": 2**20, "G": 2**30}


def _parse_size(text):
    if text is None:
        return None
    text = text.strip().upper()
    suffix = text[-1:]
    if suffix in _SIZE_SUFFIXES:
        return int(float(text[:-1]) * _SIZE_SUFFIXES[suffix])
    return int(text)


def _cmd_serve(args):
    service = build_service(
        store_dir=args.store,
        workers=args.workers,
        max_depth=args.max_depth,
        per_client_cap=args.per_client_cap,
        max_rss=_parse_size(args.max_rss),
        heartbeat_timeout=args.heartbeat_timeout,
        default_deadline_s=args.deadline,
        journal_path=args.journal,
        max_attempts=args.max_attempts,
    )

    def ready(host, port):
        print(f"serving on {host}:{port}", flush=True)
        if args.ready_file:
            with open(args.ready_file, "w") as handle:
                handle.write(f"{host} {port}\n")

    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    try:
        origin = loop.run_until_complete(
            serve(
                service,
                host=args.host,
                port=args.port,
                ready_callback=ready,
                resume=args.resume,
                drain_timeout=args.drain_timeout,
            )
        )
    finally:
        loop.close()
    print(f"drained ({origin})", flush=True)
    return 0


def _cmd_route(args):
    faults = (
        FaultSchedule.parse(args.fault, seed=args.fault_seed)
        if args.fault
        else None
    )
    router = ClusterRouter(
        parse_backends(args.backends),
        replication=args.replication,
        vnodes=args.vnodes,
        journal_path=args.journal,
        resume=args.resume,
        faults=faults,
        call_timeout_s=args.call_timeout,
        ping_interval_s=args.ping_interval,
        ping_timeout_s=args.ping_timeout,
        hedge_floor_s=args.hedge_floor,
        down_after=args.down_after,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
    )

    def ready(host, port):
        print(
            f"routing on {host}:{port} -> "
            f"{', '.join(router.ring.nodes)}",
            flush=True,
        )
        if args.ready_file:
            with open(args.ready_file, "w") as handle:
                handle.write(f"{host} {port}\n")

    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    try:
        origin = loop.run_until_complete(
            route_serve(
                router,
                host=args.host,
                port=args.port,
                ready_callback=ready,
                drain_timeout=args.drain_timeout,
            )
        )
    finally:
        loop.close()
    print(f"drained ({origin})", flush=True)
    return 0


def _cmd_request(args):
    if args.payload == "-":
        payload = json.load(sys.stdin)
    else:
        payload = json.loads(args.payload)
    response = request_sync(
        args.host, args.port, args.kind, payload,
        client=args.client, lane=args.lane,
        deadline_s=args.deadline, nocache=args.nocache,
        retries=args.retries, transport_retries=args.transport_retries,
    )
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("status") == "ok" else 1


def _render_cluster_status(healthz):
    """Human summary of the router's cluster view (before the JSON)."""
    lines = [
        f"cluster: {len(healthz['nodes'])} node(s), "
        f"replication R={healthz['replication']}, "
        f"draining={healthz['draining']}"
    ]
    for node, snap in sorted(healthz["nodes"].items()):
        breaker = snap["breaker"]
        latency = snap["latency"]
        lines.append(
            f"  {node} ({snap.get('address')}): "
            f"{'up' if snap['up'] else 'DOWN'}, "
            f"breaker={breaker['state']}, "
            f"ema={latency['ema_ms']}ms p95={latency['p95_ms']}ms, "
            f"store_entries={snap.get('store_entries')}"
        )
    replicas = healthz["replicas"]
    lines.append(
        f"  replicas: {replicas['tracked_keys']} tracked key(s), "
        f"by_count={replicas['by_count']}, "
        f"under_replicated={replicas['under_replicated']}"
    )
    return "\n".join(lines)


def _cmd_status(args):
    response = status_sync(args.host, args.port)
    healthz = response.get("healthz") or {}
    if healthz.get("cluster"):
        print(_render_cluster_status(healthz))
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("status") == "ok" else 1


def main(argv=None):
    args = _parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "route":
        return _cmd_route(args)
    if args.command == "request":
        return _cmd_request(args)
    return _cmd_status(args)


if __name__ == "__main__":
    sys.exit(main())
