"""Bounded admission with priority lanes and per-client fairness.

Backpressure is explicit: the queue has a hard ``max_depth``, and an
``offer`` past it (or past a single client's ``per_client_cap``) is
*rejected* — the server turns that into a shed response with a
``retry_after_s`` hint instead of buffering without bound.  Unbounded
buffering is the classic slow death: memory grows, every queued request
ages past its deadline, and the server does work nobody is waiting for.

Scheduling is two-level and deterministic:

* **lanes** — ``interactive`` and ``batch``, consumed weighted
  round-robin (default 3:1), so bulk sweeps cannot starve interactive
  callers but still make progress under load;
* **clients** — within a lane, one FIFO per client consumed round-robin,
  so a client flooding 1000 requests shares the lane equally with the
  client that sent one.

No wall-clock or randomness here: identical offer/take sequences pick
identical orders, which keeps server tests and chaos scenarios exactly
reproducible.
"""

from __future__ import annotations

from collections import deque

from .envelope import LANES

__all__ = ["AdmissionQueue"]

#: Weighted round-robin lane credits per scheduling cycle.
DEFAULT_LANE_WEIGHTS = {"interactive": 3, "batch": 1}


class AdmissionQueue:
    """Bounded two-level (lane, client) fair queue."""

    def __init__(self, max_depth=64, lane_weights=None, per_client_cap=None):
        self.max_depth = max(1, int(max_depth))
        self.per_client_cap = per_client_cap
        weights = dict(DEFAULT_LANE_WEIGHTS)
        if lane_weights:
            weights.update(lane_weights)
        #: Flattened weighted cycle, e.g. I,I,I,B — the take() scan order.
        self._cycle = [
            lane
            for lane in LANES
            for _ in range(max(1, int(weights.get(lane, 1))))
        ]
        self._cursor = 0
        #: lane -> {client_id -> deque of jobs}; dicts preserve insertion
        #: order, which is the round-robin order.
        self._lanes = {lane: {} for lane in LANES}
        #: lane -> rotation of client ids still holding work.
        self._rotation = {lane: deque() for lane in LANES}
        self._depth = 0

    # ---------------------------------------------------------------- sizing

    def __len__(self):
        return self._depth

    def depths(self):
        """Queue depth per lane (and total), for /healthz."""
        per_lane = {
            lane: sum(len(q) for q in clients.values())
            for lane, clients in self._lanes.items()
        }
        per_lane["total"] = self._depth
        return per_lane

    def client_depth(self, lane, client_id):
        queue = self._lanes[lane].get(client_id)
        return len(queue) if queue else 0

    # --------------------------------------------------------------- offer

    def offer(self, job):
        """Admit ``job`` or return False (the caller sheds explicitly).

        ``job`` needs ``.lane`` and ``.client_id`` attributes.
        """
        if self._depth >= self.max_depth:
            return False
        if (
            self.per_client_cap is not None
            and self.client_depth(job.lane, job.client_id)
            >= self.per_client_cap
        ):
            return False
        clients = self._lanes[job.lane]
        queue = clients.get(job.client_id)
        if queue is None:
            queue = clients[job.client_id] = deque()
            self._rotation[job.lane].append(job.client_id)
        queue.append(job)
        self._depth += 1
        return True

    # ----------------------------------------------------------------- take

    def take(self):
        """Next job under lane weights + client round-robin, or None."""
        if self._depth == 0:
            return None
        for offset in range(len(self._cycle)):
            lane = self._cycle[(self._cursor + offset) % len(self._cycle)]
            job = self._take_from_lane(lane)
            if job is not None:
                self._cursor = (
                    self._cursor + offset + 1
                ) % len(self._cycle)
                return job
        return None

    def _take_from_lane(self, lane):
        rotation = self._rotation[lane]
        clients = self._lanes[lane]
        for _ in range(len(rotation)):
            client_id = rotation.popleft()
            queue = clients.get(client_id)
            if not queue:
                clients.pop(client_id, None)
                continue
            job = queue.popleft()
            self._depth -= 1
            if queue:
                rotation.append(client_id)
            else:
                clients.pop(client_id, None)
            return job
        return None

    # ---------------------------------------------------------------- drain

    def drain(self):
        """Remove and return every queued job (deterministic order)."""
        jobs = []
        while True:
            job = self.take()
            if job is None:
                return jobs
            jobs.append(job)
