"""Analysis-as-a-service: a fault-tolerant async job server + cluster.

``python -m repro.service serve`` runs a long-lived asyncio front-end
that accepts simulation, specflow, and fuzz-cell requests over a
line-JSON TCP protocol, dedupes them through content-addressed cache
keys, serves repeat requests from a checksum-verified on-disk result
store (:mod:`~repro.service.store`), and schedules misses onto a
crash-isolated :class:`~repro.reliability.pool.LeasePool`.

``python -m repro.service route`` runs the replicated-cluster tier
(:mod:`~repro.service.cluster`) over N such nodes: a consistent-hash
failover router with R=2 result replication, circuit breakers, hedged
reads, active/passive failure detection, and automatic re-replication
when a node is lost.

Robustness is the design center — bounded admission with explicit
load-shedding, per-client fairness with priority lanes, per-request
deadlines plumbed into worker watchdogs, seed-bump retry of worker
crashes, corrupt-shard quarantine, and a journaled SIGTERM drain.  See
``docs/SERVICE.md`` for the architecture and the failure-mode tables.
"""

from .admission import AdmissionQueue
from .cluster import ClusterRouter, parse_backends, route_serve
from .envelope import (
    CACHE_SCHEMA_VERSION,
    JobRequest,
    SpecflowCellSpec,
    cache_key,
    canonical_json,
)
from .health import BackendHealth, CircuitBreaker, LatencyTracker
from .ring import HashRing
from .server import AnalysisService, serve
from .store import ResultStore

__all__ = [
    "AdmissionQueue",
    "AnalysisService",
    "BackendHealth",
    "CACHE_SCHEMA_VERSION",
    "CircuitBreaker",
    "ClusterRouter",
    "HashRing",
    "JobRequest",
    "LatencyTracker",
    "ResultStore",
    "SpecflowCellSpec",
    "cache_key",
    "canonical_json",
    "parse_backends",
    "route_serve",
    "serve",
]
