"""Analysis-as-a-service: a fault-tolerant async job server.

``python -m repro.service serve`` runs a long-lived asyncio front-end
that accepts simulation, specflow, and fuzz-cell requests over a
line-JSON TCP protocol, dedupes them through content-addressed cache
keys, serves repeat requests from a checksum-verified on-disk result
store (:mod:`~repro.service.store`), and schedules misses onto a
crash-isolated :class:`~repro.reliability.pool.LeasePool`.

Robustness is the design center — bounded admission with explicit
load-shedding, per-client fairness with priority lanes, per-request
deadlines plumbed into worker watchdogs, seed-bump retry of worker
crashes, corrupt-shard quarantine, and a journaled SIGTERM drain.  See
``docs/SERVICE.md`` for the architecture and the failure-mode table.
"""

from .admission import AdmissionQueue
from .envelope import (
    CACHE_SCHEMA_VERSION,
    JobRequest,
    SpecflowCellSpec,
    cache_key,
    canonical_json,
)
from .server import AnalysisService, serve
from .store import ResultStore

__all__ = [
    "AdmissionQueue",
    "AnalysisService",
    "CACHE_SCHEMA_VERSION",
    "JobRequest",
    "ResultStore",
    "SpecflowCellSpec",
    "cache_key",
    "canonical_json",
    "serve",
]
