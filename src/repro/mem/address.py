"""Address arithmetic helpers.

All addresses are plain integers (physical addresses).  An
:class:`AddressSpace` captures the line and page geometry so that every
component slices addresses the same way.
"""

from __future__ import annotations

from ..errors import ConfigError


class AddressSpace:
    """Line/page geometry shared by the whole machine."""

    __slots__ = ("line_bytes", "_line_shift", "page_bytes", "_page_shift")

    def __init__(self, line_bytes=64, page_bytes=4096):
        if line_bytes & (line_bytes - 1) or line_bytes <= 0:
            raise ConfigError(f"line_bytes must be a power of two: {line_bytes}")
        if page_bytes & (page_bytes - 1) or page_bytes <= 0:
            raise ConfigError(f"page_bytes must be a power of two: {page_bytes}")
        if page_bytes < line_bytes:
            raise ConfigError("page_bytes must be >= line_bytes")
        self.line_bytes = line_bytes
        self._line_shift = line_bytes.bit_length() - 1
        self.page_bytes = page_bytes
        self._page_shift = page_bytes.bit_length() - 1

    def line_of(self, addr):
        """Line-aligned base address containing ``addr``."""
        return (addr >> self._line_shift) << self._line_shift

    def line_index(self, addr):
        """Line number (address divided by line size)."""
        return addr >> self._line_shift

    def offset_in_line(self, addr):
        return addr & (self.line_bytes - 1)

    def page_of(self, addr):
        """Virtual page number containing ``addr``."""
        return addr >> self._page_shift

    def same_line(self, a, b):
        return (a >> self._line_shift) == (b >> self._line_shift)

    def lines_touched(self, addr, size):
        """Line base addresses covered by an access of ``size`` bytes."""
        first = self.line_index(addr)
        last = self.line_index(addr + max(size, 1) - 1)
        return [line << self._line_shift for line in range(first, last + 1)]

    def byte_mask(self, addr, size):
        """Bitmask of the bytes within the line touched by the access.

        Accesses that straddle a line boundary are clipped to the first
        line; the simulator issues one transaction per line via
        :meth:`lines_touched`.
        """
        start = self.offset_in_line(addr)
        end = min(start + max(size, 1), self.line_bytes)
        mask = 0
        for i in range(start, end):
            mask |= 1 << i
        return mask

    def __repr__(self):
        return f"AddressSpace(line_bytes={self.line_bytes}, page_bytes={self.page_bytes})"
