"""Set-associative cache array.

The array stores :class:`CacheLineEntry` objects keyed by line address and
tracks replacement state per set.  Coherence state (MESI) lives in the entry;
the array itself is protocol-agnostic.  Evictions are reported to the caller,
which is responsible for write-backs and for notifying the core (the
baseline processor squashes in-flight loads whose line is evicted, a detail
the paper leans on in Section IX-C).
"""

from __future__ import annotations

from ..errors import SimulationError
from .replacement import make_replacement_policy


class CacheLineEntry:
    """One resident cache line."""

    __slots__ = ("line_addr", "state", "way")

    def __init__(self, line_addr, state, way):
        self.line_addr = line_addr
        self.state = state
        self.way = way

    def __repr__(self):
        return f"CacheLineEntry(0x{self.line_addr:x}, {self.state}, way={self.way})"


class CacheArray:
    """Tag/state array with pluggable replacement.

    ``params`` is a :class:`repro.params.CacheParams`; ``invalid_state`` is
    the protocol's INVALID sentinel stored in freshly-reset entries.
    """

    def __init__(self, params, invalid_state, seed=0):
        self.params = params
        self.invalid_state = invalid_state
        self.num_sets = params.num_sets
        self.ways = params.ways
        self.line_bytes = params.line_bytes
        self._line_shift = params.line_bytes.bit_length() - 1
        self._sets = [dict() for _ in range(self.num_sets)]  # line_addr -> entry
        self._free_ways = [list(range(self.ways)) for _ in range(self.num_sets)]
        self._repl = [
            make_replacement_policy(params.replacement, self.ways, seed=seed + i)
            for i in range(self.num_sets)
        ]
        self._count = 0  # resident lines, maintained by insert/invalidate
        self.stat_hits = 0
        self.stat_misses = 0
        self.stat_evictions = 0

    def set_index(self, line_addr):
        return (line_addr >> self._line_shift) % self.num_sets

    def lookup(self, line_addr, touch=True):
        """Return the entry for ``line_addr`` or ``None``.

        ``touch=False`` performs a state probe without updating replacement
        metadata — this is what makes invisible (Spec-GetS) accesses leave
        no replacement footprint.
        """
        entry = self._sets[self.set_index(line_addr)].get(line_addr)
        if entry is not None and touch:
            self._repl[self.set_index(line_addr)].touch(entry.way)
        return entry

    def contains(self, line_addr):
        return line_addr in self._sets[self.set_index(line_addr)]

    def insert(self, line_addr, state):
        """Install a line; returns ``(entry, evicted_entry_or_None)``.

        The caller must handle the victim (write-back, squash checks)
        *before* relying on the new entry being visible.
        """
        idx = self.set_index(line_addr)
        cset = self._sets[idx]
        if line_addr in cset:
            raise SimulationError(f"line 0x{line_addr:x} already resident")
        victim = None
        free = self._free_ways[idx]
        if free:
            way = free.pop()
        else:
            way = self._repl[idx].victim()
            victim = self._victim_entry(idx, way)
            del cset[victim.line_addr]
            self.stat_evictions += 1
        entry = CacheLineEntry(line_addr, state, way)
        cset[line_addr] = entry
        if victim is None:
            self._count += 1
        self._repl[idx].touch(way)
        return entry, victim

    def _victim_entry(self, idx, way):
        for entry in self._sets[idx].values():
            if entry.way == way:
                return entry
        raise SimulationError(f"replacement chose unoccupied way {way} in set {idx}")

    def invalidate(self, line_addr):
        """Drop a line (coherence invalidation); returns the entry or None."""
        idx = self.set_index(line_addr)
        entry = self._sets[idx].pop(line_addr, None)
        if entry is not None:
            self._count -= 1
            self._free_ways[idx].append(entry.way)
            self._repl[idx].reset(entry.way)
        return entry

    def resident_lines(self):
        """All resident line addresses (diagnostics and attack receivers)."""
        for cset in self._sets:
            yield from cset.keys()

    def lines_in_set(self, set_idx):
        return list(self._sets[set_idx].keys())

    def flush_all(self):
        """Invalidate every line (e.g. attacker's clflush loop)."""
        flushed = [e for cset in self._sets for e in cset.values()]
        for entry in flushed:
            self.invalidate(entry.line_addr)
        return flushed

    @property
    def occupancy(self):
        return self._count

    def set_digest(self, line_addr):
        """Hashable fingerprint of the set ``line_addr`` maps to.

        Captures the tags, coherence states, way assignments *and* the
        replacement-policy state of the set — everything an invisible
        (Spec-GetS) access is forbidden to change.  Used by the runtime
        sanitizer to prove a USL left no footprint.
        """
        idx = self.set_index(line_addr)
        entries = tuple(sorted(
            (addr, entry.state.name, entry.way)
            for addr, entry in self._sets[idx].items()
        ))
        return entries, self._repl[idx].state_digest()
