"""Stride prefetcher.

A classic per-PC stride table.  Under InvisiSpec, speculative *hardware*
prefetching is disabled for security (Section VI-B): the core only trains
and triggers the prefetcher when an access is made visible, never from a
USL's first (invisible) access.  The core enforces that policy; this module
just implements the table.
"""

from __future__ import annotations


class StrideEntry:
    __slots__ = ("last_addr", "stride", "confidence")

    def __init__(self, last_addr):
        self.last_addr = last_addr
        self.stride = 0
        self.confidence = 0


class StridePrefetcher:
    """Per-PC stride detection with confidence-gated issue."""

    def __init__(self, table_entries=64, degree=1, threshold=2, line_bytes=64):
        self.table_entries = table_entries
        self.degree = degree
        self.threshold = threshold
        self.line_bytes = line_bytes
        self._table = {}  # pc -> StrideEntry
        self.stat_trained = 0
        self.stat_issued = 0

    def train(self, pc, addr):
        """Observe a demand access; returns a list of prefetch addresses."""
        self.stat_trained += 1
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_entries:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = StrideEntry(addr)
            return []
        stride = addr - entry.last_addr
        if stride == entry.stride and stride != 0:
            entry.confidence = min(entry.confidence + 1, 3)
        else:
            entry.confidence = max(entry.confidence - 1, 0)
            entry.stride = stride
        entry.last_addr = addr
        if entry.confidence >= self.threshold and entry.stride:
            prefetches = [
                addr + entry.stride * (i + 1) for i in range(self.degree)
            ]
            self.stat_issued += len(prefetches)
            return [a for a in prefetches if a >= 0]
        return []
