"""Miss status holding registers.

One MSHR per outstanding line-granularity miss; secondary misses to the same
line register as extra targets on the primary entry.  InvisiSpec restricts
which requests may merge into an existing MSHR (a load may never reuse state
allocated by a *younger* USL, Section VII); that policy check lives in the
core — the MSHR file just exposes allocation, target merging and completion.
"""

from __future__ import annotations

from ..errors import SimulationError


class MSHREntry:
    """An outstanding miss for one cache line."""

    __slots__ = ("line_addr", "allocator_seq", "speculative", "targets", "issued_cycle")

    def __init__(self, line_addr, allocator_seq, speculative, issued_cycle):
        self.line_addr = line_addr
        #: Program-order sequence number of the instruction that allocated
        #: the entry; used for the "no reuse of younger USL state" rule.
        self.allocator_seq = allocator_seq
        self.speculative = speculative
        self.targets = []
        self.issued_cycle = issued_cycle

    def add_target(self, target):
        self.targets.append(target)


class MSHRFile:
    """Fixed-size pool of :class:`MSHREntry`."""

    def __init__(self, num_entries):
        self.num_entries = num_entries
        self._entries = {}  # line_addr -> MSHREntry
        self.stat_allocations = 0
        self.stat_merges = 0
        self.stat_full_stalls = 0

    def __len__(self):
        return len(self._entries)

    @property
    def full(self):
        return len(self._entries) >= self.num_entries

    def lookup(self, line_addr):
        return self._entries.get(line_addr)

    def allocate(self, line_addr, allocator_seq, speculative, cycle):
        if self.full:
            self.stat_full_stalls += 1
            return None
        if line_addr in self._entries:
            raise SimulationError(f"MSHR for 0x{line_addr:x} already allocated")
        entry = MSHREntry(line_addr, allocator_seq, speculative, cycle)
        self._entries[line_addr] = entry
        self.stat_allocations += 1
        return entry

    def merge(self, line_addr, target):
        """Attach a secondary miss to the in-flight entry."""
        entry = self._entries[line_addr]
        entry.add_target(target)
        self.stat_merges += 1
        return entry

    def complete(self, line_addr):
        """Remove and return the entry when its fill arrives."""
        entry = self._entries.pop(line_addr, None)
        if entry is None:
            raise SimulationError(f"completing absent MSHR 0x{line_addr:x}")
        return entry

    def discard(self, line_addr):
        """Drop an entry without completing it (squash of the allocator
        with no surviving targets)."""
        self._entries.pop(line_addr, None)

    def outstanding_lines(self):
        """Outstanding line addresses, sorted so scans are order-stable."""
        return sorted(self._entries.keys())
