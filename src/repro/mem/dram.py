"""Main-memory model.

A fixed round-trip latency (Table IV: 50 ns after the L2, i.e. 100 cycles at
2 GHz) plus a simple channel-occupancy model: each request occupies the
channel for ``burst_cycles``, so bursts of InvisiSpec double-accesses queue
up and the contention the paper reports for high-MPKI workloads (libquantum,
GemsFDTD) emerges rather than being assumed.
"""

from __future__ import annotations


class DRAMModel:
    """Single-channel DRAM with fixed access latency and burst occupancy."""

    def __init__(self, latency=100, burst_cycles=4, channels=1, faults=None):
        self.latency = latency
        self.burst_cycles = burst_cycles
        self.channels = channels
        self._busy_until = [0] * channels
        self.stat_accesses = 0
        self.stat_queue_cycles = 0
        #: Optional FaultInjector; consulted per access for ``dram.stall``.
        self.faults = faults
        self.stat_stalled = 0

    def access(self, now, line_addr=0):
        """Issue a request at cycle ``now``; returns the data-ready cycle."""
        self.stat_accesses += 1
        channel = line_addr % self.channels if self.channels > 1 else 0
        start = max(now, self._busy_until[channel])
        self.stat_queue_cycles += start - now
        self._busy_until[channel] = start + self.burst_cycles
        ready = start + self.latency
        if self.faults is not None:
            action = self.faults.fire("dram.stall")
            if action is not None:
                self.stat_stalled += 1
                ready += action.extra
        return ready

    def reset(self):
        self._busy_until = [0] * self.channels
