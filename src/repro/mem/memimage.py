"""Global memory image: the architectural contents of memory.

The simulator separates *where* a line physically lives (cache arrays,
speculative buffers) from *what* the coherent value of memory is.  A store
updates the image at the instant it performs (merges into the cache and
becomes observable, Section II-B); a load reads the image at the instant its
data response is generated.  Each line also carries a version counter so
InvisiSpec validations can cheaply detect "the bytes I read have since
changed" while still implementing true value-based comparison (an ABA
sequence of writes that restores the original bytes passes validation,
Section VI-E4).
"""

from __future__ import annotations

from ..errors import SimulationError


class MemoryImage:
    """Sparse byte-addressable memory with per-line version counters."""

    def __init__(self, address_space):
        self.space = address_space
        self._bytes = {}  # addr -> int in [0, 255]
        self._versions = {}  # line_addr -> int
        self.stat_reads = 0
        self.stat_writes = 0

    def read_byte(self, addr):
        return self._bytes.get(addr, 0)

    def read(self, addr, size):
        """Read ``size`` bytes little-endian as an unsigned integer."""
        self.stat_reads += 1
        value = 0
        for i in range(size):
            value |= self._bytes.get(addr + i, 0) << (8 * i)
        return value

    def read_bytes(self, addr, size):
        """Read ``size`` bytes as a tuple (used by validation comparison)."""
        return tuple(self._bytes.get(addr + i, 0) for i in range(size))

    def write(self, addr, size, value):
        """Write ``size`` bytes little-endian; bumps the line version(s)."""
        if value < 0:
            raise SimulationError(f"negative store value {value}")
        self.stat_writes += 1
        for i in range(size):
            self._bytes[addr + i] = (value >> (8 * i)) & 0xFF
        for line in self.space.lines_touched(addr, size):
            self._versions[line] = self._versions.get(line, 0) + 1

    def write_bytes(self, addr, data):
        """Write an iterable of byte values starting at ``addr``."""
        for i, byte in enumerate(data):
            self._bytes[addr + i] = byte & 0xFF
        for line in self.space.lines_touched(addr, max(len(data), 1)):
            self._versions[line] = self._versions.get(line, 0) + 1
        self.stat_writes += 1

    def line_version(self, line_addr):
        return self._versions.get(line_addr, 0)

    def snapshot(self, addr, size):
        """Capture ``(bytes, line_version)`` for a speculative read."""
        line = self.space.line_of(addr)
        return self.read_bytes(addr, size), self.line_version(line)

    def matches(self, addr, size, snapshot_bytes):
        """Value-based comparison used by InvisiSpec validation."""
        return self.read_bytes(addr, size) == tuple(snapshot_bytes)
