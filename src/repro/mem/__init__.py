"""Memory-system substrates: caches, MSHRs, write buffers, DRAM, TLB.

These structures are protocol-agnostic; the MESI coherence layer in
:mod:`repro.coherence` stores its line states inside :class:`CacheArray`
entries, and the cores in :mod:`repro.cpu` own the L1 instances.
"""

from .address import AddressSpace
from .cache import CacheArray, CacheLineEntry
from .dram import DRAMModel
from .memimage import MemoryImage
from .mshr import MSHRFile
from .prefetcher import StridePrefetcher
from .replacement import make_replacement_policy
from .tlb import DataTLB
from .writebuffer import WriteBuffer

__all__ = [
    "AddressSpace",
    "CacheArray",
    "CacheLineEntry",
    "DRAMModel",
    "MemoryImage",
    "MSHRFile",
    "StridePrefetcher",
    "make_replacement_policy",
    "DataTLB",
    "WriteBuffer",
]
