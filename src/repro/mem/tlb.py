"""Data TLB.

A fully-associative, LRU data TLB.  The TLB is part of InvisiSpec's threat
surface (Section III-B: "what entries live in the TLB"), so lookups take an
``update_state`` flag: a USL probing the TLB must not change replacement
state or access/dirty bits until its visibility point (Section VI-E3).
"""

from __future__ import annotations

from collections import OrderedDict


class TLBEntry:
    __slots__ = ("vpn", "accessed", "dirty")

    def __init__(self, vpn):
        self.vpn = vpn
        self.accessed = False
        self.dirty = False


class DataTLB:
    """Fully-associative LRU TLB over virtual page numbers."""

    def __init__(self, params):
        self.params = params
        self.entries = params.entries
        self._map = OrderedDict()  # vpn -> TLBEntry, MRU at the end
        self.stat_hits = 0
        self.stat_misses = 0
        self.stat_deferred_updates = 0

    def lookup(self, vpn, update_state=True, is_store=False):
        """Probe the TLB; returns ``True`` on hit.

        ``update_state=False`` models an unsafe speculative access: the hit
        is reported but no observable TLB state (LRU order, accessed/dirty
        bits) changes.
        """
        entry = self._map.get(vpn)
        if entry is None:
            self.stat_misses += 1
            return False
        self.stat_hits += 1
        if update_state:
            self._map.move_to_end(vpn)
            entry.accessed = True
            if is_store:
                entry.dirty = True
        else:
            self.stat_deferred_updates += 1
        return True

    def fill(self, vpn, is_store=False):
        """Install a translation after a page walk; returns evicted vpn."""
        evicted = None
        if vpn in self._map:
            self._map.move_to_end(vpn)
        else:
            if len(self._map) >= self.entries:
                evicted, _ = self._map.popitem(last=False)
            self._map[vpn] = TLBEntry(vpn)
        entry = self._map[vpn]
        entry.accessed = True
        if is_store:
            entry.dirty = True
        return evicted

    def touch(self, vpn, is_store=False):
        """Apply the deferred state update at a USL's visibility point."""
        entry = self._map.get(vpn)
        if entry is None:
            return False
        self._map.move_to_end(vpn)
        entry.accessed = True
        if is_store:
            entry.dirty = True
        return True

    def contains(self, vpn):
        return vpn in self._map

    def resident_vpns(self):
        """Current TLB contents in LRU→MRU order (attack receivers)."""
        return list(self._map.keys())

    def flush(self):
        self._map.clear()
