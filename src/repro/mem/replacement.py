"""Cache replacement policies: LRU, random, and tree-PLRU.

A policy instance manages one cache set of ``ways`` slots.  Slots are
identified by way index; the cache array calls :meth:`touch` on every access
and :meth:`victim` when it needs to evict.
"""

from __future__ import annotations

import random

from ..errors import ConfigError


class LRUPolicy:
    """True least-recently-used ordering."""

    __slots__ = ("_order",)

    def __init__(self, ways):
        self._order = list(range(ways))  # index 0 = LRU, last = MRU

    def touch(self, way):
        order = self._order
        order.remove(way)
        order.append(way)

    def victim(self):
        return self._order[0]

    def reset(self, way):
        """Make ``way`` the LRU candidate (used on invalidation)."""
        order = self._order
        order.remove(way)
        order.insert(0, way)

    def state_digest(self):
        """Hashable snapshot of the recency order (sanitizer fingerprints)."""
        return tuple(self._order)


class RandomPolicy:
    """Random victim selection with a deterministic seeded stream."""

    __slots__ = ("_ways", "_rng")

    def __init__(self, ways, seed=0):
        self._ways = ways
        self._rng = random.Random(seed)

    def touch(self, way):
        pass

    def victim(self):
        return self._rng.randrange(self._ways)

    def reset(self, way):
        pass

    def state_digest(self):
        # Random replacement keeps no access history: touch() is a no-op,
        # so there is no per-access state for a fingerprint to protect.
        return None


class TreePLRUPolicy:
    """Tree pseudo-LRU over a power-of-two number of ways."""

    __slots__ = ("_ways", "_bits")

    def __init__(self, ways):
        if ways & (ways - 1):
            raise ConfigError(f"tree-PLRU needs power-of-two ways, got {ways}")
        self._ways = ways
        self._bits = [0] * max(ways - 1, 1)

    def touch(self, way):
        # Walk from the root, flipping each node to point away from `way`.
        node = 0
        lo, hi = 0, self._ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # point at upper half next time
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0  # point at lower half next time
                node = 2 * node + 2
                lo = mid

    def victim(self):
        node = 0
        lo, hi = 0, self._ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node]:
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        return lo

    def reset(self, way):
        # Point the tree toward `way` so it becomes the next victim.
        node = 0
        lo, hi = 0, self._ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 0
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 1
                node = 2 * node + 2
                lo = mid

    def state_digest(self):
        """Hashable snapshot of the tree bits (sanitizer fingerprints)."""
        return tuple(self._bits)


def make_replacement_policy(name, ways, seed=0):
    """Factory: ``"lru"``, ``"random"`` or ``"plru"``."""
    if name == "lru":
        return LRUPolicy(ways)
    if name == "random":
        return RandomPolicy(ways, seed=seed)
    if name == "plru":
        return TreePLRUPolicy(ways)
    raise ConfigError(f"unknown replacement policy {name!r}")
