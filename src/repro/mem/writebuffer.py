"""Post-retirement write buffer.

Retired stores sit here until the consistency model lets them merge into the
cache (perform).  TSO requires FIFO draining with a single store performing
at a time (store→store order); RC may drain out of order and overlap
(Section II-B).
"""

from __future__ import annotations

from collections import deque

from ..errors import SimulationError


class WriteBufferEntry:
    __slots__ = ("addr", "size", "value", "seq", "inflight", "is_release")

    def __init__(self, addr, size, value, seq, is_release=False):
        self.addr = addr
        self.size = size
        self.value = value
        self.seq = seq
        self.inflight = False
        self.is_release = is_release


class WriteBuffer:
    """Bounded store buffer with FIFO (TSO) or relaxed (RC) drain order."""

    def __init__(self, num_entries, fifo=True, max_inflight=None):
        self.num_entries = num_entries
        self.fifo = fifo
        self.max_inflight = max_inflight or (1 if fifo else num_entries)
        self._entries = deque()
        self.stat_enqueued = 0
        self.stat_drained = 0

    def __len__(self):
        return len(self._entries)

    @property
    def full(self):
        return len(self._entries) >= self.num_entries

    @property
    def empty(self):
        return not self._entries

    def push(self, addr, size, value, seq, is_release=False):
        if self.full:
            raise SimulationError("write buffer overflow; caller must check full")
        entry = WriteBufferEntry(addr, size, value, seq, is_release)
        self._entries.append(entry)
        self.stat_enqueued += 1
        return entry

    def drain_candidates(self):
        """Entries eligible to issue a store transaction now.

        FIFO mode: only the head, and only if nothing is in flight.
        Relaxed mode: any non-inflight entry, up to ``max_inflight``,
        except that a release must wait for all earlier entries to leave.
        """
        inflight = sum(1 for e in self._entries if e.inflight)
        if inflight >= self.max_inflight:
            return []
        if self.fifo:
            head = self._entries[0] if self._entries else None
            if head is not None and not head.inflight:
                return [head]
            return []
        candidates = []
        for i, entry in enumerate(self._entries):
            if entry.inflight:
                continue
            if entry.is_release and i > 0:
                continue  # releases drain only once they reach the head
            if self._older_overlap(i, entry):
                continue  # same-address stores perform in order (coherence)
            candidates.append(entry)
            if inflight + len(candidates) >= self.max_inflight:
                break
        return candidates

    def _older_overlap(self, index, entry):
        """True if an earlier buffered store overlaps this entry's bytes."""
        for j, other in enumerate(self._entries):
            if j >= index:
                return False
            if (
                other.addr < entry.addr + entry.size
                and entry.addr < other.addr + other.size
            ):
                return True
        return False

    def mark_inflight(self, entry):
        entry.inflight = True

    def retire_entry(self, entry):
        """Remove a performed store from the buffer."""
        try:
            self._entries.remove(entry)
        except ValueError:
            raise SimulationError("retiring store not present in write buffer")
        self.stat_drained += 1

    def pending_store_to(self, addr, size, space):
        """Youngest buffered store overlapping [addr, addr+size), if any.

        Used for store→load forwarding from the post-retirement buffer.
        """
        for entry in reversed(self._entries):
            if entry.addr < addr + size and addr < entry.addr + entry.size:
                return entry
        return None

    def entries(self):
        return list(self._entries)
