"""Out-of-order core: ISA, branch prediction, ROB, LSQ, and the pipeline."""

from .core import Core
from .isa import MicroOp, OpKind

__all__ = ["Core", "MicroOp", "OpKind"]
