"""Instruction-fetch traffic model.

The paper models only the *data* cache hierarchy but notes (Section IX-B)
that its simulations still fetch wrong-path instructions, and that the
fence configurations fetch *more* of them (branches resolve later), which
is why Fe-Sp/Fe-Fu network traffic ends up comparable to Base despite
executing fewer data accesses.  We reproduce that effect with a lightweight
model: each fetched micro-op contributes an L1-I miss at the workload's
characteristic rate, and every miss is an ordinary GetS line transfer on
the NoC.  Misses are spread deterministically (fractional accumulation), so
runs are reproducible.
"""

from __future__ import annotations

from ..network.noc import TrafficCategory


class ICacheTrafficModel:
    """Accounts I-fetch NoC traffic; no timing impact."""

    def __init__(self, noc, core_node, bank_node, miss_rate):
        self.noc = noc
        self.core_node = core_node
        self.bank_node = bank_node
        self.miss_rate = miss_rate
        self._accumulator = 0.0
        self.stat_misses = 0

    def on_fetch(self, num_ops):
        if not self.miss_rate or not num_ops:
            return
        self._accumulator += num_ops * self.miss_rate
        while self._accumulator >= 1.0:
            self._accumulator -= 1.0
            self.stat_misses += 1
            self.noc.send(self.core_node, self.bank_node, False, TrafficCategory.NORMAL)
            self.noc.send(self.bank_node, self.core_node, True, TrafficCategory.NORMAL)
