"""Reorder buffer.

Instructions enter at dispatch in program order, complete out of order, and
retire in order from the head (Section II-A).  The entry is the central
per-instruction record: dependence wake-up counts, execution state, branch
prediction bookkeeping, and pointers into the LQ/SQ.
"""

from __future__ import annotations

from collections import deque

from ..errors import SimulationError


class ROBEntry:
    """One in-flight instruction."""

    __slots__ = (
        "op",
        "seq",
        "stream_pos",
        "is_wrong_path",
        "state",  # 'waiting' | 'ready' | 'executing' | 'completed'
        "pending_deps",
        "dispatch_cycle",
        "complete_cycle",
        "squashed",
        "lq_entry",
        "sq_entry",
        "predicted_taken",
        "predictor_checkpoint",
        "resolved",
        "mispredicted",
        "value",
        "addr",
        "fence_done",
    )

    def __init__(self, op, seq, stream_pos, is_wrong_path, dispatch_cycle):
        self.op = op
        self.seq = seq
        self.stream_pos = stream_pos
        self.is_wrong_path = is_wrong_path
        self.state = "waiting"
        self.pending_deps = 0
        self.dispatch_cycle = dispatch_cycle
        self.complete_cycle = None
        self.squashed = False
        self.lq_entry = None
        self.sq_entry = None
        self.predicted_taken = None
        self.predictor_checkpoint = None
        self.resolved = False
        self.mispredicted = False
        self.value = 0
        self.addr = None
        self.fence_done = False

    @property
    def completed(self):
        return self.state == "completed"

    def __repr__(self):
        return (
            f"ROBEntry(seq={self.seq}, {self.op.kind.value}, {self.state}"
            f"{', WP' if self.is_wrong_path else ''})"
        )


class ReorderBuffer:
    """Bounded in-order queue of :class:`ROBEntry`."""

    def __init__(self, capacity):
        self.capacity = capacity
        self._entries = deque()

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def full(self):
        return len(self._entries) >= self.capacity

    @property
    def empty(self):
        return not self._entries

    def head(self):
        return self._entries[0] if self._entries else None

    def tail(self):
        return self._entries[-1] if self._entries else None

    def push(self, entry):
        if self.full:
            raise SimulationError("ROB overflow; caller must check full")
        self._entries.append(entry)

    def pop_head(self):
        if not self._entries:
            raise SimulationError("retiring from empty ROB")
        return self._entries.popleft()

    def squash_after(self, seq):
        """Remove and return every entry with ``entry.seq > seq``.

        Passing ``seq=-1`` flushes the whole ROB.  Returned entries are
        marked squashed, youngest last.
        """
        squashed = []
        while self._entries and self._entries[-1].seq > seq:
            entry = self._entries.pop()
            entry.squashed = True
            squashed.append(entry)
        return squashed

    def entries_older_than(self, seq):
        for entry in self._entries:
            if entry.seq >= seq:
                break
            yield entry

    def find(self, seq):
        for entry in self._entries:
            if entry.seq == seq:
                return entry
        return None
