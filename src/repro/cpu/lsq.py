"""Load queue and store queue.

The LQ mirrors the paper's Figure 3: each entry carries the status bits
Valid, Performed, State (E/V/C/N) and Prefetch, and maps one-to-one onto a
Speculative Buffer entry (the SB itself lives in
:mod:`repro.invisispec.sb`).  Entries are identified by a monotonically
increasing *virtual index*; ``index % capacity`` is the physical slot, so
allocating, retiring from the head, and squashing from the tail are pointer
moves — exactly the property the paper exploits for the SB design.
"""

from __future__ import annotations

from ..errors import SimulationError

#: LQ-entry State bits (Section VI-A1).
STATE_EXPOSURE = "E"  # requires an exposure at the visibility point
STATE_VALIDATION = "V"  # requires a validation at the visibility point
STATE_COMPLETE = "C"  # exposure or validation has completed
STATE_NORMAL = "N"  # invisible speculation not necessary
#: Extra state (this implementation): a USL whose D-TLB miss deferred it to
#: its visibility point (Section VI-E3); it becomes N when it issues.
STATE_DEFERRED = "D"


class LoadQueueEntry:
    """One in-flight load (or software prefetch)."""

    __slots__ = (
        "index",
        "rob",
        "addr",
        "size",
        "line_addr",
        "valid",
        "performed",
        "vstate",
        "prefetch",
        "issued",
        "visibility_issued",
        "visibility_done",
        "validation_inflight",
        "forwarded",
        "deferred_tlb",
        "epoch",
        "issue_cycle",
        "visibility_issue_cycle",
    )

    def __init__(self, index, rob_entry, epoch):
        self.index = index
        self.rob = rob_entry
        self.addr = None
        self.size = 0
        self.line_addr = None
        self.valid = True
        self.performed = False
        self.vstate = None  # one of the STATE_* constants once issued
        self.prefetch = rob_entry.op.kind.value == "prefetch"
        self.issued = False
        self.visibility_issued = False
        self.visibility_done = False
        self.validation_inflight = False
        self.forwarded = False
        self.deferred_tlb = False
        self.epoch = epoch
        self.issue_cycle = None
        self.visibility_issue_cycle = None

    @property
    def seq(self):
        return self.rob.seq

    @property
    def needs_visibility_action(self):
        """USL that has not yet issued its validation/exposure."""
        return (
            self.valid
            and self.vstate in (STATE_EXPOSURE, STATE_VALIDATION)
            and not self.visibility_issued
        )

    def __repr__(self):
        return (
            f"LQEntry(idx={self.index}, seq={self.seq}, addr={self.addr}, "
            f"state={self.vstate}, performed={self.performed})"
        )


class StoreQueueEntry:
    """One in-flight store (pre-commit)."""

    __slots__ = ("index", "rob", "addr", "size", "value", "addr_resolved")

    def __init__(self, index, rob_entry):
        self.index = index
        self.rob = rob_entry
        self.addr = None
        self.size = 0
        self.value = 0
        self.addr_resolved = False

    @property
    def seq(self):
        return self.rob.seq


class _CircularQueue:
    """Virtual-index circular queue shared by the LQ and SQ."""

    def __init__(self, capacity, name):
        self.capacity = capacity
        self.name = name
        self.head = 0  # oldest live virtual index
        self.tail = 0  # next virtual index to allocate
        self._slots = [None] * capacity

    def __len__(self):
        return self.tail - self.head

    @property
    def full(self):
        return len(self) >= self.capacity

    def slot(self, index):
        if not self.head <= index < self.tail:
            return None
        entry = self._slots[index % self.capacity]
        return entry

    def entries(self):
        """Live entries oldest-first."""
        for index in range(self.head, self.tail):
            entry = self._slots[index % self.capacity]
            if entry is not None:
                yield entry

    def _allocate_slot(self, entry):
        if self.full:
            raise SimulationError(f"{self.name} overflow; caller must check full")
        self._slots[self.tail % self.capacity] = entry
        self.tail += 1

    def retire_head(self):
        if not len(self):
            raise SimulationError(f"retiring from empty {self.name}")
        entry = self._slots[self.head % self.capacity]
        self._slots[self.head % self.capacity] = None
        self.head += 1
        return entry

    def squash_to(self, new_tail):
        """Drop entries with virtual index >= ``new_tail``; returns them."""
        dropped = []
        while self.tail > max(new_tail, self.head):
            self.tail -= 1
            slot = self.tail % self.capacity
            entry = self._slots[slot]
            if entry is not None:
                dropped.append(entry)
            self._slots[slot] = None
        return dropped


class LoadQueue(_CircularQueue):
    """The LQ; its virtual indices double as SB entry indices."""

    def __init__(self, capacity):
        super().__init__(capacity, "LQ")

    def allocate(self, rob_entry, epoch):
        entry = LoadQueueEntry(self.tail, rob_entry, epoch)
        self._allocate_slot(entry)
        rob_entry.lq_entry = entry
        return entry

    def loads_to_line(self, line_addr):
        """Live entries whose resolved address maps to ``line_addr``."""
        return [e for e in self.entries() if e.line_addr == line_addr]

    def older_pending_request(self, entry, line_addr):
        """Youngest *earlier* (program order) USL to the same line whose
        Spec-GetS will (or did) fill an SB entry — the SB-copy reuse case of
        Section V-E.  Never returns a younger load (Section VII), and never
        a deferred/normal load, which does not fill the SB."""
        best = None
        for other in self.entries():
            if other.index >= entry.index:
                break
            if (
                other.valid
                and other.issued
                and other.line_addr == line_addr
                and other.vstate in (STATE_EXPOSURE, STATE_VALIDATION)
                and not other.forwarded
            ):
                best = other
        return best


class StoreQueue(_CircularQueue):
    def __init__(self, capacity):
        super().__init__(capacity, "SQ")

    def allocate(self, rob_entry):
        entry = StoreQueueEntry(self.tail, rob_entry)
        self._allocate_slot(entry)
        rob_entry.sq_entry = entry
        return entry

    def forwarding_store(self, load_seq, addr, size):
        """Youngest older store that fully covers [addr, addr+size)."""
        best = None
        for entry in self.entries():
            if entry.seq >= load_seq:
                break
            if not entry.addr_resolved:
                continue
            if entry.addr <= addr and addr + size <= entry.addr + entry.size:
                best = entry
        return best

    def unresolved_older_than(self, load_seq):
        """True if an older store still has an unresolved address.

        A conventional core lets the load issue anyway (memory-dependence
        speculation) and squashes on a later alias — the Speculative Store
        Bypass surface of Section IV.
        """
        for entry in self.entries():
            if entry.seq >= load_seq:
                break
            if not entry.addr_resolved:
                return True
        return False
