"""Lazy min-seq trackers.

The visibility rules (Sections V-A1 and VIII) repeatedly ask questions of
the form "is there an instruction older than seq S that is still
<unresolved / exceptable / uncommitted / unvalidated>?".  Scanning the ROB
per query is O(ROB); instead each condition keeps a min-heap of candidate
entries with lazy deletion.  This is sound because every tracked condition
is *monotone*: once an entry stops satisfying it (or is squashed), it never
satisfies it again.
"""

from __future__ import annotations

import heapq


class LazyMinTracker:
    """Min-heap over ROB entries keyed by ``entry.seq``.

    ``is_active(entry)`` must be monotone-decreasing over an entry's
    lifetime.  Squashed entries are always inactive.
    """

    __slots__ = ("_heap", "_is_active")

    def __init__(self, is_active):
        self._heap = []
        self._is_active = is_active

    def push(self, entry):
        heapq.heappush(self._heap, (entry.seq, entry))

    def min_seq(self):
        """Smallest seq still active, or ``None``."""
        heap = self._heap
        while heap:
            _seq, entry = heap[0]
            if not entry.squashed and self._is_active(entry):
                return entry.seq
            heapq.heappop(heap)
        return None

    def __len__(self):
        return len(self._heap)
