"""Micro-op vocabulary of the simulated core.

The simulator is trace-driven: workload generators and attack programs
produce streams of :class:`MicroOp`.  Synthetic workload ops carry
precomputed addresses; attack programs instead provide ``addr_fn`` /
``compute_fn`` callables evaluated against a register environment, which is
what lets transient (wrong-path) instructions carry real data flow — e.g.
Spectre's ``B[64 * A[a]]`` where the second load's address depends on the
first load's (secret) value.
"""

from __future__ import annotations

import enum
import itertools


class OpKind(enum.Enum):
    ALU = "alu"
    FP = "fp"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    FENCE = "fence"
    ACQUIRE = "acquire"
    RELEASE = "release"
    PREFETCH = "prefetch"  # software prefetch (Section VI-B)
    EXCEPTION = "exception"  # op that raises when it reaches the ROB head
    NOP = "nop"

    @property
    def is_memory(self):
        return self in (OpKind.LOAD, OpKind.STORE, OpKind.PREFETCH)

    @property
    def is_fence_like(self):
        return self in (OpKind.FENCE, OpKind.ACQUIRE, OpKind.RELEASE)


_uid = itertools.count()


def reset_uids(start=0):
    """Restart MicroOp uid allocation (for reproducible program builds).

    Wrong-path arms are keyed by branch-op uid, so uids must be unique
    within any one trace/context.  Callers therefore reset only at the
    *start* of an independent program build (a specflow analysis, an
    evidence replay, a golden-report dump) — never between the phases of
    a live :class:`~repro.security.channel.AttackContext`, whose
    interactive trace still holds earlier uids.
    """
    global _uid
    _uid = itertools.count(start)


class MicroOp:
    """One dynamic instruction.

    Attributes
    ----------
    kind : OpKind
    pc : int — static instruction address (predictor/BTB index).
    addr : int or None — memory address for memory ops (precomputed traces).
    addr_fn : callable(env) -> int, or None — late address computation for
        program traces; evaluated when the op's operands are ready.
    size : int — access size in bytes.
    dst : hashable or None — register written by a load/ALU (program traces).
    compute_fn : callable(env) -> value, or None — ALU result computation.
    store_value : int — value written by a store.
    store_value_fn : callable(env) -> int, or None.
    latency : int — execution latency for ALU/FP/branch ops.
    deps : tuple of ints — distances (in dynamic ops) to earlier ops this
        one reads from; used for wake-up scheduling.  A dep to a retired op
        is trivially ready.
    taken : bool — architectural branch outcome.
    raises_exception : bool — op traps at the ROB head.
    label : str or None — debugging/attack annotation.
    taint : str or None — static taint-source label for repro.specflow:
        the value this op produces is secret/attacker-controlled data.
        Purely an analysis annotation; the pipeline never reads it.
    """

    __slots__ = (
        "uid",
        "kind",
        "pc",
        "addr",
        "addr_fn",
        "size",
        "dst",
        "compute_fn",
        "store_value",
        "store_value_fn",
        "latency",
        "deps",
        "taken",
        "raises_exception",
        "label",
        "taint",
    )

    def __init__(
        self,
        kind,
        pc=0,
        addr=None,
        addr_fn=None,
        size=8,
        dst=None,
        compute_fn=None,
        store_value=0,
        store_value_fn=None,
        latency=1,
        deps=(),
        taken=False,
        raises_exception=False,
        label=None,
        taint=None,
    ):
        self.uid = next(_uid)
        self.kind = kind
        self.pc = pc
        self.addr = addr
        self.addr_fn = addr_fn
        self.size = size
        self.dst = dst
        self.compute_fn = compute_fn
        self.store_value = store_value
        self.store_value_fn = store_value_fn
        self.latency = latency
        self.deps = deps
        self.taken = taken
        self.raises_exception = raises_exception
        self.label = label
        self.taint = taint

    def __repr__(self):
        extra = f" @0x{self.addr:x}" if self.addr is not None else ""
        tag = f" [{self.label}]" if self.label else ""
        return f"MicroOp({self.kind.value}, pc=0x{self.pc:x}{extra}{tag})"


# ------------------------------------------------------- expression IR
#
# Attack programs historically computed addresses with ad-hoc lambdas,
# which cannot cross a process boundary.  Randomized fuzz programs
# (repro.fuzz) must be dispatched to supervisor workers, so their
# address/compute functions are built from this tiny declarative IR
# instead: an Expr is plain data (nested tuples), pickles and
# JSON-round-trips, and *evaluates itself* against any register
# environment — the concrete pipeline env and specflow's abstract
# TaintEnv alike, since it only uses overloadable operators.

#: node tag -> binary operator.  Arithmetic evaluation never branches on
#: values, so AbstractValue taint flows through unchanged; the comparison
#: tags (and the ``select`` node built on them) *do* branch — under
#: specflow's TaintEnv they yield AbstractBools that trigger path
#: splitting rather than a concrete outcome.
_EXPR_BINOPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "shr": lambda a, b: a >> b,
    "mod": lambda a, b: a % b,
}

#: comparison tag -> operator; results are used as select conditions.
_EXPR_CMPOPS = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


class ExprError(ValueError):
    """An expression tree is malformed or not serializable."""


class Expr:
    """A picklable address/compute function over a register environment.

    Nodes are tuples:

    * ``("const", k)`` — the integer ``k``;
    * ``("reg", name, default)`` — ``env.get(name, default)``;
    * ``("neg", a)`` / ``("inv", a)`` — unary minus / bitwise not;
    * ``(op, a, b)`` for ``op`` in ``add sub mul and or xor shl shr mod``;
    * ``(cmp, a, b)`` for ``cmp`` in ``lt le gt ge eq ne`` — a 0/1 flag;
    * ``("select", c, a, b)`` — ``a`` if ``c`` is truthy else ``b``
      (branchy address math, e.g. clamp-to-bound gadgets).

    Calling the Expr evaluates the tree; passing specflow's ``TaintEnv``
    makes the same tree its own abstract transfer function.
    """

    __slots__ = ("node",)

    def __init__(self, node):
        self.node = self._freeze(node)

    @classmethod
    def _freeze(cls, node):
        if not isinstance(node, (tuple, list)) or not node:
            raise ExprError(f"malformed expression node: {node!r}")
        tag = node[0]
        if tag == "const":
            if len(node) != 2 or not isinstance(node[1], int):
                raise ExprError(f"malformed const node: {node!r}")
            return ("const", node[1])
        if tag == "reg":
            if (
                len(node) != 3
                or not isinstance(node[1], str)
                or not isinstance(node[2], int)
            ):
                raise ExprError(f"malformed reg node: {node!r}")
            return ("reg", node[1], node[2])
        if tag in ("neg", "inv"):
            if len(node) != 2:
                raise ExprError(f"malformed unary node: {node!r}")
            return (tag, cls._freeze(node[1]))
        if tag in _EXPR_BINOPS or tag in _EXPR_CMPOPS:
            if len(node) != 3:
                raise ExprError(f"malformed {tag} node: {node!r}")
            return (tag, cls._freeze(node[1]), cls._freeze(node[2]))
        if tag == "select":
            if len(node) != 4:
                raise ExprError(f"malformed select node: {node!r}")
            return (
                "select",
                cls._freeze(node[1]),
                cls._freeze(node[2]),
                cls._freeze(node[3]),
            )
        raise ExprError(f"unknown expression tag {tag!r}")

    def __call__(self, env):
        return self._eval(self.node, env)

    @classmethod
    def _eval(cls, node, env):
        tag = node[0]
        if tag == "const":
            return node[1]
        if tag == "reg":
            return env.get(node[1], node[2])
        if tag == "neg":
            return -cls._eval(node[1], env)
        if tag == "inv":
            return ~cls._eval(node[1], env)
        if tag == "select":
            # Truth-testing the condition is what forks abstract paths;
            # arms evaluate lazily so only the taken one runs.
            if cls._eval(node[1], env):
                return cls._eval(node[2], env)
            return cls._eval(node[3], env)
        if tag in _EXPR_CMPOPS:
            flag = _EXPR_CMPOPS[tag](
                cls._eval(node[1], env), cls._eval(node[2], env)
            )
            return 1 if flag else 0
        return _EXPR_BINOPS[tag](
            cls._eval(node[1], env), cls._eval(node[2], env)
        )

    # The tree is plain data, so JSON round-trips via nested lists.

    def to_json(self):
        return self._jsonify(self.node)

    @classmethod
    def _jsonify(cls, node):
        return [
            cls._jsonify(part) if isinstance(part, tuple) else part
            for part in node
        ]

    @classmethod
    def from_json(cls, data):
        return cls(cls._detuple(data))

    @classmethod
    def _detuple(cls, data):
        if isinstance(data, list):
            return tuple(cls._detuple(part) for part in data)
        return data

    def __eq__(self, other):
        return isinstance(other, Expr) and self.node == other.node

    def __hash__(self):
        return hash(self.node)

    def __repr__(self):
        return f"Expr({self.node!r})"


# --------------------------------------------- program serialization
#
# Cross-process program dispatch (the repro.fuzz campaign ships programs
# to supervisor workers) and the content-addressed triage corpus both
# need MicroOp programs as plain data.  Serialization is total for ops
# whose callables are Expr (or absent); an op carrying an opaque lambda
# is rejected loudly rather than silently dropped.

#: MicroOp fields serialized verbatim (defaults omitted for compactness).
_OP_FIELD_DEFAULTS = (
    ("addr", None),
    ("size", 8),
    ("dst", None),
    ("store_value", 0),
    ("latency", 1),
    ("taken", False),
    ("raises_exception", False),
    ("label", None),
    ("taint", None),
)
_OP_EXPR_FIELDS = ("addr_fn", "compute_fn", "store_value_fn")


def op_to_dict(op):
    """One MicroOp as a JSON-able dict (uid included, Expr fns inlined)."""
    data = {"uid": op.uid, "kind": op.kind.value, "pc": op.pc}
    for field, default in _OP_FIELD_DEFAULTS:
        value = getattr(op, field)
        if value != default:
            data[field] = value
    if op.deps:
        data["deps"] = list(op.deps)
    for field in _OP_EXPR_FIELDS:
        fn = getattr(op, field)
        if fn is None:
            continue
        if not isinstance(fn, Expr):
            raise ExprError(
                f"cannot serialize {field} of {op!r}: {type(fn).__name__} "
                f"is not an Expr (opaque callables cannot cross processes)"
            )
        data[field] = fn.to_json()
    return data


def op_from_dict(data):
    """Rebuild a MicroOp; its uid is restored verbatim from ``data``."""
    kwargs = {"pc": data["pc"]}
    for field, default in _OP_FIELD_DEFAULTS:
        kwargs[field] = data.get(field, default)
    kwargs["deps"] = tuple(data.get("deps", ()))
    for field in _OP_EXPR_FIELDS:
        if field in data:
            kwargs[field] = Expr.from_json(data[field])
    op = MicroOp(OpKind(data["kind"]), **kwargs)
    op.uid = data["uid"]
    return op


def serialize_program(ops, wrong_paths=None):
    """``(ops, wrong_paths)`` as one JSON-able dict.

    Wrong-path arms are keyed by the owner op's uid (stringified for
    JSON); uids are stored per op so a deserialized program replays
    bit-identically — arm keys keep resolving after the round trip.
    """
    return {
        "ops": [op_to_dict(op) for op in ops],
        "wrong_paths": {
            str(uid): [op_to_dict(op) for op in arm]
            for uid, arm in sorted((wrong_paths or {}).items())
        },
    }


def deserialize_program(data, fresh_uids=False):
    """Rebuild ``(ops, wrong_paths)`` from :func:`serialize_program` data.

    With ``fresh_uids=False`` every op keeps its stored uid and the
    global counter is advanced past the largest one, so later ops cannot
    collide — a worker-side rebuild is bit-identical to the original.
    With ``fresh_uids=True`` all ops draw new uids from the counter (arm
    keys are remapped): used to replay the same phase several times into
    one live trace, e.g. predictor-training rounds.
    """
    global _uid
    ops = [op_from_dict(entry) for entry in data["ops"]]
    wrong_paths = {
        int(uid): [op_from_dict(entry) for entry in arm]
        for uid, arm in data.get("wrong_paths", {}).items()
    }
    if fresh_uids:
        remap = {}
        for op in ops:
            old = op.uid
            op.uid = next(_uid)
            remap[old] = op.uid
        fresh_wrong = {}
        for uid, arm in wrong_paths.items():
            for op in arm:
                op.uid = next(_uid)
            fresh_wrong[remap.get(uid, uid)] = arm
        return ops, fresh_wrong
    top = max(
        [op.uid for op in ops]
        + [op.uid for arm in wrong_paths.values() for op in arm],
        default=-1,
    )
    current = next(_uid)
    if current <= top:
        _uid = itertools.count(top + 1)
    else:
        _uid = itertools.count(current)
    return ops, wrong_paths


def alu(pc=0, latency=1, deps=(), dst=None, compute_fn=None, label=None):
    return MicroOp(
        OpKind.ALU, pc=pc, latency=latency, deps=deps, dst=dst,
        compute_fn=compute_fn, label=label,
    )


def load(pc=0, addr=None, addr_fn=None, size=8, deps=(), dst=None, label=None,
         taint=None):
    return MicroOp(
        OpKind.LOAD, pc=pc, addr=addr, addr_fn=addr_fn, size=size, deps=deps,
        dst=dst, label=label, taint=taint,
    )


def store(pc=0, addr=None, addr_fn=None, size=8, value=0, value_fn=None,
          deps=(), label=None):
    return MicroOp(
        OpKind.STORE, pc=pc, addr=addr, addr_fn=addr_fn, size=size,
        store_value=value, store_value_fn=value_fn, deps=deps, label=label,
    )


def branch(pc=0, taken=False, deps=(), latency=2, label=None):
    return MicroOp(
        OpKind.BRANCH, pc=pc, taken=taken, deps=deps, latency=latency,
        label=label,
    )


def fence(pc=0, label=None):
    return MicroOp(OpKind.FENCE, pc=pc, label=label)
