"""Micro-op vocabulary of the simulated core.

The simulator is trace-driven: workload generators and attack programs
produce streams of :class:`MicroOp`.  Synthetic workload ops carry
precomputed addresses; attack programs instead provide ``addr_fn`` /
``compute_fn`` callables evaluated against a register environment, which is
what lets transient (wrong-path) instructions carry real data flow — e.g.
Spectre's ``B[64 * A[a]]`` where the second load's address depends on the
first load's (secret) value.
"""

from __future__ import annotations

import enum
import itertools


class OpKind(enum.Enum):
    ALU = "alu"
    FP = "fp"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    FENCE = "fence"
    ACQUIRE = "acquire"
    RELEASE = "release"
    PREFETCH = "prefetch"  # software prefetch (Section VI-B)
    EXCEPTION = "exception"  # op that raises when it reaches the ROB head
    NOP = "nop"

    @property
    def is_memory(self):
        return self in (OpKind.LOAD, OpKind.STORE, OpKind.PREFETCH)

    @property
    def is_fence_like(self):
        return self in (OpKind.FENCE, OpKind.ACQUIRE, OpKind.RELEASE)


_uid = itertools.count()


def reset_uids(start=0):
    """Restart MicroOp uid allocation (for reproducible program builds).

    Wrong-path arms are keyed by branch-op uid, so uids must be unique
    within any one trace/context.  Callers therefore reset only at the
    *start* of an independent program build (a specflow analysis, an
    evidence replay, a golden-report dump) — never between the phases of
    a live :class:`~repro.security.channel.AttackContext`, whose
    interactive trace still holds earlier uids.
    """
    global _uid
    _uid = itertools.count(start)


class MicroOp:
    """One dynamic instruction.

    Attributes
    ----------
    kind : OpKind
    pc : int — static instruction address (predictor/BTB index).
    addr : int or None — memory address for memory ops (precomputed traces).
    addr_fn : callable(env) -> int, or None — late address computation for
        program traces; evaluated when the op's operands are ready.
    size : int — access size in bytes.
    dst : hashable or None — register written by a load/ALU (program traces).
    compute_fn : callable(env) -> value, or None — ALU result computation.
    store_value : int — value written by a store.
    store_value_fn : callable(env) -> int, or None.
    latency : int — execution latency for ALU/FP/branch ops.
    deps : tuple of ints — distances (in dynamic ops) to earlier ops this
        one reads from; used for wake-up scheduling.  A dep to a retired op
        is trivially ready.
    taken : bool — architectural branch outcome.
    raises_exception : bool — op traps at the ROB head.
    label : str or None — debugging/attack annotation.
    taint : str or None — static taint-source label for repro.specflow:
        the value this op produces is secret/attacker-controlled data.
        Purely an analysis annotation; the pipeline never reads it.
    """

    __slots__ = (
        "uid",
        "kind",
        "pc",
        "addr",
        "addr_fn",
        "size",
        "dst",
        "compute_fn",
        "store_value",
        "store_value_fn",
        "latency",
        "deps",
        "taken",
        "raises_exception",
        "label",
        "taint",
    )

    def __init__(
        self,
        kind,
        pc=0,
        addr=None,
        addr_fn=None,
        size=8,
        dst=None,
        compute_fn=None,
        store_value=0,
        store_value_fn=None,
        latency=1,
        deps=(),
        taken=False,
        raises_exception=False,
        label=None,
        taint=None,
    ):
        self.uid = next(_uid)
        self.kind = kind
        self.pc = pc
        self.addr = addr
        self.addr_fn = addr_fn
        self.size = size
        self.dst = dst
        self.compute_fn = compute_fn
        self.store_value = store_value
        self.store_value_fn = store_value_fn
        self.latency = latency
        self.deps = deps
        self.taken = taken
        self.raises_exception = raises_exception
        self.label = label
        self.taint = taint

    def __repr__(self):
        extra = f" @0x{self.addr:x}" if self.addr is not None else ""
        tag = f" [{self.label}]" if self.label else ""
        return f"MicroOp({self.kind.value}, pc=0x{self.pc:x}{extra}{tag})"


def alu(pc=0, latency=1, deps=(), dst=None, compute_fn=None, label=None):
    return MicroOp(
        OpKind.ALU, pc=pc, latency=latency, deps=deps, dst=dst,
        compute_fn=compute_fn, label=label,
    )


def load(pc=0, addr=None, addr_fn=None, size=8, deps=(), dst=None, label=None,
         taint=None):
    return MicroOp(
        OpKind.LOAD, pc=pc, addr=addr, addr_fn=addr_fn, size=size, deps=deps,
        dst=dst, label=label, taint=taint,
    )


def store(pc=0, addr=None, addr_fn=None, size=8, value=0, value_fn=None,
          deps=(), label=None):
    return MicroOp(
        OpKind.STORE, pc=pc, addr=addr, addr_fn=addr_fn, size=size,
        store_value=value, store_value_fn=value_fn, deps=deps, label=label,
    )


def branch(pc=0, taken=False, deps=(), latency=2, label=None):
    return MicroOp(
        OpKind.BRANCH, pc=pc, taken=taken, deps=deps, latency=latency,
        label=label,
    )


def fence(pc=0, label=None):
    return MicroOp(OpKind.FENCE, pc=pc, label=label)
