"""Instruction stream interfaces.

A :class:`TraceSource` produces the committed (correct-path) instruction
stream plus, for any branch, a *wrong-path* stream: the transient
instructions the core fetches while a mispredicted branch is unresolved.
Wrong-path instructions are first-class — InvisiSpec's entire subject is
their side effects.

:class:`ReplayStream` wraps a source with the squash/replay bookkeeping the
core needs: fetched-but-unretired ops are kept by stream position so a
squash can rewind and re-fetch the identical ops.
"""

from __future__ import annotations

from ..errors import WorkloadError


class TraceSource:
    """Abstract instruction source for one hardware thread."""

    def next_op(self):
        """Next correct-path MicroOp, or ``None`` when the program ends."""
        raise NotImplementedError

    def wrong_path_op(self, branch_op, index):
        """``index``-th transient op fetched past a mispredicted branch.

        Returns ``None`` to stop supplying wrong-path work (the frontend
        then idles until the branch resolves).
        """
        return None


class ProgramTrace(TraceSource):
    """Explicit program: a list of ops plus per-branch wrong-path arms.

    ``wrong_paths`` maps a branch op's ``uid`` to the list of ops fetched
    when that branch is mispredicted — i.e. the *other* arm of the branch.
    This is how attack programs express the transient sequences of Figure 1.
    """

    def __init__(self, ops, wrong_paths=None):
        self._ops = list(ops)
        self._pos = 0
        self._wrong_paths = dict(wrong_paths or {})

    def next_op(self):
        if self._pos >= len(self._ops):
            return None
        op = self._ops[self._pos]
        self._pos += 1
        return op

    def wrong_path_op(self, branch_op, index):
        arm = self._wrong_paths.get(branch_op.uid)
        if arm is None or index >= len(arm):
            return None
        return arm[index]


class InteractiveTrace(TraceSource):
    """A trace that can be fed incrementally between simulation phases.

    Attack experiments run in phases on persistent cores (train the
    predictor, flush, trigger the victim, scan): each phase feeds more ops,
    reopens the core, and runs the kernel until it idles again.
    """

    def __init__(self):
        self._ops = []
        self._pos = 0
        self._wrong_paths = {}

    def feed(self, ops, wrong_paths=None):
        """Append ops (and wrong-path arms keyed by op uid) to the stream."""
        self._ops.extend(ops)
        if wrong_paths:
            self._wrong_paths.update(wrong_paths)

    def next_op(self):
        if self._pos >= len(self._ops):
            return None
        op = self._ops[self._pos]
        self._pos += 1
        return op

    def wrong_path_op(self, branch_op, index):
        arm = self._wrong_paths.get(branch_op.uid)
        if arm is None or index >= len(arm):
            return None
        return arm[index]


class ReplayStream:
    """Squash-aware fetch stream over a :class:`TraceSource`.

    Correct-path ops get consecutive stream positions.  The stream keeps
    every op between the oldest unretired position and the fetch point so a
    squash can rewind to any unretired position and the core re-fetches
    byte-identical ops (same uids, same addresses).
    """

    def __init__(self, source):
        self.source = source
        self._buffer = {}  # stream position -> MicroOp
        self._fetch_pos = 0
        self._retire_pos = 0  # positions < retire_pos are retired
        self._exhausted = False

    @property
    def retire_pos(self):
        """Oldest unretired stream position."""
        return self._retire_pos

    @property
    def exhausted(self):
        """True once the source ended and no buffered op remains unfetched."""
        return self._exhausted and self._fetch_pos not in self._buffer

    def fetch(self):
        """Return ``(stream_pos, op)`` for the next correct-path op."""
        pos = self._fetch_pos
        op = self._buffer.get(pos)
        if op is None:
            if self._exhausted:
                return None
            op = self.source.next_op()
            if op is None:
                self._exhausted = True
                return None
            self._buffer[pos] = op
        self._fetch_pos = pos + 1
        return pos, op

    def rewind_to(self, pos):
        """Resume fetching at stream position ``pos`` (after a squash)."""
        if pos < self._retire_pos:
            raise WorkloadError(
                f"cannot rewind to retired position {pos} (< {self._retire_pos})"
            )
        self._fetch_pos = pos

    def retire(self, pos):
        """Mark position ``pos`` retired; frees replay storage."""
        if pos != self._retire_pos:
            raise WorkloadError(
                f"retiring position {pos}, expected {self._retire_pos}"
            )
        self._buffer.pop(pos, None)
        self._retire_pos = pos + 1

    def wrong_path_op(self, branch_op, index):
        return self.source.wrong_path_op(branch_op, index)

    def reopen(self):
        """Clear the end-of-source latch after the source grew."""
        self._exhausted = False
