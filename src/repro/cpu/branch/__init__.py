"""Branch prediction: tournament predictor, BTB, and return address stack."""

from .btb import BTB
from .ras import ReturnAddressStack
from .tournament import TournamentPredictor

__all__ = ["BTB", "ReturnAddressStack", "TournamentPredictor"]
