"""Branch target buffer: direct-mapped PC -> target store (4096 entries)."""

from __future__ import annotations


class BTB:
    """Direct-mapped branch target buffer with partial tags."""

    def __init__(self, entries=4096):
        self.entries = entries
        self._tags = [None] * entries
        self._targets = [0] * entries
        self.stat_hits = 0
        self.stat_misses = 0

    def _index(self, pc):
        return (pc >> 2) % self.entries

    def lookup(self, pc):
        """Predicted target for ``pc``, or ``None`` on a BTB miss."""
        idx = self._index(pc)
        if self._tags[idx] == pc:
            self.stat_hits += 1
            return self._targets[idx]
        self.stat_misses += 1
        return None

    def update(self, pc, target):
        idx = self._index(pc)
        self._tags[idx] = pc
        self._targets[idx] = target

    def flush(self):
        self._tags = [None] * self.entries
