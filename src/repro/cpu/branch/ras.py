"""Return address stack (16 entries, Table IV).

A circular overwrite stack with checkpoint/restore for squashes, as used by
real frontends (and abused by the return-mispredict Spectre variant, which
the threat model in Section IV lists).
"""

from __future__ import annotations


class ReturnAddressStack:
    """Fixed-depth circular RAS."""

    def __init__(self, entries=16):
        self.entries = entries
        self._stack = [0] * entries
        self._top = 0  # index of next free slot

    def push(self, return_pc):
        self._stack[self._top % self.entries] = return_pc
        self._top += 1

    def pop(self):
        """Predicted return target (0 if empty-ish; circular underflow wraps)."""
        self._top -= 1
        return self._stack[self._top % self.entries]

    def checkpoint(self):
        return (self._top, list(self._stack))

    def restore(self, checkpoint):
        self._top, stack = checkpoint
        self._stack = list(stack)

    @property
    def depth(self):
        return self._top
