"""Tournament branch predictor (Table IV).

A local predictor (per-PC history indexing 2-bit counters), a global
predictor (global history register indexing 2-bit counters), and a chooser
(2-bit counters selecting local vs global per global-history index).  This
is a real, trainable structure: attacker code mistrain it exactly as the
Spectre PoC requires, and its accuracy on the synthetic workloads sets each
app's squash rate.

Prediction is made at dispatch with the speculative global history; history
is repaired on a squash using the checkpoint taken at prediction time.
"""

from __future__ import annotations


def _saturate(counter, taken, maximum=3):
    if taken:
        return min(counter + 1, maximum)
    return max(counter - 1, 0)


class TournamentPredictor:
    """Local + global + chooser, gem5-style."""

    def __init__(
        self,
        local_history_entries=1024,
        local_history_bits=10,
        local_counter_entries=1024,
        global_history_bits=12,
    ):
        self.local_history_entries = local_history_entries
        self.local_history_bits = local_history_bits
        self.local_history_mask = (1 << local_history_bits) - 1
        self.local_counter_entries = local_counter_entries
        self.global_history_bits = global_history_bits
        self.global_history_mask = (1 << global_history_bits) - 1

        self._local_history = [0] * local_history_entries
        self._local_counters = [1] * local_counter_entries  # weakly not-taken
        self._global_counters = [1] * (1 << global_history_bits)
        self._choice_counters = [1] * (1 << global_history_bits)  # prefer local
        self.global_history = 0

        self.stat_lookups = 0
        self.stat_mispredicts = 0

    # ------------------------------------------------------------- indexing

    def _local_history_index(self, pc):
        return (pc >> 2) % self.local_history_entries

    def _local_counter_index(self, pc):
        history = self._local_history[self._local_history_index(pc)]
        return history % self.local_counter_entries

    # ------------------------------------------------------------ interface

    def predict(self, pc):
        """Predict direction; returns ``(taken, checkpoint)``.

        The checkpoint captures the speculative global history so it can be
        restored when the branch squashes.
        """
        self.stat_lookups += 1
        local_taken = self._local_counters[self._local_counter_index(pc)] >= 2
        global_taken = self._global_counters[self.global_history] >= 2
        use_global = self._choice_counters[self.global_history] >= 2
        taken = global_taken if use_global else local_taken
        checkpoint = (self.global_history, local_taken, global_taken)
        # Speculatively update global history with the prediction.
        self.global_history = (
            (self.global_history << 1) | int(taken)
        ) & self.global_history_mask
        return taken, checkpoint

    def update(self, pc, taken, checkpoint, mispredicted):
        """Train on the architectural outcome at branch resolution."""
        history_at_predict, local_taken, global_taken = checkpoint
        # Chooser trains toward whichever component was right.
        if local_taken != global_taken:
            self._choice_counters[history_at_predict] = _saturate(
                self._choice_counters[history_at_predict], global_taken == taken
            )
        self._global_counters[history_at_predict] = _saturate(
            self._global_counters[history_at_predict], taken
        )
        lci = self._local_counter_index(pc)
        self._local_counters[lci] = _saturate(self._local_counters[lci], taken)
        lhi = self._local_history_index(pc)
        self._local_history[lhi] = (
            (self._local_history[lhi] << 1) | int(taken)
        ) & self.local_history_mask
        if mispredicted:
            self.stat_mispredicts += 1
            # Repair global history: redo the shift with the real outcome.
            self.global_history = (
                (history_at_predict << 1) | int(taken)
            ) & self.global_history_mask

    def squash_restore(self, checkpoint):
        """Restore speculative history for squashed-but-unresolved branches."""
        history_at_predict, _lt, _gt = checkpoint
        self.global_history = history_at_predict

    @property
    def accuracy(self):
        if not self.stat_lookups:
            return 1.0
        return 1.0 - self.stat_mispredicts / self.stat_lookups
