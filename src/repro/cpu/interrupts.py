"""Timer interrupts and InvisiSpec's interrupt-delay window (Section VI-D).

Interrupts squash the whole ROB, so they are one of the Futuristic-model
squash sources (Table I).  IS-Future must delay interrupts from the moment
a USL becomes speculative non-squashable until the load reaches the ROB
head; the hardware does this "automatically, transparently and for very
short periods", keeping a minimum enabled window so interrupts never
starve.
"""

from __future__ import annotations


class InterruptUnit:
    """Periodic timer interrupt with a short hardware-disable window."""

    def __init__(self, interval, min_enabled_cycles=64):
        self.interval = interval  # 0 disables the timer entirely
        self.min_enabled_cycles = min_enabled_cycles
        self.next_at = interval if interval else None
        self.disabled = False
        self.pending = False
        self._enabled_since = 0
        self.stat_fired = 0
        self.stat_delayed = 0

    def should_fire(self, now):
        """True if an interrupt must squash the pipeline this cycle."""
        if self.next_at is None:
            return False
        if now >= self.next_at:
            if self.disabled:
                if not self.pending:
                    self.pending = True
                    self.stat_delayed += 1
                return False
            self.stat_fired += 1
            self.pending = False
            while self.next_at <= now:
                self.next_at += self.interval
            return True
        return False

    def disable_until_head(self):
        """Request the disable window; refused if an interrupt is pending
        or the minimum enabled period has not elapsed."""
        if self.disabled:
            return True
        if self.pending:
            return False
        self.disabled = True
        return True

    def on_head_retired(self, now):
        """Re-enable interrupts when the protected load retires."""
        if self.disabled:
            self.disabled = False
            self._enabled_since = now
