"""Optional real L1 instruction cache with fetch stalls.

By default the simulator models instruction fetch as traffic only
(:mod:`repro.cpu.icache`), like the paper, which evaluates the data
hierarchy.  Setting ``SystemParams(model_l1i=True)`` replaces that with a
real L1-I: each fetched micro-op consumes its PC's cache line; a miss
stalls the frontend for an L2 round trip while the line is filled.

The I-side is *not* made invisible under InvisiSpec — the paper scopes
invisibility to the data hierarchy and notes the I-cache could be
protected with similar structures (Section III footnote); this unit exists
so that extension can be built and measured.
"""

from __future__ import annotations

from ..coherence.mesi import MESIState
from ..mem.cache import CacheArray
from ..network.noc import TrafficCategory


class InstructionFetchUnit:
    """L1-I array + miss/stall state for one core's frontend."""

    def __init__(self, params, noc, core_node, bank_node):
        self.icache = CacheArray(params.l1i, MESIState.INVALID)
        self.line_bytes = params.l1i.line_bytes
        self.miss_latency = params.l2_bank.round_trip_latency + 2
        self.noc = noc
        self.core_node = core_node
        self.bank_node = bank_node
        self._fill_ready = 0
        self._fill_line = None
        self.stat_hits = 0
        self.stat_misses = 0
        self.stat_stall_cycles = 0

    def _line_of(self, pc):
        return pc & ~(self.line_bytes - 1)

    @property
    def stalled_line(self):
        return self._fill_line

    def access(self, now, pc):
        """Try to fetch the instruction at ``pc``; returns True on hit.

        On a miss the unit starts a line fill and reports the frontend
        stalled; call :meth:`ready` each cycle until the fill lands.
        """
        line = self._line_of(pc)
        if self.icache.contains(line):
            self.icache.lookup(line)
            self.stat_hits += 1
            return True
        self.stat_misses += 1
        self.noc.send(self.core_node, self.bank_node, False, TrafficCategory.NORMAL)
        self.noc.send(self.bank_node, self.core_node, True, TrafficCategory.NORMAL)
        self._fill_line = line
        self._fill_ready = now + self.miss_latency
        return False

    def cancel(self):
        """Abandon an outstanding fill (frontend redirect/squash)."""
        self._fill_line = None

    def ready(self, now):
        """True once the outstanding fill has landed (installs the line)."""
        if self._fill_line is None:
            return True
        if now < self._fill_ready:
            self.stat_stall_cycles += 1
            return False
        self.icache.insert(self._fill_line, MESIState.SHARED)
        self._fill_line = None
        return True
