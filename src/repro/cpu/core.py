"""The out-of-order core.

Trace-driven 8-issue pipeline with a ROB, LQ/SQ, tournament branch
prediction, wrong-path (transient) execution, a post-retirement write
buffer, a data TLB, and pluggable security schemes (Table V) and
consistency models (TSO/RC).

Pipeline events per tick (one call per cycle, newest stage first):

1. interrupt check
2. retire up to ``issue_width`` from the ROB head
3. drain the write buffer per the consistency model
4. InvisiSpec visibility engine (validations/exposures, deferred TLB loads)
5. dispatch up to ``issue_width`` ops from the fetch queue
6. refill the fetch queue (correct path or wrong path)

Execution itself is event-driven: an op starts executing when its operands
complete (wake-up lists), and finishes via a kernel event.  Memory
operations go through :class:`repro.coherence.CacheHierarchy`.
"""

from __future__ import annotations

from collections import deque

from ..coherence.hierarchy import MemRequest, RequestKind
from ..consistency import make_consistency_policy
from ..errors import SimulationError
from ..invisispec.lifecycle import advance_vstate
from ..invisispec.llc_sb import LLCSpeculativeBuffer
from ..invisispec.policy import make_scheme_policy
from ..invisispec.sb import SpeculativeBuffer
from ..invisispec.valexp import VisibilityEngine
from ..mem.prefetcher import StridePrefetcher
from ..mem.tlb import DataTLB
from ..mem.writebuffer import WriteBuffer
from .branch import BTB, ReturnAddressStack, TournamentPredictor
from .icache import ICacheTrafficModel
from .interrupts import InterruptUnit
from .isa import MicroOp, OpKind
from .lsq import (
    LoadQueue,
    STATE_COMPLETE,
    STATE_DEFERRED,
    STATE_EXPOSURE,
    STATE_NORMAL,
    STATE_VALIDATION,
    StoreQueue,
)
from .rob import ROBEntry, ReorderBuffer
from .tracking import LazyMinTracker
from .trace import ReplayStream


class Core:
    """One hardware thread of the simulated machine."""

    def __init__(
        self,
        core_id,
        params,
        config,
        kernel,
        hierarchy,
        trace_source,
        counters,
        max_instructions=None,
        icache_miss_rate=0.0,
        warmup_instructions=0,
        on_warmup_done=None,
        tracelog=None,
    ):
        self.core_id = core_id
        self.name = f"core{core_id}"
        self.params = params
        self.config = config
        self.kernel = kernel
        self.hierarchy = hierarchy
        self.image = hierarchy.image
        self.space = hierarchy.space
        self.counters = counters
        self.max_instructions = max_instructions

        core_params = params.core
        self.width = core_params.issue_width
        self.rob = ReorderBuffer(core_params.rob_entries)
        self.lq = LoadQueue(core_params.load_queue_entries)
        self.sq = StoreQueue(core_params.store_queue_entries)

        self.policy = make_scheme_policy(config.scheme, config)
        self.consistency = make_consistency_policy(config.consistency)
        self.write_buffer = WriteBuffer(
            core_params.write_buffer_entries,
            fifo=self.consistency.fifo_write_buffer,
        )
        self.predictor = TournamentPredictor()
        self.btb = BTB(core_params.btb_entries)
        self.ras = ReturnAddressStack(core_params.ras_entries)
        self.tlb = DataTLB(params.tlb)
        self.interrupts = InterruptUnit(core_params.interrupt_interval)
        self.prefetcher = (
            StridePrefetcher(
                degree=core_params.prefetch_degree,
                line_bytes=params.line_bytes,
            )
            if core_params.prefetch_degree
            else None
        )

        if self.policy.uses_invisispec:
            self.sb = SpeculativeBuffer(core_params.load_queue_entries)
            self.llc_sb = LLCSpeculativeBuffer(
                core_params.load_queue_entries,
                access_latency=params.l2_bank.round_trip_latency,
            )
            self.visibility = VisibilityEngine(self)
        else:
            self.sb = None
            self.llc_sb = None
            self.visibility = None

        node = core_id % params.network.num_nodes
        if params.model_l1i:
            from .ifetch import InstructionFetchUnit

            self.ifetch = InstructionFetchUnit(params, hierarchy.noc, node, node)
            self.icache = ICacheTrafficModel(hierarchy.noc, node, node, 0.0)
        else:
            self.ifetch = None
            self.icache = ICacheTrafficModel(
                hierarchy.noc, node, node, icache_miss_rate
            )
        self._ifetch_pending = None  # (pos, op, is_wrong_path) awaiting fill

        self.replay = ReplayStream(trace_source)
        self._fetch_queue = deque()
        self._wrong_path_branch = None
        self._wp_index = 0
        self._pending_front_fence = False

        self._next_seq = 0
        self.epoch = 0
        self._live_by_pos = {}
        self._live_by_seq = {}
        self._waiters = {}  # seq -> [ROBEntry] wake-up lists
        self._fence_blocked = []
        self._sb_waiters = {}  # lq virtual index -> [ROBEntry]
        self._interrupt_protect_seq = None

        self._branch_tracker = LazyMinTracker(lambda e: not e.resolved)
        self._exceptable_tracker = LazyMinTracker(self._exceptable_active)
        self._store_tracker = LazyMinTracker(lambda e: e.state != "retired")
        self._unvalidated_tracker = LazyMinTracker(self._unvalidated_active)
        self._fence_tracker = LazyMinTracker(lambda e: not e.fence_done)
        self._sync_tracker = LazyMinTracker(lambda e: e.state != "retired")

        self.tracelog = tracelog
        self.env = {}
        self.retired_instructions = 0
        self.warmup_instructions = warmup_instructions
        self._on_warmup_done = on_warmup_done
        self._warmup_reported = warmup_instructions <= 0
        self.done = False
        self.start_cycle = kernel.cycle
        self.finish_cycle = None
        #: Optional runtime sanitizer (:mod:`repro.sanitizer`): notified
        #: around USL issue, on prefetcher training, and at load commit.
        self.monitor = None
        #: Optional load-issue probe (:mod:`repro.specflow.evidence`):
        #: called as ``probe(core, rob_entry, unsafe_speculative)`` the
        #: moment a load issues to memory, before any cache traffic.
        self.load_issue_probe = None

        hierarchy.attach_core(core_id, self)

    # ---------------------------------------------------------- tracker hooks

    @staticmethod
    def _exceptable_active(entry):
        if entry.state == "retired":
            return False
        kind = entry.op.kind
        if kind in (OpKind.LOAD, OpKind.PREFETCH):
            lq_entry = entry.lq_entry
            return lq_entry is None or not lq_entry.performed
        if kind is OpKind.STORE:
            sq_entry = entry.sq_entry
            return sq_entry is None or not sq_entry.addr_resolved
        return entry.op.raises_exception or kind is OpKind.EXCEPTION

    @staticmethod
    def _unvalidated_active(entry):
        if entry.state == "retired":
            return False
        lq_entry = entry.lq_entry
        if lq_entry is None:
            return True  # dispatched, LQ not yet wired (never happens live)
        state = lq_entry.vstate
        if state == STATE_COMPLETE or lq_entry.visibility_done:
            return False
        if state == STATE_EXPOSURE and lq_entry.visibility_issued:
            return False
        if state == STATE_NORMAL and entry.state == "completed":
            return False
        return True

    def min_unresolved_branch_seq(self):
        return self._branch_tracker.min_seq()

    def min_exceptable_seq(self):
        return self._exceptable_tracker.min_seq()

    def min_uncommitted_store_seq(self):
        return self._store_tracker.min_seq()

    def min_unvalidated_load_seq(self):
        return self._unvalidated_tracker.min_seq()

    def min_incomplete_fence_seq(self):
        return self._fence_tracker.min_seq()

    def min_incomplete_sync_seq(self):
        return self._sync_tracker.min_seq()

    def request_interrupt_protection(self, seq):
        """IS-Future: open the interrupt-delay window for a USL (Section
        VI-D).  Returns False if the window cannot be opened right now."""
        if not self.interrupts.disable_until_head():
            return False
        if self._interrupt_protect_seq is None or seq > self._interrupt_protect_seq:
            self._interrupt_protect_seq = seq
        return True

    # ----------------------------------------------------------------- tick

    def tick(self):
        if self.done:
            return "done"
        now = self.kernel.cycle
        work = 0
        if self._check_interrupt(now):
            work += 1
        work += self._retire(now)
        self._tick_fences(now)
        work += self._drain_write_buffer(now)
        if self.visibility is not None:
            self.visibility.tick()
        self._tick_deferred_loads(now)
        work += self._dispatch(now)
        work += self._fill_fetch_queue()
        self.counters.bump("core.cycles")
        if self.done:
            return "done"
        return "active" if work else "waiting"

    # ------------------------------------------------------------- interrupts

    def _check_interrupt(self, now):
        if not self.interrupts.should_fire(now):
            return False
        if self.rob.empty:
            return False
        self._squash_all("interrupt")
        return True

    # ----------------------------------------------------------------- fetch

    def _fill_fetch_queue(self):
        now = self.kernel.cycle
        fetched = 0
        limit = 2 * self.width
        while len(self._fetch_queue) < limit:
            if self._ifetch_pending is not None:
                # Frontend stalled on an L1-I miss.
                if not self.ifetch.ready(now):
                    break
                pos, op, is_wp = self._ifetch_pending
                self._ifetch_pending = None
                self._enqueue_fetched(pos, op, is_wp)
                fetched += 1
                continue
            if self._wrong_path_branch is not None:
                op = self.replay.wrong_path_op(
                    self._wrong_path_branch.op, self._wp_index
                )
                if op is None:
                    break
                self._wp_index += 1
                pos, is_wp = None, True
            else:
                item = self.replay.fetch()
                if item is None:
                    break
                pos, op = item
                is_wp = False
            if self.ifetch is not None and not self.ifetch.access(now, op.pc):
                self._ifetch_pending = (pos, op, is_wp)
                # Anchor the fill in the event queue so the kernel's
                # fast-forward can reach the ready time.
                self.kernel.schedule(self.ifetch.miss_latency, lambda: None)
                break
            self._enqueue_fetched(pos, op, is_wp)
            fetched += 1
        if fetched:
            self.icache.on_fetch(fetched)
            self.counters.bump("core.fetched_ops", fetched)
        return fetched

    def _drop_pending_ifetch(self):
        if self._ifetch_pending is not None:
            self._ifetch_pending = None
            self.ifetch.cancel()

    def _enqueue_fetched(self, pos, op, is_wrong_path):
        if self._pending_front_fence or (
            self.policy.inserts_fence_before_load and op.kind is OpKind.LOAD
        ):
            self._pending_front_fence = False
            self._fetch_queue.append((None, MicroOp(OpKind.FENCE, pc=op.pc), is_wrong_path))
        self._fetch_queue.append((pos, op, is_wrong_path))
        if self.policy.inserts_fence_after_branch and op.kind is OpKind.BRANCH:
            self._fetch_queue.append((None, MicroOp(OpKind.FENCE, pc=op.pc), is_wrong_path))

    # -------------------------------------------------------------- dispatch

    def _dispatch(self, now):
        dispatched = 0
        while dispatched < self.width and self._fetch_queue:
            pos, op, is_wp = self._fetch_queue[0]
            if self.rob.full:
                self.counters.bump("core.rob_full_stalls")
                break
            kind = op.kind
            if kind in (OpKind.LOAD, OpKind.PREFETCH) and self.lq.full:
                self.counters.bump("core.lq_full_stalls")
                break
            if kind is OpKind.STORE and self.sq.full:
                self.counters.bump("core.sq_full_stalls")
                break
            self._fetch_queue.popleft()

            entry = ROBEntry(op, self._next_seq, pos, is_wp, now)
            self._next_seq += 1
            self.rob.push(entry)
            if self.tracelog is not None:
                self.tracelog.record(
                    now, self.core_id, "dispatch",
                    f"seq={entry.seq} {op.kind.value}"
                    f"{' WP' if is_wp else ''}",
                )
            self._live_by_seq[entry.seq] = entry
            if pos is not None:
                self._live_by_pos[pos] = entry
            dispatched += 1
            redirected = self._dispatch_one(entry, now)
            if redirected:
                break
        if dispatched:
            self.counters.bump("core.dispatched_ops", dispatched)
        return dispatched

    def _dispatch_one(self, entry, now):
        """Kind-specific dispatch work; returns True on a fetch redirect."""
        op = entry.op
        kind = op.kind
        redirect = False

        if kind is OpKind.BRANCH:
            predicted, checkpoint = self.predictor.predict(op.pc)
            entry.predicted_taken = predicted
            entry.predictor_checkpoint = checkpoint
            entry.mispredicted = predicted != op.taken
            self._branch_tracker.push(entry)
            if entry.mispredicted and not entry.is_wrong_path:
                redirect = self._enter_wrong_path(entry)
        elif kind in (OpKind.LOAD, OpKind.PREFETCH):
            lq_entry = self.lq.allocate(entry, self.epoch)
            if self.sb is not None:
                self.sb.allocate(lq_entry.index)
            self._exceptable_tracker.push(entry)
            self._unvalidated_tracker.push(entry)
        elif kind is OpKind.STORE:
            self.sq.allocate(entry)
            self._exceptable_tracker.push(entry)
            self._store_tracker.push(entry)
        elif kind.is_fence_like:
            self._fence_tracker.push(entry)
            self._sync_tracker.push(entry)
        elif kind is OpKind.EXCEPTION or op.raises_exception:
            self._exceptable_tracker.push(entry)
            if kind is OpKind.EXCEPTION and not entry.is_wrong_path:
                # A faulting instruction redirects the frontend: the
                # transient continuation (Meltdown-style access/transmit
                # pairs) is supplied as the op's wrong-path arm and is
                # squashed — never architecturally re-fetched — when the
                # exception retires.
                redirect = self._enter_wrong_path(entry)

        self._wire_dependencies(entry, now)
        return redirect

    def _enter_wrong_path(self, branch_entry):
        """Frontend follows the misprediction: purge the queued correct-path
        ops, rewind the replay stream, and start the wrong-path stream."""
        self._fetch_queue.clear()
        self._drop_pending_ifetch()
        if branch_entry.stream_pos is not None:
            self.replay.rewind_to(branch_entry.stream_pos + 1)
        self._wrong_path_branch = branch_entry
        self._wp_index = 0
        if (
            self.policy.inserts_fence_after_branch
            and branch_entry.op.kind is OpKind.BRANCH
        ):
            # The architectural fence after the branch exists on both arms;
            # the wrong path must fetch it too, or Fence-Spectre would not
            # actually block transient execution.  Exception shadows get no
            # such fence — Fence-Spectre does not defend them.
            self._pending_front_fence = True
        self.counters.bump("core.wrong_path_entries")
        return True

    def _wire_dependencies(self, entry, now):
        pending = 0
        for distance in entry.op.deps:
            producer = self._find_producer(entry, distance)
            if producer is not None and producer.state != "completed":
                pending += 1
                self._waiters.setdefault(producer.seq, []).append(entry)
        entry.pending_deps = pending
        if pending == 0:
            self._on_deps_ready(entry, now)

    def _find_producer(self, entry, distance):
        """Producer ``distance`` dynamic ops back; stream-positional for
        correct-path ops (squash-stable), seq-relative for wrong-path ops."""
        if entry.stream_pos is not None:
            producer = self._live_by_pos.get(entry.stream_pos - distance)
            if producer is not None and not producer.squashed:
                return producer
            return None
        target_seq = entry.seq - distance
        if target_seq < 0:
            return None
        producer = self._live_by_seq.get(target_seq)
        if producer is not None and producer.squashed:
            return None
        return producer

    # ------------------------------------------------------------- execution

    def _on_deps_ready(self, entry, now):
        if entry.squashed:
            return
        fence_seq = self.min_incomplete_fence_seq()
        if fence_seq is not None and fence_seq < entry.seq:
            self._fence_blocked.append(entry)
            return
        entry.state = "executing"
        kind = entry.op.kind
        if kind in (OpKind.ALU, OpKind.NOP):
            self.kernel.schedule(
                max(entry.op.latency, 1), lambda: self._complete_alu(entry)
            )
        elif kind is OpKind.FP:
            self.kernel.schedule(
                max(entry.op.latency, self.params.core.fp_alu_latency),
                lambda: self._complete_alu(entry),
            )
        elif kind is OpKind.BRANCH:
            delay = max(entry.op.latency, self.params.core.branch_resolve_latency)
            self.kernel.schedule(delay, lambda: self._resolve_branch(entry))
        elif kind in (OpKind.LOAD, OpKind.PREFETCH):
            self._start_load(entry, now)
        elif kind is OpKind.STORE:
            self._resolve_store(entry, now)
        elif kind.is_fence_like or kind is OpKind.EXCEPTION:
            # Fences/acquires/releases "complete" at dispatch; their ordering
            # effect is enforced at retire and via the execution gate.
            self._complete_entry(entry)
        else:
            raise SimulationError(f"cannot execute {entry.op!r}")

    def _release_fence_blocked(self, now):
        if not self._fence_blocked:
            return
        blocked, self._fence_blocked = self._fence_blocked, []
        for entry in blocked:
            if not entry.squashed:
                self._on_deps_ready(entry, now)

    def _complete_alu(self, entry):
        if entry.squashed:
            return
        op = entry.op
        if op.compute_fn is not None and op.dst is not None:
            self.env[op.dst] = op.compute_fn(self.env)
            entry.value = self.env[op.dst]
        self._complete_entry(entry)

    def _complete_entry(self, entry):
        if entry.squashed or entry.state == "completed":
            return
        entry.state = "completed"
        entry.complete_cycle = self.kernel.cycle
        now = self.kernel.cycle
        for waiter in self._waiters.pop(entry.seq, ()):
            if waiter.squashed:
                continue
            waiter.pending_deps -= 1
            if waiter.pending_deps == 0:
                self._on_deps_ready(waiter, now)

    # -------------------------------------------------------------- branches

    def _resolve_branch(self, entry):
        if entry.squashed or entry.resolved:
            return
        entry.resolved = True
        op = entry.op
        if not entry.is_wrong_path:
            self.predictor.update(
                op.pc, op.taken, entry.predictor_checkpoint, entry.mispredicted
            )
            self.counters.bump("core.branches_resolved")
            if entry.mispredicted:
                self.counters.bump("core.branch_mispredicts")
                self._squash_branch(entry)
        self._complete_entry(entry)

    def _squash_branch(self, branch_entry):
        # predictor.update() already repaired the global history with the
        # architectural outcome; the generic checkpoint restore would
        # clobber it with the *mispredicted* bit.
        self._squash_after(
            branch_entry.seq,
            branch_entry.stream_pos + 1 if branch_entry.stream_pos is not None else None,
            "branch",
            restore_history=False,
        )

    # ----------------------------------------------------------------- loads

    def _start_load(self, entry, now):
        op = entry.op
        lq_entry = entry.lq_entry
        addr = op.addr if op.addr is not None else op.addr_fn(self.env)
        size = op.size
        lq_entry.addr = addr
        lq_entry.size = size
        lq_entry.line_addr = self.space.line_of(addr)
        lq_entry.epoch = self.epoch
        entry.addr = addr

        safe = self.policy.load_is_safe(self, entry)
        unsafe_speculative = self.policy.uses_invisispec and not safe
        if unsafe_speculative and self.monitor is not None:
            # The whole USL issue sequence (TLB probe, classification,
            # forwarding scan, Spec-GetS submit) must leave the TLB and
            # prefetcher untouched until the visibility point.
            self.monitor.open_usl_window(self, entry.seq)

        vpn = self.space.page_of(addr)
        tlb_hit = self.tlb.lookup(vpn, update_state=not unsafe_speculative)
        if not tlb_hit:
            if unsafe_speculative:
                # Section VI-E3: the walk is deferred to the visibility point.
                advance_vstate(lq_entry, STATE_DEFERRED)
                lq_entry.issued = True
                self.counters.bump("invisispec.tlb_deferred")
                if self.monitor is not None:
                    self.monitor.close_usl_window(self, entry.seq, "usl_deferred")
                return
            self.tlb.fill(vpn)
            self.kernel.schedule(
                self.params.tlb.walk_latency,
                lambda: self._issue_load_to_memory(entry, unsafe_speculative=False),
            )
            return

        self._issue_load_to_memory(entry, unsafe_speculative)

    def _issue_load_to_memory(self, entry, unsafe_speculative):
        if entry.squashed:
            return
        now = self.kernel.cycle
        op = entry.op
        lq_entry = entry.lq_entry
        lq_entry.issued = True
        lq_entry.issue_cycle = now
        addr, size = lq_entry.addr, lq_entry.size
        is_prefetch = op.kind is OpKind.PREFETCH

        if self.load_issue_probe is not None:
            self.load_issue_probe(self, entry, unsafe_speculative)

        forwarded = self._try_store_forward(entry, lq_entry, addr, size)

        if not unsafe_speculative:
            advance_vstate(lq_entry, STATE_NORMAL)
            self._train_prefetcher(op.pc, addr, lq_entry=lq_entry)
            if forwarded:
                self._finish_load_local(entry, lq_entry, now)
                return
            kind = RequestKind.PREFETCH if is_prefetch else RequestKind.LOAD
            self._submit_load(entry, lq_entry, kind)
            return

        # Unsafe speculative load (USL).
        advance_vstate(
            lq_entry,
            STATE_EXPOSURE if is_prefetch else self.visibility.classify(lq_entry),
        )
        self.counters.bump("invisispec.usls")
        if self.monitor is not None:
            # Closed before the forwarding cascade below: a forwarded value
            # can wake a dependent store whose own (visible) TLB access is
            # legitimate.
            self.monitor.close_usl_window(self, entry.seq, "usl_issued")

        if forwarded:
            offset = self.space.offset_in_line(addr)
            value_bytes = [
                (entry.value >> (8 * i)) & 0xFF for i in range(size)
            ]
            self.sb.forward_from_store(
                lq_entry.index, lq_entry.line_addr, offset, value_bytes
            )
            # The forwarded value completes the load; the Spec-GetS below
            # still runs to populate the SB line (Section VI-A2).
            self._finish_load_local(entry, lq_entry, now)

        older = self.lq.older_pending_request(lq_entry, lq_entry.line_addr)
        if older is not None and not forwarded:
            src_sb = self.sb.entry(older.index)
            if src_sb.valid and src_sb.lq_index == older.index and older.performed:
                # Section V-E: copy the line the older USL already brought.
                mask = self.space.byte_mask(addr, size)
                dst = self.sb.copy(older.index, lq_entry.index, mask)
                self.sb.stat_hits += 1
                self.counters.bump("invisispec.sb_hits")
                offset = self.space.offset_in_line(addr)
                self._finish_usl_data(
                    entry, lq_entry, dst.data[offset:offset + size], now + 1
                )
                return
            # Wait for the older USL's line to arrive, then copy.
            self.counters.bump("invisispec.sb_merge_waits")
            self._sb_waiters.setdefault(older.index, []).append(entry)
            return

        self.counters.bump("invisispec.sb_misses")
        kind = RequestKind.SPEC_PREFETCH if is_prefetch else RequestKind.SPEC_LOAD
        self._submit_load(entry, lq_entry, kind)

    def _try_store_forward(self, entry, lq_entry, addr, size):
        """Forward from the SQ (in-flight stores) or the write buffer."""
        store = self.sq.forwarding_store(entry.seq, addr, size)
        value = None
        if store is not None:
            shift = (addr - store.addr) * 8
            value = (store.value >> shift) & ((1 << (8 * size)) - 1)
        else:
            wb_entry = self.write_buffer.pending_store_to(addr, size, self.space)
            if (
                wb_entry is not None
                and wb_entry.addr <= addr
                and addr + size <= wb_entry.addr + wb_entry.size
            ):
                shift = (addr - wb_entry.addr) * 8
                value = (wb_entry.value >> shift) & ((1 << (8 * size)) - 1)
        if value is None:
            return False
        entry.value = value
        if entry.op.dst is not None:
            self.env[entry.op.dst] = value
        lq_entry.forwarded = True
        self.counters.bump("core.store_forwards")
        return True

    def _submit_load(self, entry, lq_entry, kind):
        epoch_at_issue = self.epoch
        request = MemRequest(
            core_id=self.core_id,
            addr=lq_entry.addr,
            size=lq_entry.size,
            kind=kind,
            seq=entry.seq,
            lq_index=lq_entry.index,
            epoch=epoch_at_issue,
            on_complete=lambda result: self._on_load_data(
                entry, lq_entry, kind, result
            ),
        )
        self.hierarchy.submit(request)

    def _on_load_data(self, entry, lq_entry, kind, result):
        if entry.squashed or not lq_entry.valid:
            return
        now = self.kernel.cycle
        if kind in (RequestKind.SPEC_LOAD, RequestKind.SPEC_PREFETCH):
            mask = self.space.byte_mask(lq_entry.addr, lq_entry.size)
            line_bytes = self.image.read_bytes(
                lq_entry.line_addr, self.space.line_bytes
            )
            slot = self.sb.fill(
                lq_entry.index,
                lq_entry.line_addr,
                line_bytes,
                result.version,
                mask,
            )
            self._serve_sb_waiters(lq_entry, now)
            if lq_entry.forwarded:
                return  # value already delivered by the store forward
            offset = self.space.offset_in_line(lq_entry.addr)
            data = (
                slot.data[offset:offset + lq_entry.size]
                if slot is not None
                else result.data
            )
            self._finish_usl_data(entry, lq_entry, data, now)
            return
        # Visible load (N state or baseline).
        if lq_entry.forwarded:
            return
        self._finish_load_value(entry, lq_entry, result.data, now)

    def _serve_sb_waiters(self, lq_entry, now):
        waiters = self._sb_waiters.pop(lq_entry.index, None)
        if not waiters:
            return
        for waiter in waiters:
            if waiter.squashed or not waiter.lq_entry.valid:
                continue
            w_lq = waiter.lq_entry
            mask = self.space.byte_mask(w_lq.addr, w_lq.size)
            dst = self.sb.copy(lq_entry.index, w_lq.index, mask)
            offset = self.space.offset_in_line(w_lq.addr)
            self._finish_usl_data(
                waiter, w_lq, dst.data[offset:offset + w_lq.size], now
            )
            # Serve chained waiters (a third USL may be waiting on this one).
            self._serve_sb_waiters(w_lq, now)

    def _finish_usl_data(self, entry, lq_entry, data, now):
        """A USL's bytes arrived (from its SB line or a copy)."""
        self._finish_load_value(entry, lq_entry, data, now)

    def _finish_load_value(self, entry, lq_entry, data, now):
        """Deliver load bytes to the register file and wake dependents."""
        value = 0
        for i, byte in enumerate(data):
            value |= (byte & 0xFF) << (8 * i)
        entry.value = value
        if entry.op.dst is not None:
            self.env[entry.op.dst] = value
        lq_entry.performed = True
        self.counters.bump("core.loads_performed")
        self._complete_entry(entry)

    def _finish_load_local(self, entry, lq_entry, now):
        lq_entry.performed = True
        self.counters.bump("core.loads_performed")
        self._complete_entry(entry)

    # -------------------------------------------------------- hw prefetcher

    def _train_prefetcher(self, pc, addr, lq_entry=None):
        """Train the stride prefetcher on a *visible* access and issue the
        prefetches it proposes as ordinary cache fills.

        Under InvisiSpec only visible accesses reach this point: USLs train
        the prefetcher at their visibility point instead (Section VI-B), so
        a squashed transient load can never leave prefetch footprints.  The
        sanitizer audits exactly that via ``lq_entry`` (when the caller is
        a load): training by a pre-visibility USL is a violation.
        """
        if self.monitor is not None:
            self.monitor.on_prefetcher_train(self, pc, addr, lq_entry)
        if self.prefetcher is None:
            return
        for prefetch_addr in self.prefetcher.train(pc, addr):
            self.counters.bump("core.hw_prefetches_issued")
            request = MemRequest(
                core_id=self.core_id,
                addr=prefetch_addr,
                size=8,
                kind=RequestKind.PREFETCH,
                seq=self._next_seq + (1 << 30),  # outside program order
                on_complete=None,
            )
            self.hierarchy.submit(request)

    # -------------------------------------------------------- deferred loads

    def _tick_deferred_loads(self, now):
        """IS loads whose TLB miss deferred them to the visibility point."""
        if self.visibility is None:
            return
        for lq_entry in self.lq.entries():
            if lq_entry.vstate != STATE_DEFERRED or not lq_entry.valid:
                continue
            if not self.policy.visible_now(self, lq_entry):
                break
            entry = lq_entry.rob
            advance_vstate(lq_entry, STATE_NORMAL)
            vpn = self.space.page_of(lq_entry.addr)
            self.tlb.fill(vpn)
            self.counters.bump("invisispec.tlb_walks_at_visibility")
            self.kernel.schedule(
                self.params.tlb.walk_latency,
                lambda e=entry, lq=lq_entry: self._issue_deferred(e, lq),
            )
            break

    def _issue_deferred(self, entry, lq_entry):
        if entry.squashed or not lq_entry.valid:
            return
        if lq_entry.forwarded or lq_entry.performed:
            return
        self._submit_load(entry, lq_entry, RequestKind.LOAD)

    # ---------------------------------------------------------------- stores

    def _resolve_store(self, entry, now):
        op = entry.op
        sq_entry = entry.sq_entry
        addr = op.addr if op.addr is not None else op.addr_fn(self.env)
        value = (
            op.store_value_fn(self.env)
            if op.store_value_fn is not None
            else op.store_value
        )
        sq_entry.addr = addr
        sq_entry.size = op.size
        sq_entry.value = value
        sq_entry.addr_resolved = True
        entry.addr = addr

        vpn = self.space.page_of(addr)
        if not self.tlb.lookup(vpn, update_state=True, is_store=True):
            self.tlb.fill(vpn, is_store=True)
            self.kernel.schedule(
                self.params.tlb.walk_latency, lambda: self._complete_entry(entry)
            )
        else:
            self._complete_entry(entry)

        self._check_store_load_alias(entry, sq_entry)

    def _check_store_load_alias(self, store_entry, sq_entry):
        """Memory-dependence misspeculation (the SSB surface, Section IV):
        a younger load already performed against stale data."""
        victim = None
        for lq_entry in self.lq.entries():
            if lq_entry.seq < store_entry.seq or not lq_entry.valid:
                continue
            # Any younger load already *issued* against memory read (or will
            # read) stale data: it bypassed this store.  Loads that have not
            # issued yet will pick the store up via forwarding.
            if not lq_entry.issued or lq_entry.forwarded:
                continue
            if lq_entry.rob.is_wrong_path:
                continue
            if lq_entry.addr is None:
                continue
            if (
                lq_entry.addr < sq_entry.addr + sq_entry.size
                and sq_entry.addr < lq_entry.addr + lq_entry.size
            ):
                victim = lq_entry
                break
        if victim is not None:
            self.counters.bump("core.store_load_alias_squashes")
            self.squash_load(victim, reason="store_alias")

    # ---------------------------------------------------------------- retire

    def _retire(self, now):
        retired = 0
        while retired < self.width:
            head = self.rob.head()
            if head is None:
                self._maybe_finish()
                break
            op = head.op
            kind = op.kind

            if kind.is_fence_like:
                # A release must drain the write buffer before retiring;
                # plain fences/acquires were completed by _tick_fences (or
                # complete trivially here at the head).
                if kind is OpKind.RELEASE and not self.write_buffer.empty:
                    self.counters.bump("core.fence_drain_stall_cycles")
                    break
                head.fence_done = True

            if head.state != "completed":
                if kind in (OpKind.LOAD, OpKind.PREFETCH) and head.lq_entry is not None:
                    lq_entry = head.lq_entry
                    if lq_entry.performed and lq_entry.vstate == STATE_VALIDATION:
                        self.counters.bump("invisispec.validation_stall_cycles")
                break

            if kind in (OpKind.LOAD, OpKind.PREFETCH):
                lq_entry = head.lq_entry
                if lq_entry.vstate == STATE_VALIDATION and not lq_entry.visibility_done:
                    self.counters.bump("invisispec.validation_stall_cycles")
                    break
                if lq_entry.vstate == STATE_EXPOSURE and not lq_entry.visibility_issued:
                    break  # exposure must at least be on the wire
                if (
                    self.monitor is not None
                    and kind is OpKind.LOAD
                    and lq_entry.performed
                ):
                    self.monitor.on_load_commit(self, lq_entry, head.value)
                retired_lq = self.lq.retire_head()
                if retired_lq is not lq_entry:
                    raise SimulationError("LQ head does not match retiring load")
                lq_entry.valid = False
                if self.sb is not None:
                    self.sb.invalidate(lq_entry.index)
            elif kind is OpKind.STORE:
                if self.write_buffer.full:
                    self.counters.bump("core.wb_full_stalls")
                    break
                sq_entry = head.sq_entry
                retired_sq = self.sq.retire_head()
                if retired_sq is not sq_entry:
                    raise SimulationError("SQ head does not match retiring store")
                self.write_buffer.push(
                    sq_entry.addr,
                    sq_entry.size,
                    sq_entry.value,
                    head.seq,
                    is_release=False,
                )
            elif kind is OpKind.EXCEPTION or op.raises_exception:
                self.counters.bump("core.exceptions")
                refetch = (
                    head.stream_pos + 1 if head.stream_pos is not None else None
                )
                self._squash_after(head.seq, refetch, "exception")

            self.rob.pop_head()
            head.state = "retired"
            if self.tracelog is not None:
                self.tracelog.record(
                    now, self.core_id, "retire",
                    f"seq={head.seq} {head.op.kind.value}",
                )
            self._live_by_seq.pop(head.seq, None)
            self._waiters.pop(head.seq, None)
            if head.stream_pos is not None:
                self.replay.retire(head.stream_pos)
                self._live_by_pos.pop(head.stream_pos, None)
                self.retired_instructions += 1
                self.counters.bump("core.retired_instructions")
                if (
                    not self._warmup_reported
                    and self.retired_instructions >= self.warmup_instructions
                ):
                    self._warmup_reported = True
                    if self._on_warmup_done is not None:
                        self._on_warmup_done(self.core_id)
            retired += 1
            if (
                self._interrupt_protect_seq is not None
                and head.seq >= self._interrupt_protect_seq
            ):
                self._interrupt_protect_seq = None
                self.interrupts.on_head_retired(now)
            if head.op.kind.is_fence_like:
                self._release_fence_blocked(now)
            if (
                self.max_instructions is not None
                and self.retired_instructions >= self.max_instructions
            ):
                self._finish()
                break
        return retired

    def _tick_fences(self, now):
        """LFENCE semantics: a fence (or acquire) completes once every older
        instruction has completed locally — it need not reach the ROB head.
        Releases additionally wait for the write buffer and are handled at
        retire."""
        fence_seq = self.min_incomplete_fence_seq()
        if fence_seq is None:
            return
        fence_entry = None
        for entry in self.rob:
            if entry.seq >= fence_seq:
                fence_entry = entry if entry.seq == fence_seq else None
                break
            if entry.state != "completed":
                return  # an older instruction is still executing
        if fence_entry is None or fence_entry.op.kind is OpKind.RELEASE:
            return
        if not self.write_buffer.empty and fence_entry.op.kind is OpKind.FENCE:
            # Treat an explicit workload FENCE op as a full fence only when
            # it was not injected by a defense scheme (defensive fences are
            # LFENCEs); injected fences have no stream position.
            if fence_entry.stream_pos is not None:
                return
        fence_entry.fence_done = True
        self._release_fence_blocked(now)

    def _maybe_finish(self):
        if (
            self.replay.exhausted
            and not self._fetch_queue
            and self._wrong_path_branch is None
            and self.rob.empty
            and self.write_buffer.empty
        ):
            self._finish()

    def _finish(self):
        if not self.done:
            self.done = True
            self.finish_cycle = self.kernel.cycle
            self.counters.set("core.finish_cycle", self.finish_cycle)

    def reopen(self):
        """Resume a finished core after its trace source was extended
        (multi-phase attack experiments)."""
        self.done = False
        self.finish_cycle = None
        self.replay.reopen()

    # ----------------------------------------------------------- write buffer

    def _drain_write_buffer(self, now):
        candidates = self.write_buffer.drain_candidates()
        for wb_entry in candidates:
            self.write_buffer.mark_inflight(wb_entry)
            request = MemRequest(
                core_id=self.core_id,
                addr=wb_entry.addr,
                size=wb_entry.size,
                kind=RequestKind.STORE,
                seq=wb_entry.seq,
                store_value=wb_entry.value,
                on_complete=lambda result, e=wb_entry: self._on_store_performed(e),
            )
            self.hierarchy.submit(request)
        return len(candidates)

    def _on_store_performed(self, wb_entry):
        self.write_buffer.retire_entry(wb_entry)
        self.counters.bump("core.stores_performed")

    # ------------------------------------------------------------- squashing

    def squash_load(self, lq_entry, reason):
        """Squash a load and everything younger; the load re-executes."""
        entry = lq_entry.rob
        if entry.squashed or not lq_entry.valid or entry.state == "retired":
            return
        if entry.is_wrong_path:
            return  # will die with its branch anyway
        self._squash_after(entry.seq - 1, entry.stream_pos, reason)

    def _squash_all(self, reason):
        self._squash_after(-1, self.replay.retire_pos, reason)

    def _squash_after(self, boundary_seq, refetch_pos, reason,
                      restore_history=True):
        squashed = self.rob.squash_after(boundary_seq)
        self.counters.bump(f"core.squashes.{reason}")
        self.counters.bump("core.squashed_ops", len(squashed))
        if self.tracelog is not None:
            self.tracelog.record(
                self.kernel.cycle, self.core_id, "squash",
                f"{reason}: {len(squashed)} ops after seq={boundary_seq}",
            )

        min_lq = None
        min_sq = None
        oldest_branch_checkpoint = None
        for entry in squashed:
            if entry.lq_entry is not None:
                idx = entry.lq_entry.index
                min_lq = idx if min_lq is None else min(min_lq, idx)
            if entry.sq_entry is not None:
                idx = entry.sq_entry.index
                min_sq = idx if min_sq is None else min(min_sq, idx)
            if (
                entry.op.kind is OpKind.BRANCH
                and not entry.resolved
                and not entry.is_wrong_path
                and entry.predictor_checkpoint is not None
            ):
                oldest_branch_checkpoint = entry.predictor_checkpoint
            if entry.stream_pos is not None:
                live = self._live_by_pos.get(entry.stream_pos)
                if live is entry:
                    del self._live_by_pos[entry.stream_pos]
            self._live_by_seq.pop(entry.seq, None)
            self._waiters.pop(entry.seq, None)

        if min_lq is not None:
            for dropped in self.lq.squash_to(min_lq):
                dropped.valid = False
                if self.sb is not None:
                    self.sb.invalidate(dropped.index)
                self._sb_waiters.pop(dropped.index, None)
        if min_sq is not None:
            self.sq.squash_to(min_sq)

        if restore_history and oldest_branch_checkpoint is not None:
            self.predictor.squash_restore(oldest_branch_checkpoint)

        self._fetch_queue.clear()
        self._drop_pending_ifetch()
        self._wrong_path_branch = None
        self._wp_index = 0
        if refetch_pos is not None:
            self.replay.rewind_to(refetch_pos)
        if self.policy.inserts_fence_after_branch and reason == "branch":
            # The architectural fence after the branch is re-fetched with
            # the corrected path.
            self._pending_front_fence = True
        self.epoch += 1
        # A squash aborts any open interrupt-delay window.
        self._interrupt_protect_seq = None
        self.interrupts.on_head_retired(self.kernel.cycle)

    # -------------------------------------------------- hierarchy callbacks

    def on_invalidation(self, line_addr, reason):
        """An invalidation for ``line_addr`` arrived at this L1."""
        self.counters.bump("core.invalidations_received")
        if self.visibility is not None:
            self.visibility.on_invalidation(line_addr)
        self._conventional_consistency_check(line_addr, eviction=False)

    def on_l1_eviction(self, line_addr):
        self.counters.bump("core.l1_evictions_seen")
        if self.policy.uses_invisispec:
            # InvisiSpec does not squash on evictions: E-marked loads are
            # protected by their exposure, V-marked by their validation
            # (Section IX-C).
            return
        if self.config.base_squash_on_l1_eviction:
            self._conventional_consistency_check(line_addr, eviction=True)

    def _conventional_consistency_check(self, line_addr, eviction):
        """Squash a performed, unretired, visibly-loaded load on its line's
        invalidation/eviction, per the consistency model (Section II-B)."""
        for lq_entry in self.lq.entries():
            if not lq_entry.valid or not lq_entry.performed:
                continue
            if lq_entry.line_addr != line_addr or lq_entry.forwarded:
                continue
            if lq_entry.rob.is_wrong_path or lq_entry.rob.state == "retired":
                continue
            if lq_entry.vstate not in (None, STATE_NORMAL):
                continue  # USLs are handled by the visibility engine
            if not self.consistency.squash_on_invalidation(self, lq_entry):
                continue
            self.counters.bump(
                "core.eviction_squashes" if eviction else "core.invalidation_squashes"
            )
            self.squash_load(lq_entry, reason="consistency")
            return

    # ------------------------------------------------------------ inspection

    @property
    def cycles(self):
        return (self.finish_cycle or self.kernel.cycle) - self.start_cycle

    @property
    def ipc(self):
        return self.retired_instructions / max(self.cycles, 1)  # reprolint: disable=float-cycles -- IPC is a reported metric; nothing cycle-affecting consumes this float
