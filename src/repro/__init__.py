"""repro — a reproduction of *InvisiSpec: Making Speculative Execution
Invisible in the Cache Hierarchy* (MICRO 2018).

The package is a from-scratch cycle-level multiprocessor simulator plus the
InvisiSpec defense, the fence baselines, the attacks the paper's threat
model covers, synthetic SPEC/PARSEC workloads, and the benchmark harness
that regenerates every figure and table of the paper's evaluation.

Quickstart::

    from repro import (
        ProcessorConfig, Scheme, System, SystemParams,
    )
    from repro.workloads import spec_trace

    config = ProcessorConfig(scheme=Scheme.IS_FUTURE)
    system = System(
        params=SystemParams.for_spec(),
        config=config,
        traces=[spec_trace("mcf", seed=1)],
        max_instructions=10_000,
    )
    result = system.run()
    print(result.ipc, result.traffic_bytes)
"""

from .configs import (
    ALL_SCHEMES,
    ConsistencyModel,
    ProcessorConfig,
    Scheme,
    config_matrix,
)
from .errors import (
    ConfigError,
    ConsistencyError,
    DeadlockError,
    ProtocolError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from .params import CacheParams, CoreParams, NetworkParams, SystemParams, TLBParams
from .system import RunResult, System

__version__ = "1.0.0"

__all__ = [
    "ALL_SCHEMES",
    "ConsistencyModel",
    "ProcessorConfig",
    "Scheme",
    "config_matrix",
    "CacheParams",
    "CoreParams",
    "NetworkParams",
    "SystemParams",
    "TLBParams",
    "RunResult",
    "System",
    "ConfigError",
    "ConsistencyError",
    "DeadlockError",
    "ProtocolError",
    "ReproError",
    "SimulationError",
    "WorkloadError",
    "__version__",
]
