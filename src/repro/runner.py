"""High-level run helpers used by the experiment harness and examples.

``run_spec`` / ``run_parsec`` build a system for one workload under one
processor configuration and return the :class:`~repro.system.RunResult`.
``run_matrix`` runs a workload under all five Table V configurations and
returns results keyed by scheme, normalized against Base the way Figures
4 and 6-8 report.
"""

from __future__ import annotations

from .configs import ALL_SCHEMES, ConsistencyModel, ProcessorConfig
from .cpu.isa import OpKind
from .params import SystemParams
from .system import System
from .workloads import PARSEC_PROFILES, SPEC_PROFILES, SyntheticTrace, parsec_traces


#: Default per-run instruction budgets.  The paper simulates 1e9
#: instructions per application in gem5 (C++); a pure-Python cycle-level
#: model gets the same relative numbers from tens of thousands.
DEFAULT_SPEC_INSTRUCTIONS = 20_000
DEFAULT_PARSEC_INSTRUCTIONS = 4_000  # per core, times 8 cores

#: Functional branch-predictor pre-training (ops walked per core).  The
#: paper fast-forwards 10B instructions before measuring, so its predictors
#: are warm; at our scales predictor warmup would otherwise dominate.
DEFAULT_PRETRAIN_OPS = 15_000


def _pretrain_predictor(core, profile, seed, core_id, ops):
    """Walk the same committed stream through the predictor, in order.

    This is a functional (zero-cycle) warmup: the pipeline will replay the
    same deterministic stream, so per-PC biases are already learned when
    measurement starts — the analogue of gem5's fast-forward phase.
    """
    trace = SyntheticTrace(profile, seed=seed, core_id=core_id)
    predictor = core.predictor
    for _ in range(ops):
        op = trace.next_op()
        if op.kind is OpKind.BRANCH:
            predicted, checkpoint = predictor.predict(op.pc)
            predictor.update(op.pc, op.taken, checkpoint, predicted != op.taken)
    predictor.stat_lookups = 0
    predictor.stat_mispredicts = 0


def run_spec(
    name,
    config,
    instructions=DEFAULT_SPEC_INSTRUCTIONS,
    warmup=None,
    seed=0,
    params=None,
    pretrain_ops=DEFAULT_PRETRAIN_OPS,
    max_cycles=None,
    watchdog=None,
    heartbeat=None,
    faults=None,
    sanitize=None,
):
    """Run one SPEC application under one processor configuration.

    ``warmup`` instructions (default: half the measured budget) execute
    before measurement starts, and the branch predictor is functionally
    pre-trained, mirroring the paper's fast-forward phase.

    ``max_cycles``, ``watchdog`` and ``faults`` are the reliability hooks
    (cycle budget, wall-clock guard, fault injector) used by
    :class:`~repro.reliability.RunEngine`; all default to off.
    ``sanitize`` enables the runtime invariant sanitizer
    (:mod:`repro.sanitizer`): ``"strict"`` raises on the first violation,
    ``"record"`` collects violations into ``result.sanitizer_report``.
    """
    profile = SPEC_PROFILES[name]
    if params is None:
        params = SystemParams.for_spec()
    if warmup is None:
        warmup = instructions // 2
    system = System(
        params=params,
        config=config,
        traces=[SyntheticTrace(profile, seed=seed, core_id=0)],
        max_instructions=instructions,
        warmup_instructions=warmup,
        icache_miss_rate=profile.icache_miss_rate,
        seed=seed,
        faults=faults,
        watchdog=watchdog,
        heartbeat=heartbeat,
        sanitizer=sanitize,
    )
    if pretrain_ops:
        _pretrain_predictor(system.cores[0], profile, seed, 0, pretrain_ops)
    return system.run(max_cycles=max_cycles)


def run_parsec(
    name,
    config,
    instructions=DEFAULT_PARSEC_INSTRUCTIONS,
    warmup=None,
    seed=0,
    params=None,
    pretrain_ops=DEFAULT_PRETRAIN_OPS,
    max_cycles=None,
    watchdog=None,
    heartbeat=None,
    faults=None,
    sanitize=None,
):
    """Run one PARSEC application on 8 cores under one configuration."""
    profile = PARSEC_PROFILES[name]
    if params is None:
        params = SystemParams.for_parsec()
    if warmup is None:
        warmup = instructions // 2
    system = System(
        params=params,
        config=config,
        traces=parsec_traces(name, num_cores=params.num_cores, seed=seed),
        max_instructions=instructions,
        warmup_instructions=warmup,
        icache_miss_rate=profile.icache_miss_rate,
        seed=seed,
        faults=faults,
        watchdog=watchdog,
        heartbeat=heartbeat,
        sanitizer=sanitize,
    )
    if pretrain_ops:
        for core_id, core in enumerate(system.cores):
            _pretrain_predictor(core, profile, seed, core_id, pretrain_ops)
    return system.run(max_cycles=max_cycles)


def run_matrix(
    name,
    suite="spec",
    consistency=ConsistencyModel.TSO,
    instructions=None,
    seed=0,
    schemes=ALL_SCHEMES,
):
    """Run a workload under the Table V configurations.

    Returns ``{scheme: RunResult}``.
    """
    results = {}
    for scheme in schemes:
        config = ProcessorConfig(scheme=scheme, consistency=consistency)
        if suite == "spec":
            results[scheme] = run_spec(
                name,
                config,
                instructions=instructions or DEFAULT_SPEC_INSTRUCTIONS,
                seed=seed,
            )
        elif suite == "parsec":
            results[scheme] = run_parsec(
                name,
                config,
                instructions=instructions or DEFAULT_PARSEC_INSTRUCTIONS,
                seed=seed,
            )
        else:
            raise ValueError(f"unknown suite {suite!r}")
    return results


def normalized_execution_time(results):
    """Cycles of each scheme normalized to Base (Figure 4/7 y-axis)."""
    base = results[ALL_SCHEMES[0]].cycles
    return {
        scheme: result.cycles / max(base, 1)
        for scheme, result in results.items()
    }


def normalized_traffic(results):
    """NoC bytes of each scheme normalized to Base (Figure 6/8 y-axis)."""
    base = results[ALL_SCHEMES[0]].traffic_bytes
    return {
        scheme: result.traffic_bytes / max(base, 1)
        for scheme, result in results.items()
    }
