"""Attacks and attack primitives from the paper's threat model (Sections
III-IV): cache-timing receivers (FLUSH+RELOAD, PRIME+PROBE), the Spectre
variant-1 proof of concept of Figures 1 and 5, Speculative Store Bypass,
and a Meltdown-style exception attack for the Futuristic model."""

from .channel import AttackContext
from .cross_core import run_cross_core_attack
from .exception_attacks import VARIANTS, run_exception_attack
from .flush_reload import FlushReloadReceiver
from .meltdown_style import run_meltdown_style_attack
from .prime_probe import PrimeProbeReceiver
from .spectre_v1 import SpectreV1Attack, run_spectre_v1
from .ssb import run_ssb_attack

__all__ = [
    "AttackContext",
    "FlushReloadReceiver",
    "PrimeProbeReceiver",
    "SpectreV1Attack",
    "run_spectre_v1",
    "run_ssb_attack",
    "run_meltdown_style_attack",
    "run_cross_core_attack",
    "run_exception_attack",
    "VARIANTS",
]
