"""FLUSH+RELOAD receiver (Section III-A).

The receiver flushes a set of monitored lines, lets the victim run, then
reloads each line and times it: a fast reload means the victim (or its
transient instructions) touched the line.
"""

from __future__ import annotations


class FlushReloadReceiver:
    """Monitors a list of addresses with FLUSH+RELOAD."""

    #: Reload latencies at or below this are classified as cache hits; the
    #: L2 round trip is 8 cycles and DRAM is 100+, so anything under ~40
    #: means the line was somewhere on chip.
    HIT_THRESHOLD_CYCLES = 40

    def __init__(self, context, core_id, monitored_addrs):
        self.context = context
        self.core_id = core_id
        self.monitored_addrs = list(monitored_addrs)

    def flush(self):
        for addr in self.monitored_addrs:
            self.context.flush(addr)

    def reload(self):
        """Timed reload of every monitored address, in order.

        Returns a list of latencies aligned with ``monitored_addrs``.
        """
        return [
            self.context.probe_latency(self.core_id, addr)
            for addr in self.monitored_addrs
        ]

    def hits(self, latencies=None):
        """Indices whose reload classified as a hit."""
        if latencies is None:
            latencies = self.reload()
        return [
            i
            for i, latency in enumerate(latencies)
            if latency <= self.HIT_THRESHOLD_CYCLES
        ]
