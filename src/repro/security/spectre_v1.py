"""Spectre variant 1 proof of concept — Figures 1 and 5 of the paper.

The victim::

    uint8 A[10];
    uint8 B[256 * 64];
    void victim(size_t a) {
        if (a < 10)             // attacker-trained branch
            junk = B[64 * A[a]];
    }

The attacker trains the bounds-check branch with in-bounds calls, flushes
B (and the bounds variable, so the branch resolves slowly), then calls the
victim with an out-of-bounds ``a`` chosen so that ``A[a]`` reads the secret
byte V.  On the transient (wrong) path the victim loads ``B[64 * V]``;
scanning B with FLUSH+RELOAD recovers V on an insecure machine.  Under
InvisiSpec the transient loads live only in the speculative buffer and the
scan shows a flat, all-miss profile (Figure 5).
"""

from __future__ import annotations

from ..cpu.isa import MicroOp, OpKind
from .channel import AttackContext
from .flush_reload import FlushReloadReceiver

#: Victim memory layout.
ADDR_LIMIT = 0x0001_0000  # the "10" bound, flushed to widen the window
ADDR_A = 0x0002_0000  # uint8 A[10]
ADDR_SECRET = 0x0002_4000  # secret byte V, at A + OOB_INDEX
ADDR_B = 0x0010_0000  # uint8 B[256 * 64]
OOB_INDEX = ADDR_SECRET - ADDR_A
BRANCH_PC = 0x7000
NUM_VALUES = 256
LINE = 64


def victim_ops(index):
    """One victim(a) call: load the bound, branch, then the guarded
    double load.  The guarded arm runs architecturally when in bounds
    and as the branch's wrong path when out of bounds."""
    in_bounds = index < 10
    bound_load = MicroOp(
        OpKind.LOAD, pc=0x6000, addr=ADDR_LIMIT, size=1, dst="limit"
    )
    branch = MicroOp(
        OpKind.BRANCH, pc=BRANCH_PC, taken=in_bounds, deps=(1,), latency=2
    )
    access = MicroOp(
        OpKind.LOAD,
        pc=0x7010,
        addr=ADDR_A + index,
        size=1,
        dst="v",
        label="access",
    )
    transmit = MicroOp(
        OpKind.LOAD,
        pc=0x7020,
        addr_fn=lambda env: ADDR_B + LINE * (env.get("v", 0) & 0xFF),
        size=1,
        deps=(1,),
        label="transmit",
    )
    if in_bounds:
        return [bound_load, branch, access, transmit], {}
    return [bound_load, branch], {branch.uid: [access, transmit]}


def specflow_program():
    """The victim as a specflow program: one trained in-bounds call
    followed by the out-of-bounds call that leaks.  Only the dependent
    load (pc 0x7020) transmits; the in-bounds call keeps the analyzer
    honest about not over-flagging the architectural path."""
    from ..specflow.programs import SpecProgram

    def build():
        in_ops, in_wrong = victim_ops(3)
        oob_ops, oob_wrong = victim_ops(OOB_INDEX)
        return in_ops + oob_ops, {**in_wrong, **oob_wrong}

    return SpecProgram(
        name="spectre_v1",
        builder=build,
        secret_ranges=((ADDR_SECRET, ADDR_SECRET + 1),),
        description="bounds-check bypass: B[64 * A[a]] on the wrong path",
        expected_transmit={"spectre": (0x7020,), "futuristic": (0x7020,)},
    )


class SpectreV1Attack:
    """The end-to-end attack on one simulated core."""

    def __init__(self, config, seed=0, sanitize=None):
        self.context = AttackContext(
            config, num_cores=1, seed=seed, sanitize=sanitize
        )
        self.core_id = 0
        self.receiver = FlushReloadReceiver(
            self.context,
            self.core_id,
            [ADDR_B + LINE * v for v in range(NUM_VALUES)],
        )

    def plant_secret(self, secret):
        self.context.write_memory(ADDR_SECRET, secret & 0xFF)
        self.context.write_memory(ADDR_LIMIT, 10)
        for i in range(10):
            self.context.write_memory(ADDR_A + i, i)

    def victim_uses_secret(self):
        """The victim touches its secret architecturally (it is live data),
        so the transient access hits the L1 and the access/transmit pair
        fits comfortably inside the branch-resolution window."""
        self.context.run_ops(
            self.core_id,
            [MicroOp(OpKind.LOAD, pc=0x6100, addr=ADDR_SECRET, size=1)],
        )

    # ----------------------------------------------------------- victim code

    def _victim_ops(self, index):
        return victim_ops(index)

    # ----------------------------------------------------------- attack phases

    def train(self, rounds=24):
        """Mistrain the bounds check with in-bounds calls."""
        for i in range(rounds):
            ops, wrong = self._victim_ops(i % 10)
            self.context.run_ops(self.core_id, ops, wrong)

    def attack_once(self):
        """flush(B); flush(limit); call victim(OOB); scan(B).

        Returns the per-index reload latencies (one Figure 5 trial).
        """
        self.receiver.flush()
        self.context.flush(ADDR_LIMIT)
        ops, wrong = self._victim_ops(OOB_INDEX)
        self.context.run_ops(self.core_id, ops, wrong)
        return self.receiver.reload()

    def recover_secret(self, latencies):
        """The attacker's guess: the uniquely-fast line, or None."""
        hits = self.receiver.hits(latencies)
        if len(hits) == 1:
            return hits[0]
        if hits:
            return min(hits, key=lambda i: latencies[i])
        return None


def run_spectre_v1(config, secret=84, trials=3, seed=0, sanitize=None):
    """Run the full PoC; returns ``(median_latencies, recovered_secret)``.

    ``median_latencies[v]`` is the median reload latency of B's line *v*
    across trials — the y-values of Figure 5.
    """
    attack = SpectreV1Attack(config, seed=seed, sanitize=sanitize)
    attack.plant_secret(secret)
    attack.train()
    all_latencies = []
    for trial in range(trials):
        if trial:
            # The out-of-bounds call taught the predictor not-taken;
            # re-poison it before the next trial, like a real attacker.
            # It takes > global-history-bits all-taken executions for the
            # attack-time history pattern to be a trained index again.
            attack.train(rounds=20)
        attack.victim_uses_secret()
        all_latencies.append(attack.attack_once())
    medians = [
        sorted(lat[v] for lat in all_latencies)[len(all_latencies) // 2]
        for v in range(NUM_VALUES)
    ]
    return medians, attack.recover_secret(medians)
