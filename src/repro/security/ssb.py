"""Speculative Store Bypass (Section IV).

A store to address P has a slow-to-resolve address (it depends on a
flushed value); a younger load from P issues before the store resolves
(memory-dependence speculation), reads the *stale* secret, and a dependent
transmit load leaks it into the cache before the alias is detected and the
load squashed.

There is no branch involved, so IS-Spectre does **not** block this attack;
IS-Future does — exactly the paper's point about Futuristic attacks.
"""

from __future__ import annotations

from ..cpu.isa import MicroOp, OpKind
from .channel import AttackContext
from .flush_reload import FlushReloadReceiver

ADDR_P = 0x0003_0000  # buffer slot holding the stale secret
ADDR_PTR = 0x0003_1000  # pointer the store's address depends on (flushed)
ADDR_B = 0x0020_0000  # transmission array
NUM_VALUES = 256
LINE = 64


def _attack_ops():
    """store *ptr = 0 (slow address); load P; transmit B[64 * value]."""
    ptr_load = MicroOp(OpKind.LOAD, pc=0x8000, addr=ADDR_PTR, size=8, dst="p")
    overwrite = MicroOp(
        OpKind.STORE,
        pc=0x8004,
        addr_fn=lambda env: env.get("p", ADDR_P),
        size=1,
        store_value=0,
        deps=(1,),
        label="sanitize",
    )
    stale_read = MicroOp(
        OpKind.LOAD, pc=0x8008, addr=ADDR_P, size=1, dst="s", label="access"
    )
    transmit = MicroOp(
        OpKind.LOAD,
        pc=0x800C,
        addr_fn=lambda env: ADDR_B + LINE * (env.get("s", 0) & 0xFF),
        size=1,
        deps=(1,),
        label="transmit",
    )
    return [ptr_load, overwrite, stale_read, transmit]


def specflow_program():
    """The attack as a specflow program.  Entirely on the correct path —
    the transmitter (pc 0x800C) issues under the shadows of the
    unresolved store and the older loads, never a branch, so only the
    futuristic model flags it (IS-Spectre does not block SSB)."""
    from ..specflow.programs import SpecProgram

    def build():
        return _attack_ops(), {}

    return SpecProgram(
        name="ssb",
        builder=build,
        secret_ranges=((ADDR_P, ADDR_P + 1),),
        description="speculative store bypass: stale-secret read and transmit",
        expected_transmit={"spectre": (), "futuristic": (0x800C,)},
    )


def run_ssb_attack(config, secret=113, seed=0, sanitize=None):
    """Run the SSB attack; returns ``(latencies, recovered_value)``."""
    context = AttackContext(config, num_cores=1, seed=seed, sanitize=sanitize)
    context.write_memory(ADDR_P, secret & 0xFF)  # stale secret in the buffer
    context.write_memory(ADDR_PTR, ADDR_P.to_bytes(8, "little"))
    # The buffer was just in use (that is why it holds a stale secret), so
    # its line is cached: the stale read performs immediately, well before
    # the slow-to-resolve store detects the alias.
    context.run_ops(0, [MicroOp(OpKind.LOAD, pc=0x8100, addr=ADDR_P, size=1)])
    receiver = FlushReloadReceiver(
        context, 0, [ADDR_B + LINE * v for v in range(NUM_VALUES)]
    )
    receiver.flush()
    context.flush(ADDR_PTR)  # make the store's address resolve slowly
    context.run_ops(0, _attack_ops())
    latencies = receiver.reload()
    hits = receiver.hits(latencies)
    # Architecturally the load re-executes after the alias squash and reads
    # the sanitized value 0, so B[0] is legitimately cached; the *leak* is
    # any other hot line.
    leaked = [v for v in hits if v != 0]
    recovered = leaked[0] if len(leaked) == 1 else None
    return latencies, recovered
