"""PRIME+PROBE receiver (Section III-A).

The receiver fills (primes) the cache sets it wants to monitor with its own
lines, lets the victim run, then probes its lines: a slow probe means the
victim displaced one — i.e. the victim touched that set.  Unlike
FLUSH+RELOAD it needs no shared memory with the victim.
"""

from __future__ import annotations


class PrimeProbeReceiver:
    """Monitors L1 sets by conflict."""

    HIT_THRESHOLD_CYCLES = 4

    def __init__(self, context, core_id, monitored_sets):
        self.context = context
        self.core_id = core_id
        self.monitored_sets = list(monitored_sets)
        l1 = context.hierarchy.l1s[core_id]
        self.ways = l1.ways
        self.num_sets = l1.num_sets
        self.line_bytes = l1.line_bytes
        #: Attacker-owned eviction sets, one address per way per set.
        self._eviction_addrs = {
            s: [
                0x6000_0000 + (way * self.num_sets + s) * self.line_bytes
                for way in range(self.ways)
            ]
            for s in self.monitored_sets
        }

    def prime(self):
        """Fill every monitored set with attacker lines."""
        for addrs in self._eviction_addrs.values():
            for addr in addrs:
                self.context.probe_latency(self.core_id, addr)

    def probe(self):
        """Re-access the priming lines; returns ``{set: evictions_seen}``."""
        evictions = {}
        for set_idx, addrs in self._eviction_addrs.items():
            misses = 0
            for addr in addrs:
                latency = self.context.probe_latency(self.core_id, addr)
                if latency > self.HIT_THRESHOLD_CYCLES:
                    misses += 1
            evictions[set_idx] = misses
        return evictions
