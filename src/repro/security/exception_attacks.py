"""The exception-based transient attacks of Table I, as one family.

Meltdown, L1 Terminal Fault, Lazy-FP State Restore, and Rogue System
Register Read all share a skeleton: a faulting instruction shields a
transient access/transmit pair that exfiltrates privileged state through
the cache before the squash.  They differ in *what* the access reads:

* **meltdown** — a kernel byte via a page marked inaccessible;
* **l1tf** — a physical address behind a not-present PTE (classically only
  works when the line is in L1 — which the demo models by warming it);
* **lazy_fp** — another process's FP register, read after the OS disabled
  FP (modelled as a load from the saved FP-state area);
* **rogue_sysreg** — a privileged system register (modelled as a load from
  a system-register file mapping).

All are Futuristic-model attacks: only Fe-Fu and IS-Future block them
(Table II's scoping).
"""

from __future__ import annotations

from ..cpu.isa import MicroOp, OpKind
from .channel import AttackContext
from .flush_reload import FlushReloadReceiver

NUM_VALUES = 256
LINE = 64

#: variant -> (secret location, transmission array base, description)
VARIANTS = {
    "meltdown": (0x000A_0000, 0x0060_0000, "kernel memory byte"),
    "l1tf": (0x000A_4000, 0x0062_0000, "physical address behind a cleared PTE"),
    "lazy_fp": (0x000A_8000, 0x0064_0000, "another process's FP register"),
    "rogue_sysreg": (0x000A_C000, 0x0066_0000, "privileged system register"),
}

ADDR_DELAY = 0x000B_0000  # flushed line gating the fault's retirement


def _attack_ops(secret_addr, array_base):
    delay_load = MicroOp(OpKind.LOAD, pc=0x9000, addr=ADDR_DELAY, size=8,
                         dst="gate")
    fault = MicroOp(OpKind.EXCEPTION, pc=0x9004, deps=(1,),
                    label="faulting-access")
    access = MicroOp(OpKind.LOAD, pc=0x9008, addr=secret_addr, size=1,
                     dst="priv", label="access")
    transmit = MicroOp(
        OpKind.LOAD,
        pc=0x900C,
        addr_fn=lambda env: array_base + LINE * (env.get("priv", 0) & 0xFF),
        size=1,
        deps=(1,),
        label="transmit",
    )
    return [delay_load, fault], {fault.uid: [access, transmit]}


def specflow_programs():
    """One specflow program per Table I variant.  All share the skeleton,
    so all four transmit through pc 0x900C — and only under the
    futuristic model (the shadow is an exception, not a branch)."""
    from ..specflow.programs import SpecProgram

    def make_builder(secret_addr, array_base):
        return lambda: _attack_ops(secret_addr, array_base)

    return [
        SpecProgram(
            name=f"exception_{variant}",
            builder=make_builder(secret_addr, array_base),
            secret_ranges=((secret_addr, secret_addr + 1),),
            description=f"exception-shielded read of {desc}",
            expected_transmit={"spectre": (), "futuristic": (0x900C,)},
        )
        for variant, (secret_addr, array_base, desc) in sorted(VARIANTS.items())
    ]


def run_exception_attack(config, variant="meltdown", secret=199, seed=0,
                         sanitize=None):
    """Run one Table I exception attack; returns (latencies, recovered)."""
    if variant not in VARIANTS:
        raise ValueError(
            f"unknown variant {variant!r}; choose from {sorted(VARIANTS)}"
        )
    secret_addr, array_base, _desc = VARIANTS[variant]
    context = AttackContext(config, num_cores=1, seed=seed, sanitize=sanitize)
    context.write_memory(secret_addr, secret & 0xFF)
    # The privileged state is warm (the victim context used it recently) —
    # the precondition every one of these attacks shares; for L1TF it is
    # the defining requirement.
    context.run_ops(
        0, [MicroOp(OpKind.LOAD, pc=0x9100, addr=secret_addr, size=1)]
    )
    receiver = FlushReloadReceiver(
        context, 0, [array_base + LINE * v for v in range(NUM_VALUES)]
    )
    receiver.flush()
    context.flush(ADDR_DELAY)
    ops, wrong = _attack_ops(secret_addr, array_base)
    context.run_ops(0, ops, wrong)
    latencies = receiver.reload()
    hits = receiver.hits(latencies)
    recovered = hits[0] if len(hits) == 1 else None
    return latencies, recovered


def attack_matrix(schemes, variants=None, secret=177, seed=0):
    """{variant: {scheme: leaked?}} across configurations."""
    from ..configs import ProcessorConfig

    variants = variants or sorted(VARIANTS)
    matrix = {}
    for variant in variants:
        row = {}
        for scheme in schemes:
            _lat, recovered = run_exception_attack(
                ProcessorConfig(scheme=scheme), variant=variant,
                secret=secret, seed=seed,
            )
            row[scheme] = recovered == secret
        matrix[variant] = row
    return matrix
