"""Attack orchestration: persistent cores, phased execution, and the
attacker's primitives (clflush, timed probe loads).

An :class:`AttackContext` owns a :class:`~repro.system.System` whose cores
run :class:`~repro.cpu.trace.InteractiveTrace` sources, so an experiment
can alternate between running victim/attacker code on the pipeline
(predictor state persists across phases — mistraining works) and issuing
the attacker's measurement primitives directly against the live cache
hierarchy.
"""

from __future__ import annotations

import itertools

from ..coherence.hierarchy import MemRequest, RequestKind
from ..configs import ProcessorConfig
from ..cpu.trace import InteractiveTrace
from ..errors import SimulationError
from ..params import SystemParams
from ..system import System

_probe_seq = itertools.count(1 << 40)


class AttackContext:
    """A live simulated machine for phased attack experiments."""

    def __init__(self, config, params=None, num_cores=1, seed=0, sanitize=None):
        if params is None:
            params = (
                SystemParams.for_spec()
                if num_cores == 1
                else SystemParams(num_cores=num_cores)
            )
        if not isinstance(config, ProcessorConfig):
            raise SimulationError("config must be a ProcessorConfig")
        self.params = params
        self.config = config
        self.traces = [InteractiveTrace() for _ in range(params.num_cores)]
        self.system = System(
            params=params, config=config, traces=self.traces, seed=seed,
            sanitizer=sanitize,
        )
        self.sanitizer = self.system.sanitizer
        self.kernel = self.system.kernel
        self.hierarchy = self.system.hierarchy
        self.image = self.system.image
        self.space = self.system.space

    # ------------------------------------------------------------ memory setup

    def write_memory(self, addr, data):
        """Initialize victim memory (arrays, secrets)."""
        if isinstance(data, int):
            data = [data]
        self.image.write_bytes(addr, data)

    def read_memory(self, addr, size=1):
        return self.image.read(addr, size)

    # ------------------------------------------------------------- run a phase

    def run_ops(self, core_id, ops, wrong_paths=None, max_cycles=2_000_000):
        """Execute ``ops`` to completion on ``core_id``'s pipeline."""
        self.traces[core_id].feed(ops, wrong_paths)
        self.system.cores[core_id].reopen()
        self.kernel.run(max_cycles=max_cycles)

    # -------------------------------------------------- attacker's primitives

    def flush(self, addr, size=1):
        """clflush every line covering ``[addr, addr+size)``."""
        for line in self.space.lines_touched(addr, size):
            self.hierarchy.flush_line(line)

    def probe_latency(self, core_id, addr):
        """Timed reload: cycles for a demand load of ``addr`` to complete.

        This is the receiver's measurement primitive; like a real attacker's
        timed load it is a perfectly ordinary cached access.
        """
        outcome = {}

        def on_complete(result):
            outcome["cycle"] = self.kernel.cycle
            outcome["level"] = result.level

        request = MemRequest(
            core_id=core_id,
            addr=addr,
            size=8,
            kind=RequestKind.LOAD,
            seq=next(_probe_seq),
            on_complete=on_complete,
        )
        start = self.kernel.cycle
        self.hierarchy.submit(request)
        self.kernel.run(max_cycles=start + 100_000)
        if "cycle" not in outcome:
            raise SimulationError("probe load never completed")
        return outcome["cycle"] - start

    def line_is_cached(self, core_id, addr):
        """Ground-truth inspection (for tests): is the line in this L1?"""
        line = self.space.line_of(addr)
        return self.hierarchy.l1s[core_id].contains(line)
