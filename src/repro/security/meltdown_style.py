"""Meltdown-style exception attack (Section IV, "Futuristic" rows).

A faulting instruction (modelled as an ``EXCEPTION`` micro-op that traps at
the ROB head) shields a transient access/transmit pair: the transient arm
reads a privileged secret and encodes it in the cache before the squash.
A conventional machine leaks; IS-Future keeps the transient loads in the
speculative buffer.  (IS-Spectre does not consider exception shadows —
the paper's Table II scopes it to branch speculation — so the Futuristic
design is the one that must block this.)
"""

from __future__ import annotations

from ..cpu.isa import MicroOp, OpKind
from .channel import AttackContext
from .flush_reload import FlushReloadReceiver

ADDR_DELAY = 0x0004_0000  # flushed line gating the fault's retirement
ADDR_SECRET = 0x0004_2000  # "kernel" byte
ADDR_B = 0x0030_0000
NUM_VALUES = 256
LINE = 64


def _attack_ops():
    delay_load = MicroOp(
        OpKind.LOAD, pc=0x9000, addr=ADDR_DELAY, size=8, dst="d"
    )
    fault = MicroOp(
        OpKind.EXCEPTION, pc=0x9004, deps=(1,), label="faulting-access"
    )
    access = MicroOp(
        OpKind.LOAD, pc=0x9008, addr=ADDR_SECRET, size=1, dst="k",
        label="access",
    )
    transmit = MicroOp(
        OpKind.LOAD,
        pc=0x900C,
        addr_fn=lambda env: ADDR_B + LINE * (env.get("k", 0) & 0xFF),
        size=1,
        deps=(1,),
        label="transmit",
    )
    # The transient continuation is the exception's wrong-path arm: it is
    # fetched under the fault's shadow and squashed when the fault retires.
    return [delay_load, fault], {fault.uid: [access, transmit]}


def specflow_program():
    """The attack as a specflow program.  The transient pair lives in the
    faulting op's wrong-path arm, so the transmitter (pc 0x900C) is only
    reachable under an exception shadow — a Futuristic-model leak that
    the spectre model correctly ignores (Table II scoping)."""
    from ..specflow.programs import SpecProgram

    return SpecProgram(
        name="meltdown_style",
        builder=_attack_ops,
        secret_ranges=((ADDR_SECRET, ADDR_SECRET + 1),),
        description="exception-shielded kernel-byte read and transmit",
        expected_transmit={"spectre": (), "futuristic": (0x900C,)},
    )


def run_meltdown_style_attack(config, secret=199, seed=0, sanitize=None):
    """Run the attack; returns ``(latencies, recovered_value)``."""
    context = AttackContext(config, num_cores=1, seed=seed, sanitize=sanitize)
    context.write_memory(ADDR_SECRET, secret & 0xFF)
    # The kernel recently used its data, so the privileged line is warm —
    # the standard Meltdown setting; the transient access then completes
    # well inside the fault's shadow.
    context.run_ops(
        0, [MicroOp(OpKind.LOAD, pc=0x9100, addr=ADDR_SECRET, size=1)]
    )
    receiver = FlushReloadReceiver(
        context, 0, [ADDR_B + LINE * v for v in range(NUM_VALUES)]
    )
    receiver.flush()
    context.flush(ADDR_DELAY)  # widen the transient window past the fault
    ops, wrong = _attack_ops()
    context.run_ops(0, ops, wrong)
    latencies = receiver.reload()
    hits = receiver.hits(latencies)
    recovered = hits[0] if len(hits) == 1 else None
    return latencies, recovered
