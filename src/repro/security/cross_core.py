"""CrossCore attack setting (Section III-C).

The receiver runs on a *different physical core* and monitors the shared
L2/LLC — the multi-tenant cloud scenario.  The victim's transient load
fills the LLC on an insecure machine, so the attacker's later probe from
its own core comes back at on-chip latency instead of memory latency.
InvisiSpec's Spec-GetS fills neither the L1 nor the LLC, so the probe sees
memory latency for every line.
"""

from __future__ import annotations

from ..cpu.isa import MicroOp, OpKind
from .channel import AttackContext

ADDR_LIMIT = 0x0005_0000
ADDR_SECRET = 0x0005_4000
ADDR_B = 0x0040_0000  # shared transmission array
BRANCH_PC = 0x7500
NUM_VALUES = 64  # reduced alphabet keeps the 2-core run fast
LINE = 64

#: Below this an LLC/remote-L1 hit; above it, memory.
ON_CHIP_THRESHOLD = 60


def _victim_ops(index, in_bounds):
    bound_load = MicroOp(OpKind.LOAD, pc=0x6000, addr=ADDR_LIMIT, size=1,
                         dst="limit")
    branch = MicroOp(OpKind.BRANCH, pc=BRANCH_PC, taken=in_bounds,
                     deps=(1,), latency=2)
    access = MicroOp(OpKind.LOAD, pc=0x7510, addr=ADDR_SECRET if not in_bounds
                     else ADDR_LIMIT + index, size=1, dst="v")
    transmit = MicroOp(
        OpKind.LOAD,
        pc=0x7520,
        addr_fn=lambda env: ADDR_B + LINE * (env.get("v", 0) % NUM_VALUES),
        size=1,
        deps=(1,),
    )
    if in_bounds:
        return [bound_load, branch, access, transmit], {}
    return [bound_load, branch], {branch.uid: [access, transmit]}


def specflow_program():
    """The victim side as a specflow program (the receiver runs no
    transient code).  Same shape as spectre_v1: the dependent load
    (pc 0x7520) transmits on the branch's wrong path."""
    from ..specflow.programs import SpecProgram

    def build():
        in_ops, in_wrong = _victim_ops(3, in_bounds=True)
        oob_ops, oob_wrong = _victim_ops(0, in_bounds=False)
        return in_ops + oob_ops, {**in_wrong, **oob_wrong}

    return SpecProgram(
        name="cross_core",
        builder=build,
        secret_ranges=((ADDR_SECRET, ADDR_SECRET + 1),),
        description="spectre v1 victim monitored from another core's LLC view",
        expected_transmit={"spectre": (0x7520,), "futuristic": (0x7520,)},
    )


def run_cross_core_attack(config, secret=37, seed=0, sanitize=None):
    """Victim on core 0, receiver probing from core 1.

    Returns ``(latencies, recovered_value)``; latencies are the receiver's
    per-line probe times through its own (cold) core.
    """
    from ..params import SystemParams

    context = AttackContext(
        config, params=SystemParams(num_cores=2), seed=seed, sanitize=sanitize
    )
    context.write_memory(ADDR_SECRET, secret % NUM_VALUES)
    context.write_memory(ADDR_LIMIT, 10)

    # Train the victim's bounds check (in-bounds calls).
    for i in range(24):
        ops, wrong = _victim_ops(i % 10, in_bounds=True)
        context.run_ops(0, ops, wrong)
    # The victim uses its secret architecturally, then the attacker
    # flushes the transmission array (it is shared memory).
    context.run_ops(
        0, [MicroOp(OpKind.LOAD, pc=0x6100, addr=ADDR_SECRET, size=1)]
    )
    for value in range(NUM_VALUES):
        context.flush(ADDR_B + LINE * value)
    context.flush(ADDR_LIMIT)

    # Out-of-bounds call: the transient pair runs on core 0.
    ops, wrong = _victim_ops(0, in_bounds=False)
    context.run_ops(0, ops, wrong)

    # The receiver probes from CORE 1: anything on chip answers fast.
    latencies = [
        context.probe_latency(1, ADDR_B + LINE * value)
        for value in range(NUM_VALUES)
    ]
    hits = [v for v in range(NUM_VALUES) if latencies[v] <= ON_CHIP_THRESHOLD]
    recovered = hits[0] if len(hits) == 1 else None
    return latencies, recovered
