"""Per-program differential check: static verdicts vs. live evidence.

Extends the curated harness in :mod:`repro.specflow.evidence` to
arbitrary generated programs, and to *both* shadow models in one pair of
simulations: the load-issue probe consults an
:class:`~repro.invisispec.policy.ISFuturePolicy` and an
:class:`~repro.invisispec.policy.ISSpectrePolicy` judge per issue, so a
single two-secret run yields per-model fingerprints.  The spectre judge
deliberately omits the wrong-path disjunct: a transient load under a
pure exception shadow is invisible to a branch-only attacker model, and
counting it would mislabel every exception gadget as a spectre-model
soundness bug.

Classification per static load PC and model:

* ``SAFE`` + differing fingerprints → **soundness** disagreement
  (SAFE-but-leaks; campaign-fatal);
* ``TRANSMIT`` + identical fingerprints → **precision** disagreement
  (TRANSMIT-but-clean; tracked);
* ``UNKNOWN`` → tracked per reason kind;
* anything else agrees.
"""

from __future__ import annotations

from ..configs import ProcessorConfig, Scheme
from ..cpu.isa import MicroOp, OpKind
from ..invisispec.policy import ISFuturePolicy, ISSpectrePolicy
from ..security.channel import AttackContext
from ..specflow.analyzer import SAFE, TRANSMIT, UNKNOWN, SpecFlowAnalyzer

__all__ = [
    "AGREE",
    "MODELS",
    "PRECISION",
    "SECRETS",
    "SOUNDNESS",
    "DifferentialResult",
    "differential_check",
]

MODELS = ("spectre", "futuristic")

#: the evidence harness's two secrets: they land on distinct
#: transmission-array lines under every mask the generator emits.
SECRETS = (41, 174)

#: program classifications, worst first
SOUNDNESS = "soundness"
PRECISION = "precision"
UNKNOWN_GAP = "unknown"
AGREE = "agree"
_SEVERITY = (SOUNDNESS, PRECISION, UNKNOWN_GAP, AGREE)

_PC_WARM = 0x5000
_DEFAULT_PHASE_CYCLES = 2_000_000


def _make_analyzer(model, window, weaken):
    if weaken is None:
        return SpecFlowAnalyzer(model=model, window=window)
    from ..specflow.mutations import make_weakened_analyzer

    return make_weakened_analyzer(weaken, model=model, window=window)


def _run_once(prog, secret, watchdog=None, heartbeat=None,
              phase_cycles=_DEFAULT_PHASE_CYCLES):
    """One dynamic execution; returns per-model fingerprints plus the
    simulated cycles consumed.

    The program ops are rebuilt *first* (stored uids 0..n-1, counter
    advanced past them), so the setup ops drawn afterwards can never
    collide with a wrong-path arm key.
    """
    ops, wrong_paths = prog.build()
    context = AttackContext(ProcessorConfig(scheme=Scheme.BASE), num_cores=1)
    if watchdog is not None:
        context.kernel.watchdog = watchdog
    if heartbeat is not None:
        context.kernel.heartbeat = heartbeat
    setup = prog.setup
    context.write_memory(
        setup["secret_addr"], [secret & 0xFF] * setup["secret_size"]
    )
    for addr, data in setup["writes"]:
        context.write_memory(addr, list(data))
    warm_ops = [
        MicroOp(OpKind.LOAD, pc=_PC_WARM + 0x10 * i, addr=addr, size=1)
        for i, addr in enumerate(setup["warm"])
    ]
    if warm_ops:
        context.run_ops(
            0, warm_ops, max_cycles=context.kernel.cycle + phase_cycles
        )
    for addr in setup["flush"]:
        context.flush(addr)

    fingerprints = {model: {} for model in MODELS}
    future_judge = ISFuturePolicy()
    spectre_judge = ISSpectrePolicy()

    def probe(core, entry, unsafe_speculative):
        line = entry.lq_entry.line_addr
        pc = entry.op.pc
        if entry.is_wrong_path or not future_judge.load_is_safe(core, entry):
            fingerprints["futuristic"].setdefault(pc, set()).add(line)
        if not spectre_judge.load_is_safe(core, entry):
            fingerprints["spectre"].setdefault(pc, set()).add(line)

    for core in context.system.cores:
        core.load_issue_probe = probe
    start = context.kernel.cycle
    context.run_ops(
        0, ops, wrong_paths, max_cycles=start + phase_cycles
    )
    return fingerprints, context.kernel.cycle


class DifferentialResult:
    """Everything the differential checker decided about one program."""

    __slots__ = ("name", "template", "mutations", "classification",
                 "per_model", "cycles")

    def __init__(self, name, template, mutations, classification, per_model,
                 cycles):
        self.name = name
        self.template = template
        self.mutations = mutations
        #: worst of the per-model verdicts: soundness > precision >
        #: unknown > agree
        self.classification = classification
        #: model -> dict of pc lists (hex strings, sorted)
        self.per_model = per_model
        self.cycles = cycles

    def targets(self, kind):
        """(model, pc) pairs carrying a ``kind`` disagreement."""
        key = "safe_but_leaks" if kind == SOUNDNESS else "transmit_but_clean"
        return [
            (model, int(pc, 16))
            for model in MODELS
            for pc in self.per_model[model][key]
        ]

    def to_dict(self):
        return {
            "name": self.name,
            "template": self.template,
            "mutations": list(self.mutations),
            "classification": self.classification,
            "models": {model: dict(self.per_model[model])
                       for model in MODELS},
        }


def differential_check(prog, window=64, weaken=None, secrets=SECRETS,
                       watchdog=None, heartbeat=None,
                       phase_cycles=_DEFAULT_PHASE_CYCLES):
    """Statically analyze and dynamically fingerprint one
    :class:`~repro.fuzz.generator.FuzzProgram`; returns a
    :class:`DifferentialResult`.

    ``weaken`` names a registered analyzer weakening to apply to the
    *static* side only — the dynamic evidence is always gathered by the
    unmodified machine, which is what makes the comparison a soundness
    test of the analyzer rather than of itself.
    """
    spec_prog = prog.spec_program()
    reports = {
        model: _make_analyzer(model, window, weaken).analyze(spec_prog)
        for model in MODELS
    }
    fp_a, cycles_a = _run_once(
        prog, secrets[0], watchdog=watchdog, heartbeat=heartbeat,
        phase_cycles=phase_cycles,
    )
    fp_b, cycles_b = _run_once(
        prog, secrets[1], watchdog=watchdog, heartbeat=heartbeat,
        phase_cycles=phase_cycles,
    )
    per_model = {}
    worst = AGREE
    for model in MODELS:
        report = reports[model]
        detail = {
            "safe_but_leaks": [],
            "transmit_but_clean": [],
            "transmit_confirmed": [],
            "safe_confirmed": [],
            "unknown": {},
        }
        for rep in report.loads:
            lines_a = frozenset(fp_a[model].get(rep.pc, ()))
            lines_b = frozenset(fp_b[model].get(rep.pc, ()))
            leaky = lines_a != lines_b
            pc = f"0x{rep.pc:x}"
            if rep.classification == SAFE:
                if leaky:
                    detail["safe_but_leaks"].append(pc)
                else:
                    detail["safe_confirmed"].append(pc)
            elif rep.classification == TRANSMIT:
                if leaky:
                    detail["transmit_confirmed"].append(pc)
                else:
                    detail["transmit_but_clean"].append(pc)
            elif rep.classification == UNKNOWN:
                detail["unknown"][pc] = rep.reason_kind
        for key in ("safe_but_leaks", "transmit_but_clean",
                    "transmit_confirmed", "safe_confirmed"):
            detail[key].sort()
        per_model[model] = detail
        if detail["safe_but_leaks"]:
            verdict = SOUNDNESS
        elif detail["transmit_but_clean"]:
            verdict = PRECISION
        elif detail["unknown"]:
            verdict = UNKNOWN_GAP
        else:
            verdict = AGREE
        if _SEVERITY.index(verdict) < _SEVERITY.index(worst):
            worst = verdict
    return DifferentialResult(
        name=prog.name,
        template=prog.template,
        mutations=prog.mutations,
        classification=worst,
        per_model=per_model,
        cycles=cycles_a + cycles_b,
    )
