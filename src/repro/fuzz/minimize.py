"""Delta-minimization of disagreeing programs.

Greedy fixpoint reduction: generate candidate edits in a deterministic
order, re-run the full differential check on each, keep the first edit
that preserves the target disagreement, restart.  Passes:

* **drop-main** / **drop-arm** — remove one op (an op owning a
  wrong-path arm takes its arm with it).  Distance-encoded ``deps`` are
  repaired mechanically: a dep *onto* the removed op is dropped, a dep
  reaching past it shrinks by one.  That repair can shift semantics —
  which is fine, because every candidate is validated against the live
  differential, never assumed equivalent;
* **strip-mask** — replace an ``(x & const)`` node in an address/compute
  expression by ``x`` (guard/fence simplification at the dataflow
  level);
* **drop-setup** — remove one warm address, flush address, or auxiliary
  memory write from the dynamic recipe (the planted secret is never a
  candidate: without it there is nothing to leak or to analyze).

The result is the smallest program this pass vocabulary reaches that
still reproduces the disagreement — the triage corpus stores it next to
the original's identity so the reduction is auditable.
"""

from __future__ import annotations

import json

from .generator import FuzzProgram

__all__ = ["minimize_program"]


def _clone(prog):
    return json.loads(prog.canonical_json())


def _repair_deps(op, source_virtual, removed_virtual):
    """Repair one op's distance deps after removing the op at
    ``removed_virtual`` from its dynamic sequence."""
    if source_virtual <= removed_virtual:
        return
    deps = op.get("deps")
    if not deps:
        return
    repaired = []
    for distance in deps:
        target = source_virtual - distance
        if target == removed_virtual:
            continue  # dep onto the removed op: gone with it
        repaired.append(distance - 1 if target < removed_virtual else distance)
    if repaired:
        op["deps"] = repaired
    else:
        op.pop("deps", None)


def _drop_main_op(data, index):
    """Remove main-path op ``index``; returns False when the removal is
    structurally impossible (nothing to remove)."""
    ops = data["program"]["ops"]
    removed = ops.pop(index)
    data["program"]["wrong_paths"].pop(str(removed["uid"]), None)
    for i, op in enumerate(ops):
        # i is the pre-removal index for ops before the gap and the
        # post-removal index after it; the pre-removal virtual index is
        # what dep distances were written against.
        virtual = i if i < index else i + 1
        _repair_deps(op, virtual, index)
    for uid, arm in data["program"]["wrong_paths"].items():
        owner_index = _owner_index(ops, uid)
        if owner_index is None:
            continue
        owner_virtual = (
            owner_index if owner_index < index else owner_index + 1
        )
        if owner_virtual < index:
            continue  # removed op is not in this arm's dynamic sequence
        for k, op in enumerate(arm):
            _repair_deps(op, owner_virtual + 1 + k, index)
    return True


def _owner_index(ops, uid):
    for i, op in enumerate(ops):
        if str(op["uid"]) == uid:
            return i
    return None


def _drop_arm_op(data, uid, k):
    arm = data["program"]["wrong_paths"][uid]
    arm.pop(k)
    if not arm:
        del data["program"]["wrong_paths"][uid]
        return True
    owner_index = _owner_index(data["program"]["ops"], uid)
    removed_virtual = owner_index + 1 + k
    for k2 in range(k, len(arm)):
        _repair_deps(arm[k2], owner_index + 1 + k2 + 1, removed_virtual)
    return True


def _strip_one_mask(node):
    """Replace the first ``["and", x, ["const", m]]`` subtree by ``x``;
    returns (new_node, stripped?)."""
    if not isinstance(node, list):
        return node, False
    if (
        node[0] == "and"
        and isinstance(node[2], list)
        and node[2][0] == "const"
    ):
        return node[1], True
    out = [node[0]]
    stripped = False
    for part in node[1:]:
        if stripped:
            out.append(part)
            continue
        new, stripped = _strip_one_mask(part)
        out.append(new)
    return out, stripped


def _all_ops(data):
    yield from data["program"]["ops"]
    for arm in data["program"]["wrong_paths"].values():
        yield from arm


def _candidates(prog):
    """Yield (candidate FuzzProgram, note) in deterministic order.
    Later ops first: trailing decorations (extra transmitters, fences)
    fall away before load-bearing structure gets attempted."""
    base = _clone(prog)
    main_count = len(base["program"]["ops"])
    for index in reversed(range(main_count)):
        data = _clone(prog)
        op = data["program"]["ops"][index]
        _drop_main_op(data, index)
        yield (
            FuzzProgram.from_dict(data),
            f"drop-main[{index}] {op['kind']}@{op['pc']:#x}",
        )
    for uid in sorted(base["program"]["wrong_paths"], key=int):
        arm_len = len(base["program"]["wrong_paths"][uid])
        for k in reversed(range(arm_len)):
            data = _clone(prog)
            op = data["program"]["wrong_paths"][uid][k]
            _drop_arm_op(data, uid, k)
            yield (
                FuzzProgram.from_dict(data),
                f"drop-arm[{uid}:{k}] {op['kind']}@{op['pc']:#x}",
            )
    for op_index, op in enumerate(_all_ops(base)):
        for field in ("addr_fn", "compute_fn", "store_value_fn"):
            if field not in op:
                continue
            new_node, stripped = _strip_one_mask(op[field])
            if not stripped:
                continue
            data = _clone(prog)
            for i, candidate_op in enumerate(_all_ops(data)):
                if i == op_index:
                    candidate_op[field] = new_node
                    break
            yield (
                FuzzProgram.from_dict(data),
                f"strip-mask {field}@{op['pc']:#x}",
            )
    for key in ("warm", "flush"):
        for i in reversed(range(len(base["setup"][key]))):
            data = _clone(prog)
            addr = data["setup"][key].pop(i)
            yield (FuzzProgram.from_dict(data), f"drop-{key} {addr:#x}")
    for i in reversed(range(len(base["setup"]["writes"]))):
        data = _clone(prog)
        addr, _values = data["setup"]["writes"].pop(i)
        yield (FuzzProgram.from_dict(data), f"drop-write {addr:#x}")


def minimize_program(prog, check, max_checks=200):
    """Shrink ``prog`` while ``check(candidate)`` (the caller's
    "disagreement still present" predicate, typically a full
    differential re-run) holds.

    Returns ``(minimized, log, checks_spent)``.  ``max_checks`` bounds
    the number of differential re-runs, so minimization cost stays
    proportional to how interesting the program is; hitting the cap is
    recorded in the log, never silent.
    """
    current = prog
    log = []
    checks = 0
    improved = True
    while improved:
        improved = False
        for candidate, note in _candidates(current):
            if checks >= max_checks:
                log.append({"pass": "budget-exhausted",
                            "checks": checks})
                return current, log, checks
            checks += 1
            if check(candidate):
                log.append({"pass": note, "ops": candidate.op_count})
                current = candidate
                improved = True
                break
    return current, log, checks
