"""The content-addressed on-disk triage corpus.

Every minimized disagreement becomes one JSON file named by the SHA-256
of its canonical content (program + disagreement target), so re-running
a campaign — any seed, any job count — converges on the same file set:
identical reproducers dedupe by construction, and the corpus diffs
cleanly in review.  ``index.json`` is the triage journal: a sorted
digest of every entry with its replay command.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..reliability.atomic_io import atomic_write_json

__all__ = ["TriageCorpus"]


class TriageCorpus:
    """Writer/reader for ``<root>/corpus``."""

    def __init__(self, root):
        self.root = Path(root)
        self.index_path = self.root / "index.json"
        self._entries = {}

    @staticmethod
    def entry_hash(program, disagreement):
        payload = (
            program.canonical_json()
            + json.dumps(disagreement, sort_keys=True, separators=(",", ":"))
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def add(self, minimized, original, disagreement, minimization_log,
            checks):
        """Record one minimized reproducer; returns its content hash.

        ``disagreement`` is ``{"kind", "model", "pc", "weaken"}`` —
        the exact claim the reproducer demonstrates.  Adding the same
        (program, disagreement) twice is a no-op.
        """
        digest = self.entry_hash(minimized, disagreement)
        if digest in self._entries:
            return digest
        entry = {
            "hash": digest,
            "disagreement": disagreement,
            "program": minimized.to_dict(),
            "ops": minimized.op_count,
            "original": {
                "name": original.name,
                "ops": original.op_count,
                "template": original.template,
                "mutations": list(original.mutations),
            },
            "minimization": {
                "log": minimization_log,
                "checks": checks,
            },
            "replay": (
                f"PYTHONPATH=src python -m repro.fuzz replay "
                f"{self.root.name}/{digest}.json"
            ),
        }
        # Corpus entries are evidence: a kill -9 mid-campaign must not
        # leave a truncated reproducer that later replays as "fixed".
        atomic_write_json(self.root / f"{digest}.json", entry)
        self._entries[digest] = entry
        return digest

    def write_index(self):
        """Write the triage journal (deterministic: sorted by hash)."""
        index = [
            {
                "hash": entry["hash"],
                "kind": entry["disagreement"]["kind"],
                "model": entry["disagreement"]["model"],
                "pc": entry["disagreement"]["pc"],
                "ops": entry["ops"],
                "original": entry["original"]["name"],
                "template": entry["original"]["template"],
                "replay": entry["replay"],
            }
            for _digest, entry in sorted(self._entries.items())
        ]
        atomic_write_json(self.index_path, index)
        return index

    @staticmethod
    def load_entry(path):
        """Read one corpus entry file (for ``repro.fuzz replay``)."""
        return json.loads(Path(path).read_text())

    def entries(self):
        return [entry for _d, entry in sorted(self._entries.items())]
