"""The fuzz campaign's reliability-layer cell kind.

A :class:`FuzzCellSpec` is one crash-isolated unit of campaign work: a
*batch* of generated programs differentially checked back to back in one
worker attempt.  Batching amortizes the per-cell journal rewrite (the
journal rewrites the whole file per record) without giving up isolation
granularity that matters — a program that kills the interpreter takes
down only its batch, and the supervisor's quarantine then poisons just
that cell.

The spec is duck-typed to the supervisor's contract (``.cell_id`` +
``.run(seed, max_cycles, watchdog, faults, heartbeat=None)``) and is a
frozen dataclass of plain strings, so it pickles across the task pipe
unchanged.  Programs travel as canonical-JSON strings; workers rebuild
them bit-identically (stored uids) via
:meth:`~repro.fuzz.generator.FuzzProgram.build`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..errors import ReproError

__all__ = ["FuzzBatchResult", "FuzzCellSpec"]


class FuzzBatchResult:
    """What one executed fuzz cell produced.

    Quacks enough like a RunResult for the engine's bookkeeping
    (``.cycles``) and owns its journal schema via :meth:`to_metrics` —
    :func:`repro.reliability.engine.capture_metrics` dispatches on it.
    """

    __slots__ = ("cycles", "verdicts")

    def __init__(self, cycles, verdicts):
        self.cycles = cycles
        #: one dict per program, in batch order (see
        #: :meth:`DifferentialResult.to_dict`; error entries carry
        #: ``classification: "error"`` plus the error class/message)
        self.verdicts = verdicts

    def to_metrics(self):
        return {
            "kind": "fuzz",
            "cycles": self.cycles,
            "programs": self.verdicts,
        }

    def __repr__(self):
        return (
            f"FuzzBatchResult({len(self.verdicts)} programs, "
            f"cycles={self.cycles})"
        )


@dataclass(frozen=True)
class FuzzCellSpec:
    """Pickle-safe description of one campaign batch."""

    cell_id: str
    programs: tuple  # canonical-JSON strings, one per FuzzProgram
    window: int = 64
    weaken: str = None
    seed: int = 0

    def run(self, seed, max_cycles, watchdog, faults, heartbeat=None):
        """Differentially check every program in the batch.

        ``seed`` and ``faults`` are accepted for signature compatibility
        with the engine/worker call sites but deliberately unused: the
        programs are fully pre-built (the campaign's bit-identity
        guarantee), and fault injection would perturb the very evidence
        the differential is judging.  A program whose simulation raises
        a :class:`~repro.errors.ReproError` becomes an ``error`` verdict
        instead of failing the batch.
        """
        from .generator import FuzzProgram
        from .harness import differential_check

        phase_cycles = max_cycles if max_cycles is not None else 2_000_000
        verdicts = []
        total_cycles = 0
        for text in self.programs:
            prog = FuzzProgram.from_dict(json.loads(text))
            try:
                result = differential_check(
                    prog,
                    window=self.window,
                    weaken=self.weaken,
                    watchdog=watchdog,
                    heartbeat=heartbeat,
                    phase_cycles=phase_cycles,
                )
            except ReproError as error:
                verdicts.append({
                    "name": prog.name,
                    "template": prog.template,
                    "mutations": list(prog.mutations),
                    "classification": "error",
                    "error_class": type(error).__name__,
                    "error_message": str(error),
                })
            else:
                total_cycles += result.cycles
                verdicts.append(result.to_dict())
        return FuzzBatchResult(total_cycles, verdicts)
