"""Seeded gadget-template generator for the differential fuzz campaign.

Programs are composed from a fixed template alphabet — one family per
transient-leak mechanism the simulator models — and randomized by
per-program knobs (guard latency, padding, transmit mask/stride, secret
offset, extra transmitters, fence placement).  Templates are assigned
round-robin over the program index, so any campaign of at least
``len(TEMPLATE_NAMES)`` programs is guaranteed full mechanism coverage —
that is what lets the seeded-weakening checks promise a hit.

Determinism rules (the campaign's bit-identity guarantee rests on them):

* every random draw comes from a ``random.Random`` seeded with an
  *integer* mixed from ``(campaign_seed, index)`` — never tuples or
  strings, whose hashing is ``PYTHONHASHSEED``-dependent;
* ops are built after :func:`~repro.cpu.isa.reset_uids`, so serialized
  uids always start at 0 and a rebuild anywhere (worker process, replay,
  minimizer) is bit-identical;
* all address/compute functions are :class:`~repro.cpu.isa.Expr` trees,
  so the whole program serializes losslessly.
"""

from __future__ import annotations

import json
import random

from ..cpu import isa
from ..cpu.isa import (
    Expr,
    MicroOp,
    OpKind,
    deserialize_program,
    serialize_program,
)
from ..specflow.programs import SpecProgram

__all__ = [
    "FuzzProgram",
    "TEMPLATE_NAMES",
    "generate_programs",
    "mix_seed",
]

# ------------------------------------------------------- memory layout
#
# One shared layout for every generated program; each program runs on a
# fresh machine, so programs never see each other's footprints.

ADDR_GUARD = 0x0001_0000  # bound/limit byte the guard load reads
ADDR_DELAY = 0x0001_4000  # flushed line gating a fault's retirement
ADDR_PTR = 0x0001_8000  # pointer a store's address depends on (flushed)
ADDR_ARRAY = 0x0002_0000  # benign in-bounds array
ADDR_SECRET = 0x0002_4000  # 8 planted secret bytes
SECRET_BYTES = 8
ADDR_STALE = 0x0002_8000  # SSB buffer slot holding the stale secret
ADDR_B = 0x0010_0000  # transmission array
LINE = 64

#: transmit masks that keep the two campaign secrets (see harness) on
#: distinct transmission-array lines: 41 and 174 differ in every one of
#: these masked views.
_MASKS = (0xFF, 0x3F, 0x1F, 0x0F, 0x07)
_STRIDES = (64, 128)

_PC_MAIN = 0x6000
_PC_ARM = 0x7000
_PC_STEP = 0x10


def mix_seed(seed, index):
    """Derive the per-program RNG seed by integer mixing (hash-free)."""
    return (
        seed * 0x9E3779B1 + index * 0x85EBCA77 + 0x165667B1
    ) & 0xFFFFFFFF


# ------------------------------------------------------ program object


class FuzzProgram:
    """One generated program: serialized ops plus the dynamic recipe.

    ``program`` is :func:`~repro.cpu.isa.serialize_program` data (plain
    JSON-able dicts); ``setup`` tells the dynamic harness how to prepare
    the machine — which address receives the planted secret, which other
    bytes to write, which lines to warm and which to flush.  The object
    is pure data: it pickles, JSON-round-trips, and rebuilds its MicroOps
    bit-identically in any process.
    """

    __slots__ = (
        "name",
        "template",
        "mutations",
        "program",
        "secret_ranges",
        "setup",
    )

    def __init__(self, name, template, mutations, program, secret_ranges,
                 setup):
        self.name = name
        self.template = template
        self.mutations = tuple(mutations)
        self.program = program
        self.secret_ranges = tuple(tuple(r) for r in secret_ranges)
        self.setup = setup

    def to_dict(self):
        return {
            "name": self.name,
            "template": self.template,
            "mutations": list(self.mutations),
            "program": self.program,
            "secret_ranges": [list(r) for r in self.secret_ranges],
            "setup": self.setup,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            name=data["name"],
            template=data["template"],
            mutations=data["mutations"],
            program=data["program"],
            secret_ranges=[tuple(r) for r in data["secret_ranges"]],
            setup=data["setup"],
        )

    def canonical_json(self):
        """Stable byte representation (content addressing, dedup)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def build(self):
        """Materialize ``(ops, wrong_paths)`` with the stored uid space."""
        isa.reset_uids()
        return deserialize_program(self.program)

    def spec_program(self):
        """The static-analysis view: a :class:`SpecProgram` whose builder
        rebuilds the serialized ops (after the uid reset
        ``SpecProgram.build`` performs)."""
        return SpecProgram(
            name=self.name,
            builder=lambda: deserialize_program(self.program),
            secret_ranges=self.secret_ranges,
            description=f"fuzz template {self.template}",
            setup=self.setup,
        )

    @property
    def op_count(self):
        """Main-path ops plus all wrong-path arm ops."""
        return len(self.program["ops"]) + sum(
            len(arm) for arm in self.program["wrong_paths"].values()
        )

    def __repr__(self):
        return (
            f"FuzzProgram({self.name!r}, {self.template}, "
            f"{self.op_count} ops)"
        )


# ------------------------------------------------------------- builder


class _Builder:
    """Accumulates MicroOps with label-based deps, emitting the
    distance-based ``deps`` encoding the pipeline and analyzer use.
    PCs are auto-assigned from per-path bases so every op has a distinct
    static PC (per-PC verdicts then map 1:1 to ops)."""

    def __init__(self):
        self.ops = []
        self.wrong_paths = {}
        self._pos = {}  # label -> virtual index on the main path

    def main(self, kind, deps=(), label=None, pc=None, **kw):
        idx = len(self.ops)
        op = MicroOp(
            kind,
            pc=_PC_MAIN + _PC_STEP * idx if pc is None else pc,
            deps=tuple(idx - self._pos[dep] for dep in deps),
            label=label,
            **kw,
        )
        self.ops.append(op)
        if label is not None:
            self._pos[label] = idx
        return op

    def arm(self, owner):
        return _ArmBuilder(self, owner)

    def serialized(self):
        return serialize_program(self.ops, self.wrong_paths)


class _ArmBuilder:
    """Builds one wrong-path arm; dep labels resolve against the arm
    itself first, then the main path (distances run back through the
    arm into the pre-arm program, mirroring the dynamic op stream)."""

    def __init__(self, builder, owner):
        self.builder = builder
        self.owner_index = builder.ops.index(owner)
        self.ops = builder.wrong_paths.setdefault(owner.uid, [])
        self._pos = {}

    def add(self, kind, deps=(), label=None, pc=None, **kw):
        virtual = self.owner_index + 1 + len(self.ops)
        distances = []
        for dep in deps:
            target = self._pos.get(dep)
            if target is None:
                target = self.builder._pos[dep]
            distances.append(virtual - target)
        op = MicroOp(
            kind,
            pc=_PC_ARM + _PC_STEP * len(self.ops) if pc is None else pc,
            deps=tuple(distances),
            label=label,
            **kw,
        )
        self.ops.append(op)
        if label is not None:
            self._pos[label] = virtual
        return op


def _transmit_expr(reg, mask, stride):
    """``ADDR_B + stride * (reg & mask)`` as an Expr tree."""
    return Expr(
        (
            "add",
            ("const", ADDR_B),
            ("mul", ("const", stride), ("and", ("reg", reg, 0), ("const", mask))),
        )
    )


class _Knobs:
    """Per-program randomized parameters, drawn up front so templates
    stay straight-line code."""

    __slots__ = ("mask", "stride", "guard_latency", "main_pads", "arm_pads",
                 "secret_off", "extra_transmit", "warm_guard", "tags")

    def __init__(self, rng):
        self.mask = rng.choice(_MASKS)
        self.stride = rng.choice(_STRIDES)
        self.guard_latency = rng.randint(1, 3)
        self.main_pads = rng.randint(0, 2)
        self.arm_pads = rng.randint(0, 2)
        self.secret_off = rng.randrange(SECRET_BYTES)
        self.extra_transmit = rng.random() < 0.25
        self.warm_guard = rng.random() < 0.15
        self.tags = [f"mask=0x{self.mask:x}", f"stride={self.stride}"]
        if self.main_pads:
            self.tags.append(f"main_pads={self.main_pads}")
        if self.arm_pads:
            self.tags.append(f"arm_pads={self.arm_pads}")
        if self.secret_off:
            self.tags.append(f"secret_off={self.secret_off}")
        if self.extra_transmit:
            self.tags.append("extra_transmit")
        if self.warm_guard:
            self.tags.append("warm_guard")


def _setup(flush=(), warm=(), writes=(), secret_addr=ADDR_SECRET,
           secret_size=SECRET_BYTES):
    return {
        "secret_addr": secret_addr,
        "secret_size": secret_size,
        "writes": [[addr, list(data)] for addr, data in writes],
        "warm": list(warm),
        "flush": list(flush),
    }


# ----------------------------------------------------------- templates
#
# Each template returns (builder, setup, knob-tags).  The secret range is
# always the 8 planted bytes at ADDR_SECRET unless the template says
# otherwise.


def _bounds_check(rng, fence_before=False, fence_after=False,
                  mask_override=None):
    """Spectre-v1 family: flushed bound, mispredicted branch, transient
    access/transmit pair in the arm.  ``fence_before`` hardens it (the
    lfence mitigation); ``fence_after`` places the fence uselessly after
    the transmit; ``mask_override`` builds the value-killing precision
    gadget."""
    k = _Knobs(rng)
    mask = k.mask if mask_override is None else mask_override
    b = _Builder()
    b.main(OpKind.LOAD, addr=ADDR_GUARD, size=1, dst="limit", label="guard")
    for _ in range(k.main_pads):
        b.main(OpKind.ALU)
    br = b.main(OpKind.BRANCH, taken=True, deps=("guard",),
                latency=k.guard_latency)
    arm = b.arm(br)
    for _ in range(k.arm_pads):
        arm.add(OpKind.ALU)
    arm.add(OpKind.LOAD, addr=ADDR_SECRET + k.secret_off, size=1, dst="v",
            label="access")
    if fence_before:
        arm.add(OpKind.FENCE, label="lfence")
    arm.add(OpKind.LOAD, addr_fn=_transmit_expr("v", mask, k.stride),
            size=1, deps=("access",), label="transmit")
    if fence_after:
        arm.add(OpKind.FENCE, label="late-fence")
    if k.extra_transmit:
        arm.add(OpKind.LOAD,
                addr_fn=_transmit_expr("v", mask, k.stride * 2),
                size=1, deps=("access",), label="transmit2")
    if k.warm_guard:
        setup = _setup(warm=[ADDR_GUARD, ADDR_SECRET])
    else:
        setup = _setup(flush=[ADDR_GUARD], warm=[ADDR_SECRET])
    return b, setup, k.tags


def _t_bounds_check(rng):
    return _bounds_check(rng)


def _t_bounds_check_fenced(rng):
    return _bounds_check(rng, fence_before=True)


def _t_fence_after_transmit(rng):
    return _bounds_check(rng, fence_after=True)


def _t_masked_dead(rng):
    """Statically TRANSMIT, dynamically clean: the transmit masks the
    secret with 0, so its address is constant — the canonical precision
    gap (taint survives a value-killing operation in the abstract
    domain)."""
    b, setup, tags = _bounds_check(rng, mask_override=0)
    return b, setup, tags + ["mask_override=0"]


def _t_in_bounds(rng):
    """Benign control: the transient access stays inside a public array,
    so the (declared) secret never enters the dataflow."""
    k = _Knobs(rng)
    slot = rng.randrange(8)
    b = _Builder()
    b.main(OpKind.LOAD, addr=ADDR_GUARD, size=1, dst="limit", label="guard")
    for _ in range(k.main_pads):
        b.main(OpKind.ALU)
    br = b.main(OpKind.BRANCH, taken=True, deps=("guard",),
                latency=k.guard_latency)
    arm = b.arm(br)
    arm.add(OpKind.LOAD, addr=ADDR_ARRAY + 8 * slot, size=1, dst="v",
            label="access")
    arm.add(OpKind.LOAD, addr_fn=_transmit_expr("v", k.mask, k.stride),
            size=1, deps=("access",), label="transmit")
    setup = _setup(
        flush=[ADDR_GUARD],
        warm=[ADDR_ARRAY + 8 * slot],
        writes=[(ADDR_ARRAY + 8 * slot, [slot + 1])],
    )
    return b, setup, k.tags + [f"slot={slot}"]


def _ssb(rng, padded):
    """Store-to-load forwarding bypass, entirely on the correct path:
    slow-address store, premature stale read, dependent transmit.  No
    branch — only the futuristic model (and judge) sees it."""
    k = _Knobs(rng)
    pads = rng.randint(4, 6) if padded else k.main_pads
    b = _Builder()
    b.main(OpKind.LOAD, addr=ADDR_PTR, size=8, dst="p", label="ptr")
    b.main(
        OpKind.STORE,
        addr_fn=Expr(("reg", "p", ADDR_STALE)),
        size=1,
        store_value=0,
        deps=("ptr",),
        label="sanitize",
    )
    for _ in range(pads):
        b.main(OpKind.ALU)
    b.main(OpKind.LOAD, addr=ADDR_STALE, size=1, dst="s", label="access")
    b.main(OpKind.LOAD, addr_fn=_transmit_expr("s", k.mask, k.stride),
           size=1, deps=("access",), label="transmit")
    if k.extra_transmit:
        b.main(OpKind.LOAD,
               addr_fn=_transmit_expr("s", k.mask, k.stride * 2),
               size=1, deps=("access",), label="transmit2")
    setup = _setup(
        flush=[ADDR_PTR],
        warm=[ADDR_STALE],
        writes=[(ADDR_PTR, list(ADDR_STALE.to_bytes(8, "little")))],
        secret_addr=ADDR_STALE,
        secret_size=1,
    )
    tags = k.tags + ([f"store_pads={pads}"] if padded else [])
    return b, setup, tags


def _t_ssb(rng):
    return _ssb(rng, padded=False)


def _t_ssb_padded(rng):
    return _ssb(rng, padded=True)


def _t_exception(rng):
    """Meltdown family: a faulting op (retirement gated on a flushed
    line) shields a transient access/transmit arm.  Exception shadows
    are futuristic-only."""
    k = _Knobs(rng)
    b = _Builder()
    b.main(OpKind.LOAD, addr=ADDR_DELAY, size=8, dst="d", label="delay")
    fault = b.main(OpKind.EXCEPTION, deps=("delay",), label="fault")
    arm = b.arm(fault)
    for _ in range(k.arm_pads):
        arm.add(OpKind.ALU)
    arm.add(OpKind.LOAD, addr=ADDR_SECRET + k.secret_off, size=1, dst="v",
            label="access")
    arm.add(OpKind.LOAD, addr_fn=_transmit_expr("v", k.mask, k.stride),
            size=1, deps=("access",), label="transmit")
    setup = _setup(flush=[ADDR_DELAY], warm=[ADDR_SECRET])
    return b, setup, k.tags


def _t_indirect_branch(rng):
    """Spectre-v2 flavor: the transient arm computes the secret address
    by pointer arithmetic over an attacker-shaped register, exercising
    taint flow through arm ALU expressions."""
    k = _Knobs(rng)
    b = _Builder()
    # The attacker-shaped index comes from a *warm* load: the transient
    # chain must not wait on the flushed guard, or the branch resolves
    # (and squashes the arm) before the dependent transmit can issue.
    b.main(OpKind.LOAD, addr=ADDR_ARRAY, size=1, dst="i", label="atk")
    b.main(OpKind.LOAD, addr=ADDR_GUARD, size=1, dst="limit", label="guard")
    br = b.main(OpKind.BRANCH, taken=True, deps=("guard",),
                latency=k.guard_latency)
    arm = b.arm(br)
    arm.add(
        OpKind.ALU,
        dst="j",
        compute_fn=Expr(("and", ("reg", "i", 0), ("const", SECRET_BYTES - 1))),
        deps=("atk",),
        label="index",
    )
    arm.add(
        OpKind.LOAD,
        addr_fn=Expr(("add", ("const", ADDR_SECRET), ("reg", "j", 0))),
        size=1,
        dst="v",
        deps=("index",),
        label="access",
    )
    arm.add(OpKind.LOAD, addr_fn=_transmit_expr("v", k.mask, k.stride),
            size=1, deps=("access",), label="transmit")
    setup = _setup(
        flush=[ADDR_GUARD],
        warm=[ADDR_ARRAY, ADDR_SECRET],
        writes=[(ADDR_ARRAY, [rng.randrange(256)])],
    )
    return b, setup, k.tags


#: the bits on which the two campaign secrets differ (41 ^ 174 ==
#: 0b10000111): an address that branches on any of them separates the
#: dynamic runs onto distinct transmission lines.
_SELECT_BITS = (0, 1, 2, 7)


def _t_branchy_select(rng):
    """Branchy address math: the transmit address is an if/else over one
    secret-derived bit.  Pure taint tracking cannot evaluate the
    comparison (v1 filed these under abstraction-error UNKNOWN); path
    splitting forks the abstract env on both outcomes and the condition
    taint rides the join, whose two target lines do not collapse."""
    k = _Knobs(rng)
    bit = rng.choice(_SELECT_BITS)
    lo_line = rng.randrange(0, 4)
    hi_line = rng.randrange(4, 8)
    b = _Builder()
    b.main(OpKind.LOAD, addr=ADDR_GUARD, size=1, dst="limit", label="guard")
    for _ in range(k.main_pads):
        b.main(OpKind.ALU)
    br = b.main(OpKind.BRANCH, taken=True, deps=("guard",),
                latency=k.guard_latency)
    arm = b.arm(br)
    for _ in range(k.arm_pads):
        arm.add(OpKind.ALU)
    arm.add(OpKind.LOAD, addr=ADDR_SECRET + k.secret_off, size=1, dst="v",
            label="access")
    arm.add(
        OpKind.LOAD,
        addr_fn=Expr((
            "select",
            ("gt", ("and", ("reg", "v", 0), ("const", 1 << bit)),
             ("const", 0)),
            ("const", ADDR_B + LINE * hi_line),
            ("const", ADDR_B + LINE * lo_line),
        )),
        size=1,
        deps=("access",),
        label="transmit",
    )
    if k.warm_guard:
        setup = _setup(warm=[ADDR_GUARD, ADDR_SECRET])
    else:
        setup = _setup(flush=[ADDR_GUARD], warm=[ADDR_SECRET])
    return b, setup, k.tags + [f"bit={bit}", f"lines={lo_line}/{hi_line}"]


_TEMPLATES = (
    ("bounds_check", _t_bounds_check),
    ("bounds_check_fenced", _t_bounds_check_fenced),
    ("fence_after_transmit", _t_fence_after_transmit),
    ("in_bounds", _t_in_bounds),
    ("ssb", _t_ssb),
    ("ssb_padded", _t_ssb_padded),
    ("exception", _t_exception),
    ("indirect_branch", _t_indirect_branch),
    ("masked_dead", _t_masked_dead),
    ("branchy_select", _t_branchy_select),
)

TEMPLATE_NAMES = tuple(name for name, _fn in _TEMPLATES)


def build_program(seed, index):
    """Deterministically build program ``index`` of campaign ``seed``."""
    rng = random.Random(mix_seed(seed, index))
    template, fn = _TEMPLATES[index % len(_TEMPLATES)]
    isa.reset_uids()
    builder, setup, tags = fn(rng)
    secret_size = setup["secret_size"]
    secret_addr = setup["secret_addr"]
    return FuzzProgram(
        name=f"p{index:05d}-{template}",
        template=template,
        mutations=tags,
        program=builder.serialized(),
        secret_ranges=((secret_addr, secret_addr + secret_size),),
        setup=setup,
    )


def generate_programs(count, seed=0):
    """The campaign's program list: ``count`` programs, template
    round-robin, fully determined by ``seed``."""
    return [build_program(seed, index) for index in range(count)]
