"""The fuzz campaign driver: generate, dispatch, compare, minimize.

One campaign is a deterministic function of ``(programs, seed, window,
weaken)``:

1. **generate** — the parent builds every program up front
   (:func:`~repro.fuzz.generator.generate_programs`) and ships them to
   workers as canonical JSON, so job count and hash seed cannot touch
   program identity;
2. **dispatch** — programs are batched into
   :class:`~repro.fuzz.cells.FuzzCellSpec` cells and executed by the
   reliability engine: the supervisor's crash isolation, RSS limits,
   quarantine and resumable journal all apply unchanged.  Retries are
   disabled (``max_attempts=1``) because a fuzz cell is deterministic —
   a bumped seed would re-measure the identical batch;
3. **compare** — per-program verdicts are aggregated in generation
   order, whether they arrived fresh from a worker or cached from the
   journal on ``--resume``;
4. **minimize** — every disagreement target (soundness first) is delta-
   minimized in the parent against a live differential re-check and
   journaled into the content-addressed triage corpus.

``summary.json`` holds no timestamps, wall-clock figures, or job counts:
byte-identical across ``PYTHONHASHSEED`` values and serial vs. parallel
execution, by construction.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import ReproError
from ..reliability.atomic_io import atomic_write_json
from ..reliability.engine import RetryPolicy, RunEngine
from ..reliability.journal import RunJournal
from ..reliability.supervisor import Supervisor
from .cells import FuzzCellSpec
from .corpus import TriageCorpus
from .generator import generate_programs
from .harness import (
    MODELS,
    PRECISION,
    SOUNDNESS,
    differential_check,
)
from .minimize import minimize_program

__all__ = ["CampaignResult", "run_campaign"]

_KIND_KEY = {
    SOUNDNESS: "safe_but_leaks",
    PRECISION: "transmit_but_clean",
}


def _campaign_id(programs, seed, window, weaken):
    base = f"s{seed}-n{programs}-w{window}"
    return f"{base}-{weaken}" if weaken else base


def _batches(items, size):
    for start in range(0, len(items), size):
        yield items[start:start + size]


def _cell_verdicts(outcome):
    """The per-program verdict list carried by an ok cell outcome,
    fresh (:class:`~repro.fuzz.cells.FuzzBatchResult`) or reconstructed
    from the journal (:class:`~repro.reliability.engine.CellResult`)."""
    result = outcome.result
    to_metrics = getattr(result, "to_metrics", None)
    metrics = to_metrics() if to_metrics is not None else result.metrics
    return metrics["programs"]


def _collect_targets(progs, verdicts):
    """All (kind, program, model, pc) disagreement targets, soundness
    first, then deterministic (name, model, pc) order within a kind."""
    targets = []
    for prog, verdict in zip(progs, verdicts):
        if verdict is None or "models" not in verdict:
            continue
        kind = verdict["classification"]
        if kind not in _KIND_KEY:
            continue
        key = _KIND_KEY[kind]
        for model in MODELS:
            for pc_hex in verdict["models"][model][key]:
                targets.append((kind, prog, model, int(pc_hex, 16)))
    targets.sort(
        key=lambda t: (0 if t[0] == SOUNDNESS else 1, t[1].name, t[2], t[3])
    )
    return targets


class CampaignResult:
    """Everything one campaign run produced, plus its exit semantics."""

    __slots__ = ("campaign_id", "out_dir", "verdicts", "summary",
                 "corpus_index", "failed_cells")

    def __init__(self, campaign_id, out_dir, verdicts, summary,
                 corpus_index, failed_cells):
        self.campaign_id = campaign_id
        self.out_dir = Path(out_dir)
        #: per-program verdict dicts in generation order (None where the
        #: owning cell failed outright)
        self.verdicts = verdicts
        self.summary = summary
        self.corpus_index = corpus_index
        self.failed_cells = failed_cells

    @property
    def soundness_count(self):
        return self.summary["evidence"]["safe_but_leaks"]

    @property
    def exit_code(self):
        """Non-zero iff the campaign found a soundness disagreement or
        lost cells to engine failures — precision gaps are tracked, not
        fatal."""
        if self.soundness_count or self.failed_cells:
            return 1
        return 0


def run_campaign(
    programs=256,
    seed=0,
    jobs=1,
    out_dir="results/fuzz",
    window=64,
    weaken=None,
    batch=16,
    max_minimize=25,
    minimize_checks=200,
    resume=False,
    max_rss=None,
    heartbeat_timeout=60.0,
    wall_clock_s=None,
    phase_cycles=2_000_000,
    echo=None,
):
    """Run one differential fuzzing campaign; returns a
    :class:`CampaignResult`.

    ``weaken`` names an entry of
    :data:`~repro.specflow.mutations.ANALYZER_WEAKENINGS` applied to the
    static side only (the seeded-bug harness).  ``echo`` is an optional
    progress callable (the CLI passes ``print``); the library default is
    silent.
    """
    say = echo if echo is not None else (lambda *_args: None)
    campaign_id = _campaign_id(programs, seed, window, weaken)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    say(f"[fuzz] campaign {campaign_id}: generating {programs} programs")
    progs = generate_programs(programs, seed=seed)
    texts = [prog.canonical_json() for prog in progs]
    specs = [
        FuzzCellSpec(
            cell_id=f"fuzz:{campaign_id}:b{i:04d}",
            programs=tuple(chunk),
            window=window,
            weaken=weaken,
            seed=seed,
        )
        for i, chunk in enumerate(_batches(texts, max(1, batch)))
    ]

    journal = RunJournal(out / "journal.json", experiment=f"fuzz-{campaign_id}")
    supervisor = (
        Supervisor(
            jobs=jobs, max_rss=max_rss, heartbeat_timeout=heartbeat_timeout
        )
        if jobs > 1
        else None
    )
    engine = RunEngine(
        journal=journal,
        policy=RetryPolicy(max_attempts=1),
        max_cycles=phase_cycles,
        wall_clock_s=wall_clock_s,
        resume=resume,
        supervisor=supervisor,
    )
    say(
        f"[fuzz] dispatching {len(specs)} cells "
        f"({'serial' if jobs <= 1 else f'{jobs} workers'})"
    )
    outcomes = engine.run_specs(specs)

    verdicts = []
    failed_cells = []
    for spec, outcome in zip(specs, outcomes):
        if outcome.ok:
            verdicts.extend(_cell_verdicts(outcome))
        else:
            failed_cells.append({
                "cell": spec.cell_id,
                "error_class": outcome.error_class,
                "error_message": outcome.error_message,
            })
            verdicts.extend([None] * len(spec.programs))
    if failed_cells:
        say(f"[fuzz] {len(failed_cells)} cell(s) failed outright")

    targets = _collect_targets(progs, verdicts)
    soundness_targets = sum(1 for t in targets if t[0] == SOUNDNESS)
    say(
        f"[fuzz] {len(targets)} disagreement target(s), "
        f"{soundness_targets} soundness"
    )

    corpus = TriageCorpus(out / "corpus")
    minimized_count = 0
    minimize_skipped = 0
    total_checks = 0
    for kind, prog, model, pc in targets:
        if minimized_count >= max_minimize:
            minimize_skipped += 1
            continue
        key = _KIND_KEY[kind]

        def check(candidate, _model=model, _pc=pc, _key=key):
            try:
                res = differential_check(
                    candidate, window=window, weaken=weaken,
                    phase_cycles=phase_cycles,
                )
            except ReproError:
                return False
            return f"0x{_pc:x}" in res.per_model[_model][_key]

        minimized, mlog, checks = minimize_program(
            prog, check, max_checks=minimize_checks
        )
        total_checks += checks
        disagreement = {
            "kind": kind,
            "model": model,
            "pc": f"0x{pc:x}",
            "weaken": weaken,
        }
        digest = corpus.add(minimized, prog, disagreement, mlog, checks)
        minimized_count += 1
        say(
            f"[fuzz] minimized {prog.name} [{kind}/{model}@0x{pc:x}] "
            f"{prog.op_count} -> {minimized.op_count} ops "
            f"({checks} checks) -> corpus/{digest}.json"
        )
    if minimize_skipped:
        say(
            f"[fuzz] minimization cap reached: {minimize_skipped} "
            f"target(s) left unminimized (raise --max-minimize)"
        )
    corpus_index = corpus.write_index()

    summary = _summarize(
        campaign_id, programs, seed, window, weaken, verdicts,
        soundness_targets, len(targets), corpus_index, minimized_count,
        minimize_skipped, total_checks, failed_cells,
    )
    atomic_write_json(out / "summary.json", summary)
    say(
        f"[fuzz] done: {summary['by_classification']} "
        f"-> {out / 'summary.json'}"
    )
    return CampaignResult(
        campaign_id, out, verdicts, summary, corpus_index, failed_cells
    )


def _summarize(campaign_id, programs, seed, window, weaken, verdicts,
               soundness_targets, total_targets, corpus_index,
               minimized_count, minimize_skipped, total_checks,
               failed_cells):
    by_classification = {}
    by_template = {}
    unknown_reasons = {}
    template_evidence = {}
    confirmed = clean = leaks = 0
    for verdict in verdicts:
        if verdict is None:
            continue
        cls = verdict["classification"]
        by_classification[cls] = by_classification.get(cls, 0) + 1
        per_template = by_template.setdefault(verdict["template"], {})
        per_template[cls] = per_template.get(cls, 0) + 1
        tstats = template_evidence.setdefault(
            verdict["template"],
            {"transmit_confirmed": 0, "transmit_but_clean": 0,
             "safe_but_leaks": 0},
        )
        for model in MODELS:
            detail = verdict.get("models", {}).get(model)
            if detail is None:
                continue
            confirmed += len(detail["transmit_confirmed"])
            clean += len(detail["transmit_but_clean"])
            leaks += len(detail["safe_but_leaks"])
            tstats["transmit_confirmed"] += len(detail["transmit_confirmed"])
            tstats["transmit_but_clean"] += len(detail["transmit_but_clean"])
            tstats["safe_but_leaks"] += len(detail["safe_but_leaks"])
            for reason in detail["unknown"].values():
                unknown_reasons[reason] = unknown_reasons.get(reason, 0) + 1
    precision = (
        round(confirmed / (confirmed + clean), 6)
        if confirmed + clean
        else None
    )
    recall = (
        round(confirmed / (confirmed + leaks), 6)
        if confirmed + leaks
        else None
    )
    # Which templates own the residual imprecision, template-name order
    # (deterministic regardless of generation interleaving).
    precision_by_template = {
        name: {
            **stats,
            "precision": (
                round(
                    stats["transmit_confirmed"]
                    / (stats["transmit_confirmed"]
                       + stats["transmit_but_clean"]),
                    6,
                )
                if stats["transmit_confirmed"] + stats["transmit_but_clean"]
                else None
            ),
        }
        for name, stats in sorted(template_evidence.items())
    }
    return {
        "campaign": campaign_id,
        "programs": programs,
        "seed": seed,
        "window": window,
        "weaken": weaken,
        "by_classification": dict(sorted(by_classification.items())),
        "by_template": {
            name: dict(sorted(counts.items()))
            for name, counts in sorted(by_template.items())
        },
        "precision_by_template": precision_by_template,
        "unknown_reasons": dict(sorted(unknown_reasons.items())),
        "evidence": {
            "transmit_confirmed": confirmed,
            "transmit_but_clean": clean,
            "safe_but_leaks": leaks,
            "precision": precision,
            "recall": recall,
        },
        "disagreement_targets": total_targets,
        "soundness_targets": soundness_targets,
        "minimized": minimized_count,
        "minimize_skipped": minimize_skipped,
        "minimize_checks": total_checks,
        "corpus_entries": len(corpus_index),
        "failed_cells": failed_cells,
        "missing_verdicts": sum(1 for v in verdicts if v is None),
    }
