"""CLI for the differential fuzzing campaign.

Campaign (the default mode)::

    PYTHONPATH=src python -m repro.fuzz --programs 1000 --jobs 4 --seed 0

Replay one triage-corpus reproducer::

    PYTHONPATH=src python -m repro.fuzz replay results/fuzz/corpus/<hash>.json

Replay exits 0 iff the recorded disagreement still reproduces on the
current tree — a fixed analyzer bug flips its reproducer to exit 1,
which is exactly the signal triage wants.
"""

from __future__ import annotations

import argparse
import json
import sys

from .corpus import TriageCorpus
from .generator import FuzzProgram
from .harness import differential_check
from .campaign import run_campaign

_SIZE_SUFFIXES = {"K": 2**10, "M": 2**20, "G": 2**30}


def parse_size(text):
    text = text.strip().upper()
    suffix = text[-1:] if text else ""
    if suffix in _SIZE_SUFFIXES:
        return int(float(text[:-1]) * _SIZE_SUFFIXES[suffix])
    return int(text)


def _campaign_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing campaign over generated "
        "transient-execution programs.",
    )
    parser.add_argument("--programs", type=int, default=256,
                        help="number of programs to generate (default 256)")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes (default 1: serial)")
    parser.add_argument("--out", default="results/fuzz",
                        help="output directory (default results/fuzz)")
    parser.add_argument("--window", type=int, default=64,
                        help="specflow speculation window (default 64)")
    parser.add_argument("--weaken", default=None,
                        help="apply a registered analyzer weakening to the "
                        "static side (seeded-bug harness)")
    parser.add_argument("--batch", type=int, default=16,
                        help="programs per crash-isolated cell (default 16)")
    parser.add_argument("--max-minimize", type=int, default=25,
                        help="cap on minimized disagreement targets "
                        "(default 25; soundness targets go first)")
    parser.add_argument("--minimize-checks", type=int, default=200,
                        help="differential re-runs allowed per "
                        "minimization (default 200)")
    parser.add_argument("--resume", action="store_true",
                        help="skip cells already ok in the journal")
    parser.add_argument("--max-rss", type=parse_size, default=None,
                        help="per-worker RSS limit, e.g. 2G (parallel only)")
    parser.add_argument("--heartbeat", type=float, default=60.0,
                        help="supervisor heartbeat timeout in seconds")
    parser.add_argument("--wall-clock", type=float, default=None,
                        help="wall-clock budget per cell attempt (seconds)")
    return parser


def _run_campaign(argv):
    args = _campaign_parser().parse_args(argv)
    result = run_campaign(
        programs=args.programs,
        seed=args.seed,
        jobs=args.jobs,
        out_dir=args.out,
        window=args.window,
        weaken=args.weaken,
        batch=args.batch,
        max_minimize=args.max_minimize,
        minimize_checks=args.minimize_checks,
        resume=args.resume,
        max_rss=args.max_rss,
        heartbeat_timeout=args.heartbeat,
        wall_clock_s=args.wall_clock,
        echo=print,
    )
    if result.exit_code:
        if result.soundness_count:
            print(
                f"[fuzz] FAIL: {result.soundness_count} SAFE-but-leaks "
                f"instance(s) — see {result.out_dir / 'corpus' / 'index.json'}"
            )
        if result.failed_cells:
            print(f"[fuzz] FAIL: {len(result.failed_cells)} cell(s) failed")
    return result.exit_code


def _run_replay(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz replay",
        description="Re-run one triage-corpus reproducer and confirm its "
        "recorded disagreement.",
    )
    parser.add_argument("entry", help="path to a corpus entry JSON file")
    parser.add_argument("--window", type=int, default=64)
    args = parser.parse_args(argv)

    entry = TriageCorpus.load_entry(args.entry)
    prog = FuzzProgram.from_dict(entry["program"])
    claim = entry["disagreement"]
    key = (
        "safe_but_leaks" if claim["kind"] == "soundness"
        else "transmit_but_clean"
    )
    result = differential_check(
        prog, window=args.window, weaken=claim.get("weaken")
    )
    detail = result.per_model[claim["model"]]
    reproduced = claim["pc"] in detail[key]
    print(json.dumps({
        "entry": entry["hash"],
        "claim": claim,
        "reproduced": reproduced,
        "observed": detail,
    }, indent=2, sort_keys=True))
    return 0 if reproduced else 1


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "replay":
        return _run_replay(argv[1:])
    return _run_campaign(argv)


if __name__ == "__main__":
    sys.exit(main())
