"""Differential fuzzing of the specflow analyzer against the live pipeline.

``repro.fuzz`` turns specflow's soundness claim into a continuously
tested property.  A seeded generator composes randomized transient-leak
gadgets (bounds-check variants, fence placement, store-to-load
forwarding, exception shields, pointer arithmetic) out of the same
MicroOp vocabulary the attack PoCs use, but with every address/compute
function expressed in the picklable :class:`~repro.cpu.isa.Expr` IR so
whole programs cross process boundaries.  Each program is then judged
twice per shadow model:

* **statically** by :class:`~repro.specflow.SpecFlowAnalyzer`;
* **dynamically** by the two-secret cache-footprint harness — run the
  program twice on the insecure BASE machine with different planted
  secrets and record, per load PC, the lines it touches while
  hypothetically unsafe (per-model judge over the live core trackers).

The differential checker classifies every load: AGREE, SAFE-but-leaks
(a soundness bug — campaign-fatal) or TRANSMIT-but-clean (a precision
gap — tracked).  Disagreeing programs are delta-minimized to a minimal
reproducer and journaled into a content-addressed triage corpus.

Entry points::

    python -m repro.fuzz --programs 1000 --jobs 4 --seed 0
    python -m repro.fuzz --programs 64 --weaken branch_shadows_only
    python -m repro.fuzz replay results/fuzz/corpus/<hash>.json
"""

from .campaign import CampaignResult, run_campaign
from .cells import FuzzBatchResult, FuzzCellSpec
from .corpus import TriageCorpus
from .generator import FuzzProgram, TEMPLATE_NAMES, generate_programs
from .harness import DifferentialResult, differential_check
from .minimize import minimize_program

__all__ = [
    "CampaignResult",
    "DifferentialResult",
    "FuzzBatchResult",
    "FuzzCellSpec",
    "FuzzProgram",
    "TEMPLATE_NAMES",
    "TriageCorpus",
    "differential_check",
    "generate_programs",
    "minimize_program",
    "run_campaign",
]
